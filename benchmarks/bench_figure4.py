"""Benchmark regenerating Figure 4: pair coverage against the number of pruned BFSs."""

from __future__ import annotations

import numpy as np

from repro.experiments import format_figure4, run_figure4


def test_figure4_pair_coverage(run_once, save_result, full_scale):
    """Overall coverage (4a) and per-distance coverage (4b-4d)."""
    datasets = (
        ["gnutella", "epinions", "slashdot"] if full_scale else ["gnutella", "epinions"]
    )
    num_pairs = 5_000 if full_scale else 1_500

    curves = run_once(run_figure4, datasets, num_pairs=num_pairs)
    text = format_figure4(curves)
    print("\n" + text)
    save_result("figure4", text)

    for curve in curves:
        # Coverage is monotone and reaches 1 once every BFS has run.
        assert np.all(np.diff(curve.overall) >= -1e-12)
        assert np.isclose(curve.overall[-1], 1.0)

        # Figure 4a: most pairs are covered very early (a few hundred BFSs out
        # of thousands of vertices).
        assert curve.coverage_at(256) > 0.6, curve.dataset

        # Figure 4b-4d: distant pairs are covered earlier than close pairs.
        distances = sorted(curve.by_distance)
        if len(distances) >= 3:
            checkpoint_index = int(np.flatnonzero(curve.checkpoints <= 16)[-1])
            close = curve.by_distance[distances[0]][checkpoint_index]
            far = curve.by_distance[distances[-1]][checkpoint_index]
            assert far >= close, curve.dataset


def collect_results(*, smoke: bool = False):
    """Run the suite and emit the shared observatory schema (``repro.obs``)."""
    import time

    from repro.obs import Metric, bench_result

    datasets = ["notredame"] if smoke else ["gnutella", "epinions"]
    num_pairs = 300 if smoke else 1_500
    start = time.perf_counter()
    curves = run_figure4(datasets, num_pairs=num_pairs)
    run_seconds = time.perf_counter() - start
    metrics = [
        Metric(
            "run_seconds", run_seconds, unit="s", higher_is_better=False, tolerance=0.5
        ),
    ]
    for curve in curves:
        metrics.append(
            Metric(f"{curve.dataset}_final_coverage", float(curve.overall[-1]))
        )
    return bench_result("figure4", metrics, smoke=smoke)

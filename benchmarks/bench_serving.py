"""Benchmark for the query-serving subsystem.

Measures, on a generated scale-free graph of >= 10k vertices:

* per-pair ``index.distance`` loop throughput (the pre-serving baseline),
* :class:`~repro.serving.engine.BatchQueryEngine` batched throughput and
  per-batch P50/P95/P99 latency,
* cache-fronted serving throughput and hit rate on a skewed (hot-pair)
  workload.

The headline acceptance number is the batched-vs-scalar speedup, asserted to
be at least 5x.  Also runnable standalone: ``python benchmarks/bench_serving.py``.
"""

from __future__ import annotations

import time
from typing import Dict

import numpy as np

from repro.core.index import PrunedLandmarkLabeling
from repro.experiments.workloads import random_pairs
from repro.generators import barabasi_albert_graph
from repro.serving import BatchQueryEngine, LRUCache, QueryServer

#: Minimum batched/scalar speedup the serving subsystem promises.
REQUIRED_SPEEDUP = 5.0


def run_serving_benchmark(
    *,
    num_vertices: int = 10_000,
    attach: int = 5,
    num_queries: int = 50_000,
    scalar_sample: int = 2_000,
    batch_size: int = 4_096,
    hot_pairs: int = 512,
    seed: int = 13,
) -> Dict[str, float]:
    """Build the index once and measure every serving configuration on it."""
    graph = barabasi_albert_graph(num_vertices, attach, seed=seed)
    build_start = time.perf_counter()
    index = PrunedLandmarkLabeling(num_bit_parallel_roots=8).build(graph)
    build_seconds = time.perf_counter() - build_start

    pairs = np.asarray(
        random_pairs(num_vertices, num_queries, seed=seed + 1), dtype=np.int64
    )
    sources, targets = pairs[:, 0], pairs[:, 1]

    # Baseline: the per-pair Python loop every pre-serving caller used.
    scalar_start = time.perf_counter()
    scalar_results = [
        index.distance(int(s), int(t))
        for s, t in zip(sources[:scalar_sample], targets[:scalar_sample])
    ]
    scalar_seconds = time.perf_counter() - scalar_start
    scalar_qps = scalar_sample / scalar_seconds

    # Batched engine over the full workload, chunked like the server would.
    engine = BatchQueryEngine(index)
    batch_results = []
    for start in range(0, num_queries, batch_size):
        stop = start + batch_size
        batch_results.append(engine.query_batch(sources[start:stop], targets[start:stop]))
    batched = np.concatenate(batch_results)
    stats = engine.stats
    batch_qps = stats.queries_per_second
    latencies_ms = np.asarray(stats.recent_batch_seconds) * 1000.0
    p50, p95, p99 = np.percentile(latencies_ms, [50.0, 95.0, 99.0])

    if not np.array_equal(batched[:scalar_sample], np.asarray(scalar_results)):
        raise AssertionError("batched engine disagrees with scalar queries")

    # Cache-fronted server on a skewed workload: most traffic hits hot pairs.
    rng = np.random.default_rng(seed + 2)
    hot = pairs[rng.integers(0, hot_pairs, size=num_queries // 2)]
    skewed = np.concatenate([hot, pairs[: num_queries // 2]])
    rng.shuffle(skewed)
    cache = LRUCache(65_536)
    with QueryServer(engine, cache=cache, max_batch_size=batch_size) as server:
        served_start = time.perf_counter()
        for start in range(0, skewed.shape[0], batch_size):
            chunk = skewed[start: start + batch_size]
            server.submit(chunk[:, 0], chunk[:, 1]).wait(120)
        served_seconds = time.perf_counter() - served_start
        server_stats = server.metrics_snapshot()

    return {
        "num_vertices": num_vertices,
        "num_edges": graph.num_edges,
        "build_seconds": build_seconds,
        "num_queries": num_queries,
        "scalar_qps": scalar_qps,
        "batch_qps": batch_qps,
        "speedup": batch_qps / scalar_qps,
        "batch_p50_ms": float(p50),
        "batch_p95_ms": float(p95),
        "batch_p99_ms": float(p99),
        "served_qps": skewed.shape[0] / served_seconds,
        "served_p50_ms": server_stats["latency_p50_ms"],
        "served_p95_ms": server_stats["latency_p95_ms"],
        "served_p99_ms": server_stats["latency_p99_ms"],
        "cache_hit_rate": server_stats["cache_hit_rate"],
    }


def format_serving_report(results: Dict[str, float]) -> str:
    """Human-readable serving benchmark report."""
    lines = [
        "Serving benchmark (batched engine vs per-pair loop)",
        f"  graph: {results['num_vertices']:,.0f} vertices / "
        f"{results['num_edges']:,.0f} edges "
        f"(index built in {results['build_seconds']:.1f}s)",
        f"  workload: {results['num_queries']:,.0f} uniform random pairs",
        "",
        f"  per-pair loop      {results['scalar_qps']:12,.0f} queries/s",
        f"  batched engine     {results['batch_qps']:12,.0f} queries/s "
        f"({results['speedup']:.1f}x speedup)",
        f"    batch latency    p50 {results['batch_p50_ms']:.2f} ms | "
        f"p95 {results['batch_p95_ms']:.2f} ms | p99 {results['batch_p99_ms']:.2f} ms",
        f"  cached server      {results['served_qps']:12,.0f} queries/s "
        f"(hit rate {results['cache_hit_rate']:.1%}, skewed workload)",
        f"    request latency  p50 {results['served_p50_ms']:.2f} ms | "
        f"p95 {results['served_p95_ms']:.2f} ms | p99 {results['served_p99_ms']:.2f} ms",
    ]
    return "\n".join(lines)


def test_serving_throughput_and_tail_latency(run_once, save_result, full_scale):
    """The batched engine must beat the per-pair loop by >= 5x at >= 10k vertices."""
    kwargs = dict(num_vertices=20_000, num_queries=100_000) if full_scale else {}
    results = run_once(run_serving_benchmark, **kwargs)
    text = format_serving_report(results)
    print("\n" + text)
    save_result("serving", text)

    assert results["num_vertices"] >= 10_000
    assert results["speedup"] >= REQUIRED_SPEEDUP, (
        f"batched engine speedup {results['speedup']:.1f}x below the "
        f"{REQUIRED_SPEEDUP:.0f}x serving requirement"
    )
    assert results["cache_hit_rate"] > 0.0
    assert results["batch_p99_ms"] >= results["batch_p50_ms"]


def collect_results(*, smoke: bool = False):
    """Run the suite and emit the shared observatory schema (``repro.obs``)."""
    from repro.obs import Metric, bench_result

    if smoke:
        results = run_serving_benchmark(
            num_vertices=3_000,
            attach=3,
            num_queries=20_000,
            scalar_sample=500,
            hot_pairs=256,
        )
    else:
        results = run_serving_benchmark()
    metrics = [
        Metric(
            "batch_qps", results["batch_qps"], unit="queries/s", higher_is_better=True
        ),
        Metric(
            "scalar_qps", results["scalar_qps"], unit="queries/s", higher_is_better=True
        ),
        Metric("speedup", results["speedup"], unit="x", higher_is_better=True),
        Metric(
            "served_qps", results["served_qps"], unit="queries/s", higher_is_better=True
        ),
        Metric(
            "batch_p50_ms", results["batch_p50_ms"], unit="ms", higher_is_better=False
        ),
        Metric(
            "batch_p99_ms", results["batch_p99_ms"], unit="ms", higher_is_better=False
        ),
        Metric(
            "served_p99_ms", results["served_p99_ms"], unit="ms", higher_is_better=False
        ),
        Metric("cache_hit_rate", results["cache_hit_rate"], higher_is_better=True),
        Metric(
            "build_seconds", results["build_seconds"], unit="s", higher_is_better=False
        ),
        Metric("num_vertices", results["num_vertices"]),
    ]
    return bench_result("serving", metrics, smoke=smoke)


if __name__ == "__main__":
    report = run_serving_benchmark()
    print(format_serving_report(report))
    if report["speedup"] < REQUIRED_SPEEDUP:
        raise SystemExit(
            f"FAIL: speedup {report['speedup']:.1f}x < {REQUIRED_SPEEDUP:.0f}x"
        )

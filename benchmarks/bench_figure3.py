"""Benchmark regenerating Figure 3: effect of pruning and label-size distribution."""

from __future__ import annotations

import numpy as np

from repro.experiments import format_figure3, run_figure3


def test_figure3_pruning_profiles(run_once, save_result, full_scale):
    """Labels per pruned BFS (3a), cumulative share (3b), label sizes (3c)."""
    datasets = ["skitter", "indo", "flickr"] if full_scale else ["skitter", "indo"]

    profiles = run_once(run_figure3, datasets)
    text = format_figure3(profiles)
    print("\n" + text)
    save_result("figure3", text)

    for profile in profiles:
        n = profile.labels_per_bfs.shape[0]

        # Figure 3a: labels added per BFS drop by orders of magnitude — after
        # the first ~1000 BFSs each search labels only a handful of vertices.
        first = profile.labels_per_bfs[0]
        late = profile.labels_per_bfs[min(1_000, n - 1):].mean()
        assert first > 50 * max(late, 0.02), profile.dataset

        # Figure 3b: a large share of all labels is created at the beginning.
        early_fraction = profile.cumulative_at([min(1_000, n)])[min(1_000, n)]
        assert early_fraction > 0.5, profile.dataset
        assert np.isclose(profile.cumulative_fraction[-1], 1.0)

        # Figure 3c: label sizes are concentrated — the 90th percentile stays
        # within a small factor of the median, so query time is stable.
        median = max(profile.label_size_percentile(50), 1.0)
        assert profile.label_size_percentile(90) < 12 * median, profile.dataset


def collect_results(*, smoke: bool = False):
    """Run the suite and emit the shared observatory schema (``repro.obs``)."""
    import time

    from repro.obs import Metric, bench_result

    datasets = ["notredame"] if smoke else ["skitter", "indo"]
    start = time.perf_counter()
    profiles = run_figure3(datasets)
    run_seconds = time.perf_counter() - start
    metrics = [
        Metric(
            "run_seconds", run_seconds, unit="s", higher_is_better=False, tolerance=0.5
        ),
    ]
    for profile in profiles:
        metrics.append(
            Metric(
                f"{profile.dataset}_mean_labels_per_bfs",
                float(profile.labels_per_bfs.mean()),
            )
        )
    return bench_result("figure3", metrics, smoke=smoke)

"""Benchmark for the pluggable batch-kernel layer.

Measures, on a generated clustered power-law graph, the end-to-end batch
query throughput of every constructible kernel backend (``numpy`` baseline,
``narrow`` uint32/uint8 layout, ``numba`` JIT where installed) across a
batch-size sweep, on an index with and without bit-parallel labels — and
pins down the two guarantees the kernel layer makes:

* **Speed**: the best available kernel answers batched queries at least
  ``REQUIRED_SPEEDUP``x faster than the scalar per-pair ``index.distance``
  loop (the PR 1 query path that predates the batch kernel).
* **Exactness**: every kernel produces byte-identical distance arrays — for
  ``query_pairs``, for ``query_one_to_many`` (full and subset), and through
  the full ``distance_batch`` path with the bit-parallel fold on top.

Also runnable standalone: ``python benchmarks/bench_kernels.py`` (pass
``--smoke`` for the reduced-scale CI configuration, which keeps the
byte-identity assertions exact but relaxes the speedup floor that needs
full scale to be meaningful).
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.core.index import PrunedLandmarkLabeling
from repro.core.kernels import KERNEL_CHOICES, registered_kernels
from repro.generators import holme_kim_graph

#: Minimum best-kernel vs scalar-loop speedup promised at full scale.
REQUIRED_SPEEDUP = 3.0
#: Relaxed floor for the reduced-scale smoke configuration.
SMOKE_SPEEDUP = 1.5
#: Batch sizes swept per kernel (the issue's 1 / 64 / 4096 matrix).
BATCH_SIZES = (1, 64, 4096)

#: Kernel backends to attempt, in registry order (``auto`` is a selector,
#: not a backend, so it is excluded from the matrix).
_BACKENDS = tuple(name for name in KERNEL_CHOICES if name != "auto")


def _constructible_kernels(index: PrunedLandmarkLabeling) -> Dict[str, object]:
    """Name -> kernel clone for every backend that truly constructs.

    ``using(name)`` falls back to numpy when a backend is unavailable (no
    numba) or unsupported (wide dtype plan); those fallbacks are excluded so
    each matrix row measures the backend it is labelled with.
    """
    base = index.prepare_batch_kernel()
    registry = registered_kernels()
    kernels = {}
    for name in _BACKENDS:
        if not registry[name].available():
            continue
        clone = base.using(name)
        if clone.selection.selected == name and not clone.selection.fallback:
            kernels[name] = clone
    return kernels


def _time_batches(
    index: PrunedLandmarkLabeling,
    pairs: np.ndarray,
    batch_size: int,
    *,
    repeats: int = 3,
) -> float:
    """Best-of-``repeats`` throughput (pairs/s) at one batch size."""
    sources, targets = pairs[:, 0], pairs[:, 1]
    total = sources.shape[0]
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        for lo in range(0, total, batch_size):
            hi = min(lo + batch_size, total)
            index.distance_batch(sources[lo:hi], targets[lo:hi])
        elapsed = time.perf_counter() - start
        best = max(best, total / elapsed)
    return best


def _scalar_baseline(
    index: PrunedLandmarkLabeling, pairs: np.ndarray, *, repeats: int = 3
) -> float:
    """Throughput (pairs/s) of the PR 1-era scalar per-pair query loop."""
    best = 0.0
    pair_list = [(int(s), int(t)) for s, t in pairs]
    for _ in range(repeats):
        start = time.perf_counter()
        for s, t in pair_list:
            index.distance(s, t)
        elapsed = time.perf_counter() - start
        best = max(best, len(pair_list) / elapsed)
    return best


def _assert_byte_identical(
    index: PrunedLandmarkLabeling,
    kernels: Dict[str, object],
    pairs: np.ndarray,
    rng: np.random.Generator,
) -> None:
    """Every kernel must reproduce the numpy baseline bit for bit."""
    num_vertices = index.label_set.num_vertices
    source = int(rng.integers(num_vertices))
    subset = rng.integers(0, num_vertices, size=min(512, num_vertices))
    reference: Dict[str, bytes] = {}
    original = index._batch_kernel
    try:
        for name, kernel in kernels.items():
            index._batch_kernel = kernel
            observed = {
                "query_pairs": kernel.query_pairs(pairs[:, 0], pairs[:, 1]).tobytes(),
                "one_to_many_full": kernel.query_one_to_many(source).tobytes(),
                "one_to_many_subset": kernel.query_one_to_many(
                    source, subset
                ).tobytes(),
                "distance_batch": index.distance_batch(
                    pairs[:, 0], pairs[:, 1]
                ).tobytes(),
            }
            for verb, payload in observed.items():
                if verb not in reference:
                    reference[verb] = payload
                elif reference[verb] != payload:
                    raise AssertionError(
                        f"kernel {name!r} disagrees with the baseline on {verb}"
                    )
    finally:
        index._batch_kernel = original


def run_kernel_benchmark(
    *,
    num_vertices: int = 8_000,
    attach: int = 3,
    triad_probability: float = 0.4,
    matrix_pairs: int = 8_192,
    scalar_pairs: int = 400,
    seed: int = 11,
) -> Dict[str, object]:
    """Measure the per-kernel throughput matrix and the acceptance speedup."""
    graph = holme_kim_graph(num_vertices, attach, triad_probability, seed=seed)
    rng = np.random.default_rng(seed + 1)
    pairs = rng.integers(0, num_vertices, size=(matrix_pairs, 2))

    matrix: Dict[str, float] = {}
    kernels_measured: List[str] = []
    best_qps = 0.0
    scalar_qps = 0.0
    plan_narrow = False
    for variant, roots in (("bp", 16), ("nobp", 0)):
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=roots).build(graph)
        kernels = _constructible_kernels(index)
        _assert_byte_identical(index, kernels, pairs, rng)
        if variant == "bp":
            kernels_measured = sorted(kernels)
            scalar_qps = _scalar_baseline(index, pairs[:scalar_pairs])
            plan_narrow = index.prepare_batch_kernel().plan.narrow
        for name, kernel in kernels.items():
            index._batch_kernel = kernel
            for batch_size in BATCH_SIZES:
                qps = _time_batches(index, pairs, batch_size)
                matrix[f"{variant}:{name}:{batch_size}"] = qps
                if variant == "bp" and batch_size == max(BATCH_SIZES):
                    best_qps = max(best_qps, qps)

    return {
        "num_vertices": num_vertices,
        "num_edges": graph.num_edges,
        "matrix_pairs": matrix_pairs,
        "kernels": kernels_measured,
        "narrow_plan": plan_narrow,
        "matrix": matrix,
        "scalar_qps": scalar_qps,
        "best_qps": best_qps,
        "speedup": best_qps / scalar_qps if scalar_qps else float("inf"),
    }


def format_kernel_report(results: Dict[str, object]) -> str:
    """Human-readable kernel throughput matrix."""
    matrix = results["matrix"]
    lines = [
        "Batch-kernel benchmark (throughput in query pairs/s)",
        f"  graph: {results['num_vertices']:,.0f} vertices / "
        f"{results['num_edges']:,.0f} edges, {results['matrix_pairs']:,.0f} "
        f"pairs per measurement",
        f"  kernels constructible here: {', '.join(results['kernels'])} "
        f"(narrow plan: {'yes' if results['narrow_plan'] else 'no'})",
        "",
        f"  {'index':6s} {'kernel':8s}" + "".join(f" {f'batch {b}':>12s}" for b in BATCH_SIZES),
    ]
    for variant in ("bp", "nobp"):
        for name in results["kernels"]:
            cells = "".join(
                f" {matrix[f'{variant}:{name}:{b}']:12,.0f}" for b in BATCH_SIZES
            )
            lines.append(f"  {variant:6s} {name:8s}{cells}")
    lines += [
        "",
        f"  scalar per-pair loop {results['scalar_qps']:12,.0f} pairs/s "
        f"(the pre-kernel query path)",
        f"  best kernel          {results['best_qps']:12,.0f} pairs/s "
        f"(batch {max(BATCH_SIZES)}, bit-parallel index)",
        f"  speedup              {results['speedup']:12,.1f}x",
    ]
    return "\n".join(lines)


def _check(results: Dict[str, object], *, smoke: bool) -> None:
    """Assert the acceptance bars (relaxed speedup floor at smoke scale)."""
    assert "numpy" in results["kernels"], "the numpy baseline must always construct"
    required = SMOKE_SPEEDUP if smoke else REQUIRED_SPEEDUP
    assert results["speedup"] >= required, (
        f"best kernel speedup {results['speedup']:.1f}x below the "
        f"{required:.1f}x requirement over the scalar query loop"
    )
    if not smoke:
        assert results["num_vertices"] >= 8_000


def test_kernel_layer_beats_scalar_loop(run_once, save_result, full_scale):
    """The best kernel must beat the scalar loop by >= 3x; all byte-identical."""
    kwargs = dict(num_vertices=12_000) if full_scale else {}
    results = run_once(run_kernel_benchmark, **kwargs)
    text = format_kernel_report(results)
    print("\n" + text)
    save_result("kernels", text)
    _check(results, smoke=False)


def collect_results(*, smoke: bool = False):
    """Run the suite and emit the shared observatory schema (``repro.obs``)."""
    from repro.obs import Metric, bench_result

    if smoke:
        results = run_kernel_benchmark(
            num_vertices=1_500, matrix_pairs=2_048, scalar_pairs=150
        )
    else:
        results = run_kernel_benchmark()
    _check(results, smoke=smoke)
    metrics = [
        Metric("best_qps", results["best_qps"], unit="pairs/s", higher_is_better=True),
        Metric(
            "scalar_qps", results["scalar_qps"], unit="pairs/s", higher_is_better=True
        ),
        Metric("speedup", results["speedup"], unit="x", higher_is_better=True),
        Metric("num_vertices", results["num_vertices"]),
        Metric("num_edges", results["num_edges"]),
        Metric("num_kernels", len(results["kernels"])),
    ]
    return bench_result("kernels", metrics, smoke=smoke)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    if smoke:
        report = run_kernel_benchmark(
            num_vertices=1_500, matrix_pairs=2_048, scalar_pairs=150
        )
    else:
        report = run_kernel_benchmark()
    print(format_kernel_report(report))
    try:
        _check(report, smoke=smoke)
    except AssertionError as exc:
        raise SystemExit(f"FAIL: {exc}")
    print("PASS" + (" (smoke scale)" if smoke else ""))

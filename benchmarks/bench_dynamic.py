"""Benchmark for dynamic updates and diff-based snapshot publication.

Measures, on a generated clustered power-law graph of >= 10k vertices:

* per-mutation latency of ``insert_edge`` / ``remove_edge`` on the dynamic
  oracle behind a :class:`~repro.serving.snapshot.SnapshotManager`,
* diff-based ``publish()`` latency after a small burst of edge deletions
  (the evolving-graph churn case: < 1% of vertex labels change),
* the full-freeze baseline the diff path replaces: ``freeze(diff=False)``
  plus a from-scratch engine construction, i.e. what every publish cost
  before snapshot diffing.

The headline acceptance number is the diff-publish vs full-freeze speedup,
asserted to be at least 5x after mutating < 1% of vertices on a >= 10k-vertex
graph.  Also runnable standalone: ``python benchmarks/bench_dynamic.py``
(pass ``--smoke`` for the reduced-scale CI configuration, which keeps the
assertions but relaxes the thresholds that need full scale to be meaningful).

The deletion workload removes *redundant* edges — low-degree endpoints with a
common neighbour — which models real graph churn (stale follower edges,
expiring links) and keeps each deletion's label impact local.  Removing a
high-centrality edge instead dirties a large share of the labels, for which
``freeze`` automatically falls back to the full path.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.core.dynamic import DynamicPrunedLandmarkLabeling
from repro.generators import holme_kim_graph
from repro.serving import BatchQueryEngine, SnapshotManager

#: Minimum diff-publish vs full-freeze speedup promised at full scale.
REQUIRED_SPEEDUP = 5.0
#: Relaxed floor for the reduced-scale smoke configuration.
SMOKE_SPEEDUP = 1.5
#: The publish being timed must come from a small mutation burst.
MAX_DIRTY_FRACTION = 0.01
#: At smoke scale a fixed-size burst is a larger share of a tiny graph.
SMOKE_DIRTY_FRACTION = 0.05


def _redundant_edges(
    oracle: DynamicPrunedLandmarkLabeling, count: int, seed: int
) -> List[Tuple[int, int]]:
    """Low-degree edges with a common neighbour: deletions with local impact."""
    adjacency = oracle._adjacency
    degrees = [len(neighbors) for neighbors in adjacency]
    candidates = [
        (u, v)
        for u in range(len(adjacency))
        if degrees[u] <= 8
        for v in adjacency[u]
        if u < v and degrees[v] <= 8 and adjacency[u] & adjacency[v]
    ]
    if len(candidates) < count:
        raise RuntimeError(
            f"only {len(candidates)} redundant edges available, need {count}"
        )
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(candidates), size=count, replace=False)
    return [candidates[int(i)] for i in chosen]


def run_dynamic_benchmark(
    *,
    num_vertices: int = 10_000,
    attach: int = 4,
    triad_probability: float = 0.5,
    removals_per_burst: int = 6,
    num_bursts: int = 3,
    num_inserts: int = 4,
    check_pairs: int = 1_500,
    seed: int = 7,
) -> Dict[str, float]:
    """Build one writable serving stack and measure its whole update path."""
    graph = holme_kim_graph(num_vertices, attach, triad_probability, seed=seed)
    build_start = time.perf_counter()
    shadow = DynamicPrunedLandmarkLabeling().build(graph)
    build_seconds = time.perf_counter() - build_start
    manager = SnapshotManager(shadow.freeze(), shadow=shadow)
    # The serving layer constructs the batch kernel eagerly; later diff
    # publishes patch it rather than rebuilding it.
    manager.current.engine.index.prepare_batch_kernel()

    total_removals = removals_per_burst * (num_bursts + 1)
    doomed = _redundant_edges(shadow, total_removals, seed + 1)

    # Burst -> diff publish, repeated; keep the best-measured publish to damp
    # scheduler noise (every burst stays under the dirty-fraction budget).
    remove_seconds: List[float] = []
    diff_publish_seconds: List[float] = []
    dirty_counts: List[int] = []
    for burst in range(num_bursts):
        start = burst * removals_per_burst
        burst_edges = doomed[start: start + removals_per_burst]
        removal_start = time.perf_counter()
        for a, b in burst_edges:
            manager.remove_edge(a, b)
        remove_seconds.append(
            (time.perf_counter() - removal_start) / removals_per_burst
        )
        dirty_counts.append(len(shadow.dirty_vertices))
        publish_start = time.perf_counter()
        manager.publish()
        diff_publish_seconds.append(time.perf_counter() - publish_start)

    # Consistency: the published (patched labels + patched kernel) snapshot
    # must agree with the shadow oracle pair for pair.
    rng = np.random.default_rng(seed + 2)
    pairs = rng.integers(0, num_vertices, size=(check_pairs, 2))
    published = manager.current.engine.query_batch(pairs[:, 0], pairs[:, 1])
    expected = shadow.distances([tuple(pair) for pair in pairs])
    if not np.array_equal(published, expected):
        raise AssertionError("diff-published snapshot disagrees with the shadow oracle")

    # The pre-diffing baseline: full label re-materialisation plus a
    # from-scratch engine, measured on a comparable pending burst.
    final_edges = doomed[num_bursts * removals_per_burst:]
    for a, b in final_edges:
        manager.remove_edge(a, b)
    full_start = time.perf_counter()
    frozen = shadow.freeze(diff=False)
    BatchQueryEngine(frozen)
    full_freeze_seconds = time.perf_counter() - full_start

    # Insert-path latency, reported for completeness (not part of the diff
    # assertion: shortcut insertions legitimately touch many labels).
    insert_edges = []
    while len(insert_edges) < num_inserts:
        a, b = int(rng.integers(num_vertices)), int(rng.integers(num_vertices))
        if a != b and b not in shadow._adjacency[a]:
            insert_edges.append((a, b))
    insert_start = time.perf_counter()
    for a, b in insert_edges:
        manager.insert_edge(a, b)
    insert_seconds = (time.perf_counter() - insert_start) / num_inserts
    manager.publish()

    diff_seconds = min(diff_publish_seconds)
    dirty = max(dirty_counts)
    return {
        "num_vertices": num_vertices,
        "num_edges": graph.num_edges,
        "build_seconds": build_seconds,
        "removals_per_burst": removals_per_burst,
        "num_bursts": num_bursts,
        "remove_ms": float(np.mean(remove_seconds)) * 1000.0,
        "insert_ms": insert_seconds * 1000.0,
        "dirty_vertices": dirty,
        "dirty_fraction": dirty / num_vertices,
        "diff_publish_ms": diff_seconds * 1000.0,
        "full_freeze_ms": full_freeze_seconds * 1000.0,
        "publish_speedup": full_freeze_seconds / diff_seconds,
        "final_version": manager.version,
    }


def format_dynamic_report(results: Dict[str, float]) -> str:
    """Human-readable dynamic-update benchmark report."""
    lines = [
        "Dynamic update benchmark (diff publish vs full freeze)",
        f"  graph: {results['num_vertices']:,.0f} vertices / "
        f"{results['num_edges']:,.0f} edges "
        f"(index built in {results['build_seconds']:.1f}s)",
        f"  workload: {results['num_bursts']:.0f} bursts of "
        f"{results['removals_per_burst']:.0f} redundant-edge deletions, "
        f"published after each burst",
        "",
        f"  remove_edge        {results['remove_ms']:10,.1f} ms/op",
        f"  insert_edge        {results['insert_ms']:10,.1f} ms/op",
        f"  dirty vertices     {results['dirty_vertices']:10,.0f} per burst "
        f"({results['dirty_fraction']:.2%} of the graph)",
        f"  diff publish       {results['diff_publish_ms']:10,.2f} ms",
        f"  full freeze        {results['full_freeze_ms']:10,.2f} ms "
        f"(the pre-diffing publish cost)",
        f"  publish speedup    {results['publish_speedup']:10,.1f}x",
    ]
    return "\n".join(lines)


def _check(results: Dict[str, float], *, smoke: bool) -> None:
    """Assert the acceptance bars (relaxed thresholds at smoke scale)."""
    dirty_budget = SMOKE_DIRTY_FRACTION if smoke else MAX_DIRTY_FRACTION
    assert results["dirty_fraction"] < dirty_budget, (
        f"deletion bursts dirtied {results['dirty_fraction']:.2%} of vertices; "
        f"the diff-publish scenario requires < {dirty_budget:.0%}"
    )
    required = SMOKE_SPEEDUP if smoke else REQUIRED_SPEEDUP
    assert results["publish_speedup"] >= required, (
        f"diff publish speedup {results['publish_speedup']:.1f}x below the "
        f"{required:.1f}x requirement"
    )
    if not smoke:
        assert results["num_vertices"] >= 10_000


def test_diff_publish_beats_full_freeze(run_once, save_result, full_scale):
    """Diff publish must beat the full freeze by >= 5x at >= 10k vertices."""
    kwargs = dict(num_vertices=20_000) if full_scale else {}
    results = run_once(run_dynamic_benchmark, **kwargs)
    text = format_dynamic_report(results)
    print("\n" + text)
    save_result("dynamic", text)
    _check(results, smoke=False)


def collect_results(*, smoke: bool = False):
    """Run the suite and emit the shared observatory schema (``repro.obs``)."""
    from repro.obs import Metric, bench_result

    if smoke:
        results = run_dynamic_benchmark(
            num_vertices=2_000, removals_per_burst=4, num_bursts=2, num_inserts=2
        )
    else:
        results = run_dynamic_benchmark()
    _check(results, smoke=smoke)
    metrics = [
        Metric("remove_ms", results["remove_ms"], unit="ms", higher_is_better=False),
        Metric("insert_ms", results["insert_ms"], unit="ms", higher_is_better=False),
        Metric(
            "diff_publish_ms",
            results["diff_publish_ms"],
            unit="ms",
            higher_is_better=False,
        ),
        Metric(
            "full_freeze_ms",
            results["full_freeze_ms"],
            unit="ms",
            higher_is_better=False,
        ),
        Metric(
            "publish_speedup",
            results["publish_speedup"],
            unit="x",
            higher_is_better=True,
        ),
        Metric(
            "build_seconds", results["build_seconds"], unit="s", higher_is_better=False
        ),
        Metric("dirty_fraction", results["dirty_fraction"]),
        Metric("num_vertices", results["num_vertices"]),
    ]
    return bench_result("dynamic", metrics, smoke=smoke)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    if smoke:
        report = run_dynamic_benchmark(
            num_vertices=2_000, removals_per_burst=4, num_bursts=2, num_inserts=2
        )
    else:
        report = run_dynamic_benchmark()
    print(format_dynamic_report(report))
    try:
        _check(report, smoke=smoke)
    except AssertionError as exc:
        raise SystemExit(f"FAIL: {exc}")
    print("PASS" + (" (smoke scale)" if smoke else ""))

"""Benchmark regenerating Figure 2: degree and distance distributions."""

from __future__ import annotations

from repro.datasets import LARGE_DATASETS, SMALL_DATASETS
from repro.experiments import (
    format_figure2,
    run_figure2_degrees,
    run_figure2_distances,
)


def test_figure2_degree_and_distance_distributions(run_once, save_result, full_scale):
    """Degree CCDFs (2a/2b) and sampled distance distributions (2c/2d)."""
    datasets = SMALL_DATASETS + LARGE_DATASETS
    num_pairs = 5_000 if full_scale else 1_500

    def run_both():
        degrees = run_figure2_degrees(datasets)
        distances = run_figure2_distances(datasets, num_pairs=num_pairs)
        return degrees, distances

    degrees, distances = run_once(run_both)
    text = format_figure2(degrees, distances)
    print("\n" + text)
    save_result("figure2", text)

    # Figure 2a/2b: every stand-in has a heavy-tailed (power-law-like) degree
    # CCDF, i.e. a clearly negative slope on log-log axes.
    for series in degrees:
        assert series.power_law_slope() < -0.4, series.dataset

    # Figure 2c/2d: every stand-in is a small world (tiny average distance).
    for series in distances:
        assert series.average_distance() < 10, series.dataset
        assert series.mode_distance() <= 8, series.dataset


def collect_results(*, smoke: bool = False):
    """Run the suite and emit the shared observatory schema (``repro.obs``)."""
    import time

    from repro.obs import Metric, bench_result

    datasets = ["gnutella", "notredame"] if smoke else SMALL_DATASETS + LARGE_DATASETS
    num_pairs = 300 if smoke else 1_500
    start = time.perf_counter()
    degrees = run_figure2_degrees(datasets)
    distances = run_figure2_distances(datasets, num_pairs=num_pairs)
    run_seconds = time.perf_counter() - start
    metrics = [
        Metric(
            "run_seconds", run_seconds, unit="s", higher_is_better=False, tolerance=0.5
        ),
        Metric("num_datasets", len(datasets)),
    ]
    for series in degrees:
        metrics.append(
            Metric(f"{series.dataset}_power_law_slope", series.power_law_slope())
        )
    for series in distances:
        metrics.append(
            Metric(f"{series.dataset}_average_distance", series.average_distance())
        )
    return bench_result("figure2", metrics, smoke=smoke)

"""Benchmark for the asyncio serving front end under connection pressure.

The threaded TCP server pins one thread per connection, so a few thousand
mostly-idle clients exhaust the thread budget before the engine breaks a
sweat.  This benchmark demonstrates what the asyncio front end
(:class:`~repro.serving.aio.AsyncQueryFrontend`) does instead:

* holds **>= 2000 concurrent connections** open against a single front-end
  process (one event loop, no per-connection threads),
* serves a mixed query load from an active subset of those connections
  *while* the idle majority stays connected, with a bounded client-observed
  P99,
* answers every wire query **identically to the scalar path**
  (``index.distance``) — the replies are parsed and compared pair by pair,
* exposes a ``curl``-able ``GET /metrics`` admin endpoint whose body is
  validated line by line against the Prometheus text-exposition grammar
  (and must report the open-connection count and the queries served).

The front end runs in a background thread on its own event loop (exactly the
deployment shape: one serving process, external clients); the measuring
clients run on a second loop and talk real TCP.  ``--smoke`` keeps every
assertion — including the >= 2000-connection floor — but shrinks the graph
and query counts and relaxes the latency bound for shared CI runners.
Also runnable standalone: ``python benchmarks/bench_async.py [--smoke]``.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.index import PrunedLandmarkLabeling
from repro.generators import barabasi_albert_graph
from repro.serving import AsyncQueryFrontend, LRUCache, ServerMetrics, SnapshotManager

# The exposition validator started life in this file; it now lives next to
# the renderer it checks so tests and benchmarks share one grammar.
from repro.serving.metrics import validate_prometheus_exposition

#: The headline floor: concurrent open connections on one front-end process.
REQUIRED_CONNECTIONS = 2000
#: Client-observed P99 budget for queries racing 2000+ idle connections.
REQUIRED_P99_MS = 500.0
SMOKE_P99_MS = 2500.0


def _raise_fd_limit(needed: int) -> int:
    """Raise RLIMIT_NOFILE towards ``needed``; return the resulting soft limit."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return needed
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < needed:
        target = needed if hard == resource.RLIM_INFINITY else min(needed, hard)
        try:
            resource.setrlimit(resource.RLIMIT_NOFILE, (target, hard))
            soft = target
        except (ValueError, OSError):  # pragma: no cover - clamped by the OS
            pass
    return soft


async def _http_get(host: str, port: int, path: str) -> Tuple[int, str]:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        f"GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    try:
        await writer.wait_closed()
    except Exception:
        pass
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split()[1]), body.decode("utf-8")


class _FrontendThread:
    """Run one AsyncQueryFrontend on its own loop in a background thread."""

    def __init__(self, frontend: AsyncQueryFrontend) -> None:
        self.frontend = frontend
        self.ready = threading.Event()
        self.error: Optional[BaseException] = None
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            await self.frontend.serve(
                "127.0.0.1",
                0,
                http_port=0,
                install_signal_handlers=False,
                ready=lambda _front: self.ready.set(),
            )

        try:
            asyncio.run(main())
        except BaseException as exc:  # pragma: no cover - surfaced by the caller
            self.error = exc
            self.ready.set()

    def __enter__(self) -> "_FrontendThread":
        self.thread.start()
        self.ready.wait(timeout=60)
        if self.error is not None:
            raise self.error
        if not self.ready.is_set():
            raise RuntimeError("front end did not come up in time")
        return self

    def __exit__(self, *exc_info) -> None:
        self.frontend.request_stop_threadsafe()
        self.thread.join(timeout=60)


async def _run_clients(
    host: str,
    port: int,
    http_port: int,
    *,
    num_connections: int,
    num_active: int,
    queries_per_client: int,
    query_pool: np.ndarray,
) -> Dict[str, object]:
    """Open the connection fleet, drive the active subset, scrape /metrics."""
    connections: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []

    async def open_one(_index: int):
        return await asyncio.open_connection(host, port)

    # Open in bounded waves: a single burst of thousands of SYNs races the
    # accept loop and the listener backlog for no benefit.
    for offset in range(0, num_connections, 256):
        wave = await asyncio.gather(
            *(open_one(i) for i in range(offset, min(offset + 256, num_connections)))
        )
        connections.extend(wave)

    # Let the server-side accept catch up, then snapshot /metrics with the
    # whole fleet connected but idle.
    for _ in range(50):
        _, body = await _http_get(host, http_port, "/metrics")
        idle_samples = validate_prometheus_exposition(body)
        if idle_samples.get("repro_pll_num_connections", 0) >= num_connections:
            break
        await asyncio.sleep(0.1)

    latencies: List[float] = []
    mismatches: List[str] = []
    answered = 0

    async def drive(client_index: int) -> None:
        nonlocal answered
        reader, writer = connections[client_index]
        rng = np.random.default_rng(1000 + client_index)
        for _ in range(queries_per_client):
            s, t, expected = query_pool[rng.integers(0, query_pool.shape[0])]
            start = time.perf_counter()
            writer.write(f"{int(s)} {int(t)}\n".encode())
            await writer.drain()
            reply = (await reader.readline()).decode().rstrip("\n")
            latencies.append(time.perf_counter() - start)
            parts = reply.split("\t")
            if len(parts) != 3 or int(parts[0]) != s or int(parts[1]) != t:
                mismatches.append(reply)
                continue
            got = float(parts[2])
            if not (got == expected or (np.isinf(got) and np.isinf(expected))):
                mismatches.append(f"{reply} (expected {expected})")
            answered += 1

    await asyncio.gather(*(drive(i) for i in range(num_active)))

    status, body = await _http_get(host, http_port, "/metrics")
    loaded_samples = validate_prometheus_exposition(body)
    health_status, health_body = await _http_get(host, http_port, "/healthz")
    health = json.loads(health_body)

    for _reader, writer in connections:
        writer.close()
    for _reader, writer in connections:
        try:
            await writer.wait_closed()
        except Exception:
            pass

    return {
        "idle_connections_seen": idle_samples.get("repro_pll_num_connections", 0.0),
        "metrics_status": status,
        "metrics_samples": loaded_samples,
        "health_status": health_status,
        "health": health,
        "latencies": latencies,
        "mismatches": mismatches,
        "answered": answered,
    }


def run_async_benchmark(
    *,
    num_vertices: int = 10_000,
    attach: int = 4,
    num_connections: int = 2_500,
    num_active: int = 200,
    queries_per_client: int = 100,
    query_pool_size: int = 4_000,
    batch_timeout: float = 0.002,
    cache_size: int = 65_536,
    seed: int = 23,
) -> Dict[str, float]:
    """Measure the async front end under >= 2000 concurrent connections."""
    soft_limit = _raise_fd_limit(2 * num_connections + 512)
    fd_limited = soft_limit < 2 * num_connections + 256
    if fd_limited:  # pragma: no cover - depends on the host's hard limit
        num_connections = max((soft_limit - 256) // 2, 64)

    graph = barabasi_albert_graph(num_vertices, attach, seed=seed)
    build_start = time.perf_counter()
    index = PrunedLandmarkLabeling(num_bit_parallel_roots=8).build(graph)
    build_seconds = time.perf_counter() - build_start

    # The ground truth every wire reply is checked against: the scalar path.
    rng = np.random.default_rng(seed + 1)
    pool_pairs = rng.integers(0, num_vertices, size=(query_pool_size, 2))
    expected = np.asarray(
        [index.distance(int(s), int(t)) for s, t in pool_pairs], dtype=np.float64
    )
    query_pool = np.column_stack([pool_pairs.astype(np.float64), expected])

    metrics = ServerMetrics()
    frontend = AsyncQueryFrontend(
        SnapshotManager.from_index(index),
        cache=LRUCache(cache_size) if cache_size else None,
        batch_timeout=batch_timeout,
        metrics=metrics,
    )
    load_start = time.perf_counter()
    with _FrontendThread(frontend) as running:
        host, port = running.frontend.tcp_address
        http_host, http_port = running.frontend.http_address
        client_results = asyncio.run(
            _run_clients(
                host,
                port,
                http_port,
                num_connections=num_connections,
                num_active=num_active,
                queries_per_client=queries_per_client,
                query_pool=query_pool,
            )
        )
    load_seconds = time.perf_counter() - load_start

    latencies = np.asarray(client_results["latencies"], dtype=np.float64)
    samples = client_results["metrics_samples"]
    num_queries = num_active * queries_per_client
    return {
        "num_vertices": num_vertices,
        "num_edges": graph.num_edges,
        "build_seconds": build_seconds,
        "fd_limited": float(fd_limited),
        "num_connections": num_connections,
        "idle_connections_seen": float(client_results["idle_connections_seen"]),
        "num_active": num_active,
        "num_queries": num_queries,
        "answered": client_results["answered"],
        "num_mismatches": len(client_results["mismatches"]),
        "qps": num_queries / load_seconds,
        "latency_p50_ms": float(np.percentile(latencies, 50)) * 1000.0,
        "latency_p99_ms": float(np.percentile(latencies, 99)) * 1000.0,
        "metrics_status": float(client_results["metrics_status"]),
        "metrics_num_queries": samples.get("repro_pll_num_queries", 0.0),
        "metrics_num_samples": float(len(samples)),
        "health_status": float(client_results["health_status"]),
        "health_ok": float(client_results["health"].get("status") == "ok"),
        "load_seconds": load_seconds,
    }


def format_async_report(results: Dict[str, float]) -> str:
    """Human-readable async front-end benchmark report."""
    lines = [
        "Async serving benchmark (event-loop front end, idle fleet + query load)",
        f"  graph: {results['num_vertices']:,.0f} vertices / "
        f"{results['num_edges']:,.0f} edges "
        f"(index built in {results['build_seconds']:.1f}s)",
        f"  connections: {results['num_connections']:,.0f} concurrent "
        f"({results['idle_connections_seen']:,.0f} reported by /metrics while idle)",
        f"  load: {results['num_active']:,.0f} active clients x "
        f"{results['num_queries'] / max(results['num_active'], 1):,.0f} queries "
        f"({results['answered']:,.0f} answered, "
        f"{results['num_mismatches']:,.0f} mismatches vs the scalar path)",
        "",
        f"  throughput          {results['qps']:10,.0f} queries/s end to end",
        f"  client P50          {results['latency_p50_ms']:10,.2f} ms",
        f"  client P99          {results['latency_p99_ms']:10,.2f} ms",
        f"  GET /metrics        HTTP {results['metrics_status']:.0f}, "
        f"{results['metrics_num_samples']:.0f} valid exposition samples, "
        f"num_queries={results['metrics_num_queries']:,.0f}",
        f"  GET /healthz        HTTP {results['health_status']:.0f} "
        f"(status ok: {bool(results['health_ok'])})",
    ]
    return "\n".join(lines)


def _check(results: Dict[str, float], *, smoke: bool) -> None:
    """Assert the acceptance bars (relaxed latency budget at smoke scale)."""
    if not results["fd_limited"]:
        assert results["num_connections"] >= REQUIRED_CONNECTIONS, (
            f"only {results['num_connections']:.0f} connections opened; the "
            f"front end must hold >= {REQUIRED_CONNECTIONS}"
        )
        assert results["idle_connections_seen"] >= REQUIRED_CONNECTIONS, (
            f"/metrics saw only {results['idle_connections_seen']:.0f} "
            f"concurrent connections (need >= {REQUIRED_CONNECTIONS})"
        )
    assert results["num_mismatches"] == 0, (
        f"{results['num_mismatches']:.0f} wire replies disagreed with the "
        "scalar path"
    )
    assert results["answered"] == results["num_queries"], (
        f"only {results['answered']:.0f}/{results['num_queries']:.0f} queries "
        "were answered"
    )
    budget = SMOKE_P99_MS if smoke else REQUIRED_P99_MS
    assert results["latency_p99_ms"] <= budget, (
        f"client P99 {results['latency_p99_ms']:.1f} ms above the "
        f"{budget:.0f} ms budget"
    )
    assert results["metrics_status"] == 200
    assert results["health_status"] == 200 and results["health_ok"]
    assert results["metrics_num_queries"] >= results["num_queries"], (
        "/metrics under-reports the queries served"
    )


def test_async_frontend(run_once, save_result, full_scale):
    """The async front end must hold >= 2000 connections with bounded P99."""
    kwargs = dict(num_connections=4_000, num_active=400) if full_scale else {}
    results = run_once(run_async_benchmark, **kwargs)
    text = format_async_report(results)
    print("\n" + text)
    save_result("async", text)
    _check(results, smoke=False)


def collect_results(*, smoke: bool = False):
    """Run the suite and emit the shared observatory schema (``repro.obs``)."""
    from repro.obs import Metric, bench_result

    if smoke:
        results = run_async_benchmark(
            num_vertices=2_000,
            attach=3,
            num_connections=2_048,
            num_active=64,
            queries_per_client=40,
            query_pool_size=1_000,
        )
    else:
        results = run_async_benchmark()
    _check(results, smoke=smoke)
    metrics = [
        Metric("qps", results["qps"], unit="queries/s", higher_is_better=True),
        Metric(
            "latency_p50_ms",
            results["latency_p50_ms"],
            unit="ms",
            higher_is_better=False,
        ),
        Metric(
            "latency_p99_ms",
            results["latency_p99_ms"],
            unit="ms",
            higher_is_better=False,
        ),
        # Exact-zero gate: any reply mismatch is a correctness regression.
        Metric("num_mismatches", results["num_mismatches"], higher_is_better=False),
        Metric("num_connections", results["num_connections"]),
        Metric("num_active", results["num_active"]),
        Metric("answered", results["answered"]),
        Metric("idle_connections_seen", results["idle_connections_seen"]),
    ]
    return bench_result("async", metrics, smoke=smoke)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    if smoke:
        report = run_async_benchmark(
            num_vertices=2_000,
            attach=3,
            num_connections=2_048,
            num_active=64,
            queries_per_client=40,
            query_pool_size=1_000,
        )
    else:
        report = run_async_benchmark()
    print(format_async_report(report))
    try:
        _check(report, smoke=smoke)
    except AssertionError as exc:
        raise SystemExit(f"FAIL: {exc}")
    print("PASS" + (" (smoke scale)" if smoke else ""))

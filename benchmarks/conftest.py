"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures: it runs the
corresponding experiment driver once (via ``benchmark.pedantic`` so
pytest-benchmark records the wall-clock cost of the whole experiment), prints
the formatted table, and writes it to ``benchmarks/results/<name>.txt`` so the
numbers quoted in ``EXPERIMENTS.md`` can be traced back to a file.

Environment knobs
-----------------
``REPRO_BENCH_FULL=1``
    Run the full-scale configuration (all datasets, larger query counts).
    The default configuration covers every experiment but limits the most
    expensive drivers to a representative subset so the whole suite finishes
    in roughly ten to fifteen minutes on a laptop.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Full-scale mode is opt-in through the environment.
FULL_SCALE = os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false")


@pytest.fixture(scope="session")
def full_scale() -> bool:
    """Whether the benchmarks run in full-scale mode."""
    return FULL_SCALE


@pytest.fixture()
def save_result() -> Callable[[str, str], Path]:
    """Persist a formatted experiment result under ``benchmarks/results/``."""

    def _save(name: str, text: str) -> Path:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return path

    return _save


@pytest.fixture()
def run_once(benchmark) -> Callable:
    """Run a callable exactly once under pytest-benchmark timing."""

    def _run(function, *args, **kwargs):
        return benchmark.pedantic(
            function, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run

"""Benchmark for the scalability claim: growth of indexing and query cost with size."""

from __future__ import annotations

from repro.experiments.scaling import format_scaling, run_scaling


def test_scaling_with_graph_size(run_once, save_result, full_scale):
    """Indexing cost grows gently; query time and label size stay nearly flat."""
    sizes = [1_000, 2_000, 4_000, 8_000, 16_000] if full_scale else [1_000, 2_000, 4_000, 8_000]
    num_queries = 2_000 if full_scale else 800
    num_bit_parallel = 16

    points = run_once(
        run_scaling,
        sizes,
        num_queries=num_queries,
        num_bit_parallel_roots=num_bit_parallel,
    )
    text = format_scaling(points)
    print("\n" + text)
    save_result("scaling", text)

    first, last = points[0], points[-1]
    size_factor = last.num_vertices / first.num_vertices

    # Indexing cost grows sub-quadratically in n (the naive method is Θ(n·m),
    # i.e. ~quadratic here since m ∝ n).
    assert last.indexing_seconds < (size_factor ** 2) * first.indexing_seconds

    # Query time does not blow up with graph size (paper Section 7.2.2).
    assert last.query_seconds < 5 * first.query_seconds

    # Effective label size (normal entries plus bit-parallel hubs, the paper's
    # LN column) grows far more slowly than the graph itself.
    first_effective = first.average_label_size + num_bit_parallel
    last_effective = last.average_label_size + num_bit_parallel
    assert last_effective < 0.5 * size_factor * first_effective


def collect_results(*, smoke: bool = False):
    """Run the suite and emit the shared observatory schema (``repro.obs``)."""
    import time

    from repro.obs import Metric, bench_result

    sizes = [1_000, 2_000] if smoke else [1_000, 2_000, 4_000, 8_000]
    num_queries = 300 if smoke else 800
    start = time.perf_counter()
    points = run_scaling(sizes, num_queries=num_queries, num_bit_parallel_roots=16)
    run_seconds = time.perf_counter() - start
    metrics = [
        Metric(
            "run_seconds", run_seconds, unit="s", higher_is_better=False, tolerance=0.5
        ),
    ]
    for point in points:
        prefix = f"n{point.num_vertices}"
        metrics.append(
            Metric(f"{prefix}_indexing_seconds", point.indexing_seconds, unit="s")
        )
        metrics.append(
            Metric(f"{prefix}_query_us", point.query_seconds * 1e6, unit="us")
        )
        metrics.append(
            Metric(f"{prefix}_avg_label_size", point.average_label_size)
        )
    return bench_result("scaling", metrics, smoke=smoke)

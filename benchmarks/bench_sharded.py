"""Benchmark for multi-process sharded query serving.

Measures, on a generated clustered power-law graph of >= 10k vertices:

* single-process batched throughput (:class:`~repro.serving.engine.BatchQueryEngine`
  over the current snapshot) — the GIL-bound baseline every query used to
  go through,
* :class:`~repro.serving.sharded.ShardedQueryEngine` throughput with the
  batch shards fanned out across worker processes that attach the snapshot's
  named shared-memory generation (no label arrays cross the process
  boundary),
* diff publish into a fresh shared-memory generation
  (``freeze(diff=True)`` patching the dirty label/kernel segments directly
  into the new region) vs the full-freeze publish baseline, after redundant
  -edge deletion bursts dirtying < 1% of vertices,
* shared-memory hygiene: at most two generations exist at any point and
  none survive shutdown.

The headline acceptance number is the sharded-vs-single-process speedup,
asserted to be at least 4x with 4 workers at full scale.  The speedup is
real parallelism, so it needs cores: the ``--smoke`` CI configuration
(small graph, 2 workers, shared CI runners) keeps every correctness and
hygiene assertion but only sanity-bounds the throughput ratio.
Also runnable standalone: ``python benchmarks/bench_sharded.py [--smoke]``.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from bench_dynamic import _redundant_edges  # noqa: E402

from repro.core.dynamic import DynamicPrunedLandmarkLabeling  # noqa: E402
from repro.generators import holme_kim_graph  # noqa: E402
from repro.serving import ShardedQueryEngine, SnapshotManager  # noqa: E402

#: Minimum sharded/single-process speedup promised with 4 workers at full scale.
REQUIRED_SPEEDUP = 4.0
#: Sanity floor at smoke scale (shared runners, possibly fewer cores than
#: workers — smoke checks the machinery, not the parallelism).
SMOKE_SPEEDUP = 0.2
#: Diff-publish-into-generation vs full-publish speedup at < 1% churn.
REQUIRED_PUBLISH_SPEEDUP = 5.0
SMOKE_PUBLISH_SPEEDUP = 1.5
MAX_DIRTY_FRACTION = 0.01
SMOKE_DIRTY_FRACTION = 0.05


def _live_generations(prefix_root: str = "pll") -> List[str]:
    """Distinct shared-memory generation prefixes currently in /dev/shm."""
    shm = Path("/dev/shm")
    if not shm.exists():  # pragma: no cover - non-Linux fallback
        return []
    return sorted(
        {entry.name.rsplit(".", 1)[0] for entry in shm.iterdir() if entry.name.startswith(prefix_root)}
    )


def run_sharded_benchmark(
    *,
    num_vertices: int = 10_000,
    attach: int = 4,
    triad_probability: float = 0.5,
    num_queries: int = 60_000,
    batch_size: int = 8_192,
    num_workers: int = 4,
    min_shard_size: int = 512,
    removals_per_burst: int = 6,
    num_bursts: int = 3,
    seed: int = 17,
) -> Dict[str, float]:
    """Build one shared serving stack and measure single vs sharded throughput."""
    graph = holme_kim_graph(num_vertices, attach, triad_probability, seed=seed)
    build_start = time.perf_counter()
    shadow = DynamicPrunedLandmarkLabeling().build(graph)
    build_seconds = time.perf_counter() - build_start
    manager = SnapshotManager(shadow.freeze(), shadow=shadow, shared=True)
    manager.current.engine.index.prepare_batch_kernel()

    rng = np.random.default_rng(seed + 1)
    sources = rng.integers(0, num_vertices, size=num_queries)
    targets = rng.integers(0, num_vertices, size=num_queries)

    # Single-process baseline: the engine behind the current snapshot.
    # One full untimed pass first — cold caches and frequency ramp-up make
    # the first pass ~2x slower than steady state, which would flatter the
    # sharded ratio.
    single_engine = manager.current.engine

    def _single_pass():
        return [
            single_engine.query_batch(
                sources[start: start + batch_size],
                targets[start: start + batch_size],
            )
            for start in range(0, num_queries, batch_size)
        ]

    _single_pass()
    single_start = time.perf_counter()
    single_chunks = _single_pass()
    single_seconds = time.perf_counter() - single_start
    single_results = np.concatenate(single_chunks)

    sharded = ShardedQueryEngine(
        manager, num_workers=num_workers, min_shard_size=min_shard_size
    )
    try:
        # Warm the worker attachments and caches outside the timed window.
        for start in range(0, num_queries, batch_size):
            sharded.query_batch(
                sources[start: start + batch_size],
                targets[start: start + batch_size],
            )
        sharded_start = time.perf_counter()
        sharded_chunks = [
            sharded.query_batch(
                sources[start: start + batch_size],
                targets[start: start + batch_size],
            )
            for start in range(0, num_queries, batch_size)
        ]
        sharded_seconds = time.perf_counter() - sharded_start
        sharded_results = np.concatenate(sharded_chunks)

        if not np.array_equal(sharded_results, single_results):
            raise AssertionError(
                "sharded engine disagrees with the single-process engine"
            )
        busy_workers = len(sharded.worker_seconds())

        # Diff publish into a new shared-memory generation vs the full path,
        # driven by redundant-edge deletion bursts (local label impact).
        total_removals = removals_per_burst * (num_bursts + 1)
        doomed = _redundant_edges(shadow, total_removals, seed + 2)
        diff_publish_seconds: List[float] = []
        dirty_counts: List[int] = []
        max_concurrent_generations = 0
        for burst in range(num_bursts):
            start = burst * removals_per_burst
            for a, b in doomed[start: start + removals_per_burst]:
                manager.remove_edge(a, b)
            dirty_counts.append(len(shadow.dirty_vertices))
            publish_start = time.perf_counter()
            manager.publish()
            diff_publish_seconds.append(time.perf_counter() - publish_start)
            max_concurrent_generations = max(
                max_concurrent_generations, len(_live_generations())
            )
        for a, b in doomed[num_bursts * removals_per_burst:]:
            manager.remove_edge(a, b)
        full_start = time.perf_counter()
        manager.publish(diff=False)
        full_publish_seconds = time.perf_counter() - full_start

        # The new generation must serve the post-deletion distances.
        check = rng.integers(0, num_vertices, size=(2_000, 2))
        expected = shadow.distances([tuple(pair) for pair in check])
        refreshed = sharded.query_batch(check[:, 0], check[:, 1])
        if not np.array_equal(refreshed, expected):
            raise AssertionError(
                "sharded engine disagrees with the shadow oracle after publish"
            )
    finally:
        sharded.close()
        manager.close()
    leaked = _live_generations()

    diff_seconds = min(diff_publish_seconds)
    return {
        "num_vertices": num_vertices,
        "num_edges": graph.num_edges,
        "build_seconds": build_seconds,
        "num_queries": num_queries,
        "batch_size": batch_size,
        "num_workers": num_workers,
        "busy_workers": busy_workers,
        "single_qps": num_queries / single_seconds,
        "sharded_qps": num_queries / sharded_seconds,
        "speedup": single_seconds / sharded_seconds,
        "dirty_vertices": max(dirty_counts),
        "dirty_fraction": max(dirty_counts) / num_vertices,
        "diff_publish_ms": diff_seconds * 1000.0,
        "full_publish_ms": full_publish_seconds * 1000.0,
        "publish_speedup": full_publish_seconds / diff_seconds,
        "max_concurrent_generations": max_concurrent_generations,
        "leaked_generations": len(leaked),
    }


def format_sharded_report(results: Dict[str, float]) -> str:
    """Human-readable sharded-serving benchmark report."""
    lines = [
        "Sharded serving benchmark (multi-process engine vs single process)",
        f"  graph: {results['num_vertices']:,.0f} vertices / "
        f"{results['num_edges']:,.0f} edges "
        f"(index built in {results['build_seconds']:.1f}s)",
        f"  workload: {results['num_queries']:,.0f} uniform pairs in batches "
        f"of {results['batch_size']:,.0f}; "
        f"{results['num_workers']:.0f} workers "
        f"({results['busy_workers']:.0f} saw shards)",
        "",
        f"  single process     {results['single_qps']:12,.0f} queries/s",
        f"  sharded            {results['sharded_qps']:12,.0f} queries/s "
        f"({results['speedup']:.2f}x)",
        f"  diff publish       {results['diff_publish_ms']:10,.2f} ms into a "
        f"new shared-memory generation",
        f"  full publish       {results['full_publish_ms']:10,.2f} ms "
        f"({results['publish_speedup']:.1f}x slower; "
        f"{results['dirty_fraction']:.2%} of labels dirty per diff burst)",
        f"  generations alive  {results['max_concurrent_generations']:.0f} max "
        f"concurrent, {results['leaked_generations']:.0f} leaked after close",
    ]
    return "\n".join(lines)


def _check(results: Dict[str, float], *, smoke: bool) -> None:
    """Assert the acceptance bars (relaxed throughput floor at smoke scale)."""
    required = SMOKE_SPEEDUP if smoke else REQUIRED_SPEEDUP
    assert results["speedup"] >= required, (
        f"sharded speedup {results['speedup']:.2f}x below the "
        f"{required:.2f}x requirement"
    )
    dirty_budget = SMOKE_DIRTY_FRACTION if smoke else MAX_DIRTY_FRACTION
    assert results["dirty_fraction"] < dirty_budget, (
        f"deletion bursts dirtied {results['dirty_fraction']:.2%} of vertices; "
        f"the diff-publish scenario requires < {dirty_budget:.0%}"
    )
    publish_floor = SMOKE_PUBLISH_SPEEDUP if smoke else REQUIRED_PUBLISH_SPEEDUP
    assert results["publish_speedup"] >= publish_floor, (
        f"diff publish into a shared generation only "
        f"{results['publish_speedup']:.1f}x a full publish "
        f"(requirement: {publish_floor:.1f}x)"
    )
    if os.path.exists("/dev/shm"):
        assert results["max_concurrent_generations"] <= 2, (
            "more than two shared-memory generations were alive at once"
        )
        assert results["leaked_generations"] == 0, (
            "shared-memory generations leaked past engine/manager close"
        )
    if not smoke:
        assert results["num_vertices"] >= 10_000
        assert results["num_workers"] >= 4


def test_sharded_throughput(run_once, save_result, full_scale):
    """Sharded serving must beat single-process by >= 4x with 4 workers."""
    kwargs = dict(num_vertices=20_000, num_queries=120_000) if full_scale else {}
    results = run_once(run_sharded_benchmark, **kwargs)
    text = format_sharded_report(results)
    print("\n" + text)
    save_result("sharded", text)
    _check(results, smoke=False)


def collect_results(*, smoke: bool = False):
    """Run the suite and emit the shared observatory schema (``repro.obs``)."""
    from repro.obs import Metric, bench_result

    if smoke:
        results = run_sharded_benchmark(
            num_vertices=2_000,
            num_queries=16_000,
            batch_size=4_096,
            num_workers=2,
            min_shard_size=256,
            removals_per_burst=4,
            num_bursts=2,
        )
    else:
        results = run_sharded_benchmark()
    _check(results, smoke=smoke)
    metrics = [
        Metric(
            "single_qps", results["single_qps"], unit="pairs/s", higher_is_better=True
        ),
        Metric(
            "sharded_qps", results["sharded_qps"], unit="pairs/s", higher_is_better=True
        ),
        Metric("speedup", results["speedup"], unit="x", higher_is_better=True),
        Metric(
            "diff_publish_ms",
            results["diff_publish_ms"],
            unit="ms",
            higher_is_better=False,
        ),
        Metric(
            "publish_speedup",
            results["publish_speedup"],
            unit="x",
            higher_is_better=True,
        ),
        # Exact-zero gate: any leak is a regression regardless of tolerance.
        Metric(
            "leaked_generations", results["leaked_generations"], higher_is_better=False
        ),
        Metric(
            "max_concurrent_generations", results["max_concurrent_generations"]
        ),
        Metric("num_workers", results["num_workers"]),
        Metric("num_vertices", results["num_vertices"]),
    ]
    return bench_result("sharded", metrics, smoke=smoke)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    if smoke:
        report = run_sharded_benchmark(
            num_vertices=2_000,
            num_queries=16_000,
            batch_size=4_096,
            num_workers=2,
            min_shard_size=256,
            removals_per_burst=4,
            num_bursts=2,
        )
    else:
        report = run_sharded_benchmark()
    print(format_sharded_report(report))
    try:
        _check(report, smoke=smoke)
    except AssertionError as exc:
        raise SystemExit(f"FAIL: {exc}")
    print("PASS" + (" (smoke scale)" if smoke else ""))

"""Benchmark regenerating Table 5: label size by vertex ordering strategy."""

from __future__ import annotations

from repro.experiments import format_table5, run_table5


def test_table5_ordering_strategies(run_once, save_result, full_scale):
    """Random vs Degree vs Closeness orderings (no bit-parallel labels).

    The default configuration uses the two smallest stand-ins because the
    Random ordering deliberately produces a near-quadratic index — the very
    effect the table demonstrates — and is therefore by far the slowest build
    in the whole benchmark suite.
    """
    datasets = (
        ["gnutella", "epinions", "slashdot", "notredame", "wikitalk"]
        if full_scale
        else ["gnutella", "notredame"]
    )
    rows = run_once(run_table5, datasets)
    text = format_table5(rows)
    print("\n" + text)
    save_result("table5", text)

    for row in rows:
        # The paper's finding: Random is far worse; Degree and Closeness are
        # comparable, with Degree typically slightly ahead.
        assert row["random"] > 3 * row["degree"]
        assert row["closeness"] < 3 * row["degree"]


def collect_results(*, smoke: bool = False):
    """Run the suite and emit the shared observatory schema (``repro.obs``)."""
    import time

    from repro.obs import Metric, bench_result

    datasets = ["notredame"] if smoke else ["gnutella", "notredame"]
    start = time.perf_counter()
    rows = run_table5(datasets)
    run_seconds = time.perf_counter() - start
    metrics = [
        Metric(
            "run_seconds", run_seconds, unit="s", higher_is_better=False, tolerance=0.5
        ),
    ]
    for row in rows:
        for strategy in ("random", "degree", "closeness"):
            metrics.append(
                Metric(f"{row['dataset']}_{strategy}_avg_label_size", row[strategy])
            )
    return bench_result("table5", metrics, smoke=smoke)

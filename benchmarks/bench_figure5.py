"""Benchmark regenerating Figure 5: performance vs the number of bit-parallel BFSs."""

from __future__ import annotations

from repro.experiments import format_figure5, run_figure5


def test_figure5_bit_parallel_sweep(run_once, save_result, full_scale):
    """Sweep the number of bit-parallel BFSs and record all four panels."""
    datasets = ["skitter", "indo", "flickr"] if full_scale else ["skitter", "indo"]
    sweep = [0, 1, 4, 16, 64, 256] if full_scale else [0, 4, 16, 64]
    num_queries = 2_000 if full_scale else 800

    points = run_once(run_figure5, datasets, sweep=sweep, num_queries=num_queries)
    text = format_figure5(points)
    print("\n" + text)
    save_result("figure5", text)

    by_dataset = {}
    for point in points:
        by_dataset.setdefault(point.dataset, {})[point.num_bit_parallel] = point

    for dataset, by_t in by_dataset.items():
        no_bp = by_t[min(by_t)]
        moderate = by_t[16] if 16 in by_t else by_t[sorted(by_t)[2]]

        # Figure 5a: a moderate number of bit-parallel BFSs does not hurt
        # preprocessing (the paper reports a 2x-10x speed-up at its scale; on
        # these scaled-down stand-ins the effect is smaller, so we assert the
        # "at least it does not spoil the performance" half of the claim).
        assert (
            moderate.preprocessing_seconds < 1.5 * no_bp.preprocessing_seconds
        ), dataset

        # Figure 5c: normal labels shrink as bit-parallel labels take over pairs.
        assert (
            moderate.average_normal_label_size < no_bp.average_normal_label_size
        ), dataset


def collect_results(*, smoke: bool = False):
    """Run the suite and emit the shared observatory schema (``repro.obs``)."""
    import time

    from repro.obs import Metric, bench_result

    datasets = ["notredame"] if smoke else ["skitter", "indo"]
    sweep = [0, 16] if smoke else [0, 4, 16, 64]
    num_queries = 300 if smoke else 800
    start = time.perf_counter()
    points = run_figure5(datasets, sweep=sweep, num_queries=num_queries)
    run_seconds = time.perf_counter() - start
    metrics = [
        Metric(
            "run_seconds", run_seconds, unit="s", higher_is_better=False, tolerance=0.5
        ),
    ]
    for point in points:
        prefix = f"{point.dataset}_t{point.num_bit_parallel}"
        metrics.append(
            Metric(f"{prefix}_preprocessing_seconds", point.preprocessing_seconds, unit="s")
        )
        metrics.append(
            Metric(f"{prefix}_avg_normal_label_size", point.average_normal_label_size)
        )
    return bench_result("figure5", metrics, smoke=smoke)

"""Micro-benchmarks for per-query latency (the QT columns, measured precisely).

Unlike the table/figure benchmarks — which time a whole experiment once —
these use pytest-benchmark's statistical timing on a single prebuilt index, so
they give the most accurate per-query latency numbers: pruned landmark
labeling with and without bit-parallel labels, versus the online BFS
baselines, on the same dataset stand-in.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.baselines import BidirectionalBFSOracle, OnlineBFSOracle
from repro.core import PrunedLandmarkLabeling
from repro.datasets import load_dataset
from repro.experiments import random_pairs


@pytest.fixture(scope="module")
def query_setup():
    """One dataset, a query workload, and prebuilt oracles shared by the module."""
    graph = load_dataset("epinions")
    pairs = random_pairs(graph.num_vertices, 512, seed=7)
    oracles = {
        "pll_bp16": PrunedLandmarkLabeling(num_bit_parallel_roots=16).build(graph),
        "pll_plain": PrunedLandmarkLabeling(num_bit_parallel_roots=0).build(graph),
        "online_bfs": OnlineBFSOracle().build(graph),
        "bidirectional_bfs": BidirectionalBFSOracle().build(graph),
    }
    return graph, pairs, oracles


def _query_batch(oracle, pairs):
    total = 0.0
    for s, t in pairs:
        total += oracle.distance(s, t)
    return total


def test_query_latency_pll_with_bit_parallel(benchmark, query_setup):
    _, pairs, oracles = query_setup
    benchmark(_query_batch, oracles["pll_bp16"], pairs)


def test_query_latency_pll_plain(benchmark, query_setup):
    _, pairs, oracles = query_setup
    benchmark(_query_batch, oracles["pll_plain"], pairs)


def test_query_latency_online_bfs(benchmark, query_setup):
    _, pairs, oracles = query_setup
    benchmark(_query_batch, oracles["online_bfs"], pairs[:16])


def test_query_latency_bidirectional_bfs(benchmark, query_setup):
    _, pairs, oracles = query_setup
    benchmark(_query_batch, oracles["bidirectional_bfs"], pairs[:64])


def collect_results(*, smoke: bool = False):
    """Run the suite and emit the shared observatory schema (``repro.obs``).

    pytest-benchmark owns the statistical timing above; this adapter does a
    plain best-of-three wall-clock pass over the same workload so the trend
    tracker sees comparable per-query numbers without the pytest harness.
    """
    import time

    from repro.obs import Metric, bench_result

    dataset = "gnutella" if smoke else "epinions"
    graph = load_dataset(dataset)
    num_pairs = 128 if smoke else 512
    pairs = random_pairs(graph.num_vertices, num_pairs, seed=7)
    oracles = {
        "pll_bp16": PrunedLandmarkLabeling(num_bit_parallel_roots=16).build(graph),
        "pll_plain": PrunedLandmarkLabeling(num_bit_parallel_roots=0).build(graph),
        "online_bfs": OnlineBFSOracle().build(graph),
    }
    workloads = {
        "pll_bp16": pairs,
        "pll_plain": pairs,
        # The online baseline is orders of magnitude slower; a slice keeps
        # the suite runnable while still anchoring the speedup metric.
        "online_bfs": pairs[:16],
    }
    per_query_us: Dict[str, float] = {}
    for name, oracle in oracles.items():
        workload = workloads[name]
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            _query_batch(oracle, workload)
            elapsed = time.perf_counter() - start
            best = min(best, elapsed / max(len(workload), 1))
        per_query_us[name] = best * 1e6
    metrics = [
        Metric(
            "pll_bp16_query_us",
            per_query_us["pll_bp16"],
            unit="us",
            higher_is_better=False,
        ),
        Metric(
            "pll_plain_query_us",
            per_query_us["pll_plain"],
            unit="us",
            higher_is_better=False,
        ),
        Metric("online_bfs_query_us", per_query_us["online_bfs"], unit="us"),
        Metric(
            "speedup_vs_online_bfs",
            per_query_us["online_bfs"] / max(per_query_us["pll_bp16"], 1e-9),
            unit="x",
            higher_is_better=True,
        ),
        Metric("num_pairs", num_pairs),
    ]
    return bench_result("query_latency", metrics, smoke=smoke)


def test_indexed_queries_beat_online_bfs(query_setup):
    """Sanity check accompanying the micro-benchmarks: the index answers the
    same queries as the online baselines (exactness is asserted elsewhere; here
    we only make sure the benchmark inputs are consistent)."""
    _, pairs, oracles = query_setup
    sample = pairs[:16]
    indexed = [oracles["pll_bp16"].distance(s, t) for s, t in sample]
    online = [oracles["online_bfs"].distance(s, t) for s, t in sample]
    assert indexed == online

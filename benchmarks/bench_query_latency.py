"""Micro-benchmarks for per-query latency (the QT columns, measured precisely).

Unlike the table/figure benchmarks — which time a whole experiment once —
these use pytest-benchmark's statistical timing on a single prebuilt index, so
they give the most accurate per-query latency numbers: pruned landmark
labeling with and without bit-parallel labels, versus the online BFS
baselines, on the same dataset stand-in.
"""

from __future__ import annotations

import pytest

from repro.baselines import BidirectionalBFSOracle, OnlineBFSOracle
from repro.core import PrunedLandmarkLabeling
from repro.datasets import load_dataset
from repro.experiments import random_pairs


@pytest.fixture(scope="module")
def query_setup():
    """One dataset, a query workload, and prebuilt oracles shared by the module."""
    graph = load_dataset("epinions")
    pairs = random_pairs(graph.num_vertices, 512, seed=7)
    oracles = {
        "pll_bp16": PrunedLandmarkLabeling(num_bit_parallel_roots=16).build(graph),
        "pll_plain": PrunedLandmarkLabeling(num_bit_parallel_roots=0).build(graph),
        "online_bfs": OnlineBFSOracle().build(graph),
        "bidirectional_bfs": BidirectionalBFSOracle().build(graph),
    }
    return graph, pairs, oracles


def _query_batch(oracle, pairs):
    total = 0.0
    for s, t in pairs:
        total += oracle.distance(s, t)
    return total


def test_query_latency_pll_with_bit_parallel(benchmark, query_setup):
    _, pairs, oracles = query_setup
    benchmark(_query_batch, oracles["pll_bp16"], pairs)


def test_query_latency_pll_plain(benchmark, query_setup):
    _, pairs, oracles = query_setup
    benchmark(_query_batch, oracles["pll_plain"], pairs)


def test_query_latency_online_bfs(benchmark, query_setup):
    _, pairs, oracles = query_setup
    benchmark(_query_batch, oracles["online_bfs"], pairs[:16])


def test_query_latency_bidirectional_bfs(benchmark, query_setup):
    _, pairs, oracles = query_setup
    benchmark(_query_batch, oracles["bidirectional_bfs"], pairs[:64])


def test_indexed_queries_beat_online_bfs(query_setup):
    """Sanity check accompanying the micro-benchmarks: the index answers the
    same queries as the online baselines (exactness is asserted elsewhere; here
    we only make sure the benchmark inputs are consistent)."""
    _, pairs, oracles = query_setup
    sample = pairs[:16]
    indexed = [oracles["pll_bp16"].distance(s, t) for s, t in sample]
    online = [oracles["online_bfs"].distance(s, t) for s, t in sample]
    assert indexed == online

"""Benchmark regenerating Table 1: headline comparison against published numbers."""

from __future__ import annotations

from repro.experiments import format_table1, run_table1


def test_table1_headline_comparison(run_once, save_result, full_scale):
    """Measure PLL on representative datasets next to the published prior-method rows."""
    datasets = None if full_scale else ["notredame", "wikitalk", "hollywood", "indochina"]
    num_queries = 5_000 if full_scale else 1_000

    rows = run_once(run_table1, datasets, num_queries=num_queries)
    text = format_table1(rows)
    print("\n" + text)
    save_result("table1", text)

    measured = [row for row in rows if row["source"] == "measured"]
    assert measured, "expected at least one measured PLL row"

"""Benchmark regenerating Table 1: headline comparison against published numbers."""

from __future__ import annotations

from repro.experiments import format_table1, run_table1


def test_table1_headline_comparison(run_once, save_result, full_scale):
    """Measure PLL on representative datasets next to the published prior-method rows."""
    datasets = None if full_scale else ["notredame", "wikitalk", "hollywood", "indochina"]
    num_queries = 5_000 if full_scale else 1_000

    rows = run_once(run_table1, datasets, num_queries=num_queries)
    text = format_table1(rows)
    print("\n" + text)
    save_result("table1", text)

    measured = [row for row in rows if row["source"] == "measured"]
    assert measured, "expected at least one measured PLL row"


def collect_results(*, smoke: bool = False):
    """Run the suite and emit the shared observatory schema (``repro.obs``)."""
    import time

    from repro.obs import Metric, bench_result

    datasets = (
        ["notredame"] if smoke else ["notredame", "wikitalk", "hollywood", "indochina"]
    )
    num_queries = 300 if smoke else 1_000
    start = time.perf_counter()
    rows = run_table1(datasets, num_queries=num_queries)
    run_seconds = time.perf_counter() - start
    measured = [row for row in rows if row["source"] == "measured"]
    metrics = [
        Metric(
            "run_seconds", run_seconds, unit="s", higher_is_better=False, tolerance=0.5
        ),
        Metric("measured_rows", len(measured)),
        Metric("num_datasets", len(datasets)),
    ]
    return bench_result("table1", metrics, smoke=smoke)

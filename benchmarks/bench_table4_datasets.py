"""Benchmark regenerating Table 4: the dataset inventory and its statistics."""

from __future__ import annotations

from repro.experiments import format_table4, run_table4


def test_table4_dataset_inventory(run_once, save_result, full_scale):
    """Materialise every dataset stand-in and report its size and statistics."""
    num_pairs = 2_000 if full_scale else 500

    rows = run_once(run_table4, None, with_statistics=True, num_pairs=num_pairs)
    text = format_table4(rows)
    print("\n" + text)
    save_result("table4", text)

    assert len(rows) >= 11
    for row in rows:
        # Every stand-in is a non-trivial graph with small-world distances.
        assert row["repro |V|"] > 500
        assert row["repro |E|"] > 0
        assert row["avg distance"] < 15


def collect_results(*, smoke: bool = False):
    """Run the suite and emit the shared observatory schema (``repro.obs``)."""
    import time

    from repro.obs import Metric, bench_result

    datasets = ["gnutella", "notredame"] if smoke else None
    num_pairs = 200 if smoke else 500
    start = time.perf_counter()
    rows = run_table4(datasets, with_statistics=True, num_pairs=num_pairs)
    run_seconds = time.perf_counter() - start
    metrics = [
        Metric(
            "run_seconds", run_seconds, unit="s", higher_is_better=False, tolerance=0.5
        ),
        Metric("num_datasets", len(rows)),
    ]
    for row in rows:
        metrics.append(Metric(f"{row['dataset']}_avg_distance", row["avg distance"]))
    return bench_result("table4", metrics, smoke=smoke)

"""Benchmark regenerating Table 4: the dataset inventory and its statistics."""

from __future__ import annotations

from repro.experiments import format_table4, run_table4


def test_table4_dataset_inventory(run_once, save_result, full_scale):
    """Materialise every dataset stand-in and report its size and statistics."""
    num_pairs = 2_000 if full_scale else 500

    rows = run_once(run_table4, None, with_statistics=True, num_pairs=num_pairs)
    text = format_table4(rows)
    print("\n" + text)
    save_result("table4", text)

    assert len(rows) >= 11
    for row in rows:
        # Every stand-in is a non-trivial graph with small-world distances.
        assert row["repro |V|"] > 500
        assert row["repro |E|"] > 0
        assert row["avg distance"] < 15

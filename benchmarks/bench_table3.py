"""Benchmarks regenerating Table 3: the full method comparison.

Mirrors the paper's structure: the five smaller datasets are run with every
method (PLL, HHL, tree decomposition, per-query BFS); the six larger datasets
run pruned landmark labeling alone, because the baselines hit their configured
resource limits there ("DNF"), exactly as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import LARGE_DATASETS, SMALL_DATASETS
from repro.experiments import format_table3, run_table3


def test_table3_small_datasets_all_methods(run_once, save_result, full_scale):
    """Table 3, upper half: every method on the five smaller datasets."""
    datasets = SMALL_DATASETS if full_scale else ["gnutella", "epinions", "notredame", "wikitalk"]
    num_queries = 10_000 if full_scale else 2_000

    measurements = run_once(
        run_table3,
        datasets,
        num_queries=num_queries,
        include_baselines=True,
        online_query_cap=30,
    )
    text = format_table3(measurements)
    print("\n" + text)
    save_result("table3_small", text)

    # Reproduction check: PLL preprocessing beats the hub-labeling baseline on
    # every dataset (the tree-decomposition oracle can win on graphs whose
    # fringe swallows almost everything, e.g. the WikiTalk stand-in, so it only
    # gets a "did not explode" check).
    by_dataset = {}
    for measurement in measurements:
        by_dataset.setdefault(measurement.dataset, {})[measurement.method] = measurement
    for dataset, methods in by_dataset.items():
        pll = methods["PLL"]
        assert pll.finished
        hhl = methods["HHL"]
        if hhl.finished:
            assert pll.indexing_seconds < hhl.indexing_seconds, (
                f"{dataset}: PLL indexing should be faster than HHL"
            )
        # PLL queries are orders of magnitude faster than per-query BFS.
        bfs = methods["BFS"]
        if bfs.finished and bfs.query_seconds > 0:
            assert pll.query_seconds < bfs.query_seconds / 10


def test_table3_large_datasets_pll_scalability(run_once, save_result, full_scale):
    """Table 3, lower half: PLL alone on the six larger datasets."""
    datasets = LARGE_DATASETS if full_scale else ["skitter", "indo", "metrosec", "indochina"]
    num_queries = 10_000 if full_scale else 2_000

    measurements = run_once(
        run_table3,
        datasets,
        num_queries=num_queries,
        include_baselines=False,
    )
    text = format_table3(measurements)
    print("\n" + text)
    save_result("table3_large", text)

    for measurement in measurements:
        assert measurement.finished
        # Queries stay in the microsecond-to-sub-millisecond range even as the
        # graphs grow (the paper's "query time does not increase rapidly").
        assert measurement.query_seconds < 2e-3


def test_table3_dnf_behaviour_of_baselines(run_once, save_result):
    """The quadratic baselines refuse the larger datasets (the paper's DNF cells)."""
    measurements = run_once(
        run_table3,
        ["flickr"],
        num_queries=500,
        include_baselines=True,
        online_query_cap=10,
    )
    text = format_table3(measurements)
    print("\n" + text)
    save_result("table3_dnf", text)

    statuses = {m.method: m.finished for m in measurements}
    assert statuses["PLL"]
    assert not statuses["HHL"], "HHL should hit its vertex cap on flickr"
    assert not statuses["TreeDec"], "TreeDec should hit its core cap on flickr"
    assert np.isfinite(
        next(m for m in measurements if m.method == "PLL").query_seconds
    )


def collect_results(*, smoke: bool = False):
    """Run the suite and emit the shared observatory schema (``repro.obs``)."""
    import re
    import time

    from repro.obs import Metric, bench_result

    datasets = (
        ["notredame"] if smoke else ["gnutella", "epinions", "notredame", "wikitalk"]
    )
    num_queries = 300 if smoke else 2_000
    start = time.perf_counter()
    measurements = run_table3(
        datasets,
        num_queries=num_queries,
        include_baselines=True,
        online_query_cap=10 if smoke else 50,
    )
    run_seconds = time.perf_counter() - start
    metrics = [
        Metric(
            "run_seconds", run_seconds, unit="s", higher_is_better=False, tolerance=0.5
        ),
        Metric("num_measurements", len(measurements)),
    ]
    for measurement in measurements:
        if not measurement.finished:
            continue
        slug = re.sub(r"[^a-z0-9]+", "_", measurement.method.lower()).strip("_")
        prefix = f"{measurement.dataset}_{slug}"
        metrics.append(
            Metric(
                f"{prefix}_indexing_seconds", measurement.indexing_seconds, unit="s"
            )
        )
        metrics.append(
            Metric(
                f"{prefix}_query_us", measurement.query_seconds * 1e6, unit="us"
            )
        )
    return bench_result("table3", metrics, smoke=smoke)

"""Benchmarks for the Section 6 variants: weighted, directed, paths, dynamic.

The paper describes these extensions without evaluating them; this module
gives them the same treatment as the main method so their overheads are
documented: indexing time, index size and query time relative to the basic
undirected/unweighted oracle on comparable inputs.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import (
    DirectedPrunedLandmarkLabeling,
    DynamicPrunedLandmarkLabeling,
    PathPrunedLandmarkLabeling,
    PrunedLandmarkLabeling,
    WeightedPrunedLandmarkLabeling,
)
from repro.datasets import load_dataset
from repro.experiments import format_table, random_pairs
from repro.graph.csr import Graph
from repro.generators import (
    assign_random_weights,
    grid_graph,
    orient_edges,
    split_edge_stream,
)


def _measure(oracle_factory, graph, pairs):
    start = time.perf_counter()
    oracle = oracle_factory().build(graph)
    build_seconds = time.perf_counter() - start
    start = time.perf_counter()
    for s, t in pairs:
        oracle.distance(s, t)
    query_seconds = (time.perf_counter() - start) / max(len(pairs), 1)
    return oracle, build_seconds, query_seconds


def test_variants_overhead(run_once, save_result, full_scale):
    """Weighted / directed / path-reconstructing variants vs the basic oracle."""
    base_graph = load_dataset("gnutella")
    weighted_graph = assign_random_weights(base_graph, low=1, high=10, seed=0)
    directed_graph = orient_edges(base_graph, both_directions_probability=0.3, seed=0)
    road_graph = grid_graph(40, 40, weighted=True, diagonal_probability=0.1, seed=0)
    num_queries = 2_000 if full_scale else 500
    pairs = random_pairs(base_graph.num_vertices, num_queries, seed=1)
    road_pairs = random_pairs(road_graph.num_vertices, num_queries, seed=1)

    def run_all():
        rows = []
        base, base_build, base_query = _measure(
            lambda: PrunedLandmarkLabeling(num_bit_parallel_roots=16),
            base_graph,
            pairs,
        )
        rows.append(
            {
                "variant": "basic (hop distances)",
                "graph": "gnutella stand-in",
                "build s": round(base_build, 2),
                "query us": round(base_query * 1e6, 1),
                "avg label": round(base.average_label_size(), 1),
            }
        )
        path_oracle, path_build, path_query = _measure(
            PathPrunedLandmarkLabeling, base_graph, pairs
        )
        rows.append(
            {
                "variant": "path reconstruction",
                "graph": "gnutella stand-in",
                "build s": round(path_build, 2),
                "query us": round(path_query * 1e6, 1),
                "avg label": round(path_oracle.average_label_size(), 1),
            }
        )
        weighted, weighted_build, weighted_query = _measure(
            WeightedPrunedLandmarkLabeling, weighted_graph, pairs
        )
        rows.append(
            {
                "variant": "weighted (pruned Dijkstra)",
                "graph": "gnutella stand-in + weights",
                "build s": round(weighted_build, 2),
                "query us": round(weighted_query * 1e6, 1),
                "avg label": round(weighted.average_label_size(), 1),
            }
        )
        directed, directed_build, directed_query = _measure(
            DirectedPrunedLandmarkLabeling, directed_graph, pairs
        )
        rows.append(
            {
                "variant": "directed (IN/OUT labels)",
                "graph": "gnutella stand-in, oriented",
                "build s": round(directed_build, 2),
                "query us": round(directed_query * 1e6, 1),
                "avg label": round(directed.average_label_size(), 1),
            }
        )
        road, road_build, road_query = _measure(
            WeightedPrunedLandmarkLabeling, road_graph, road_pairs
        )
        rows.append(
            {
                "variant": "weighted (road-like grid)",
                "graph": "40x40 weighted grid",
                "build s": round(road_build, 2),
                "query us": round(road_query * 1e6, 1),
                "avg label": round(road.average_label_size(), 1),
            }
        )
        return rows

    rows = run_once(run_all)
    text = format_table(rows, title="Section 6 variants: indexing and query cost")
    print("\n" + text)
    save_result("variants", text)

    base_row = rows[0]
    for row in rows[1:4]:
        # Variants stay within an order of magnitude of the basic oracle's
        # build cost on the same topology.
        assert row["build s"] < 30 * max(base_row["build s"], 0.05)


def test_dynamic_updates_throughput(run_once, save_result, full_scale):
    """Insert-only dynamic maintenance vs rebuilding from scratch."""
    graph = load_dataset("gnutella")
    num_insertions = 500 if full_scale else 150
    initial, stream = split_edge_stream(graph, 0.9, seed=3)
    stream = stream[:num_insertions]

    def run_dynamic():
        oracle = DynamicPrunedLandmarkLabeling().build(initial)
        start = time.perf_counter()
        oracle.insert_edges(stream)
        update_seconds = time.perf_counter() - start

        start = time.perf_counter()
        PrunedLandmarkLabeling().build(graph)
        rebuild_seconds = time.perf_counter() - start
        return oracle, update_seconds, rebuild_seconds

    oracle, update_seconds, rebuild_seconds = run_once(run_dynamic)
    per_insert_ms = update_seconds / max(len(stream), 1) * 1e3
    rows = [
        {
            "operation": f"{len(stream)} edge insertions (incremental)",
            "total s": round(update_seconds, 3),
            "per edge ms": round(per_insert_ms, 3),
        },
        {
            "operation": "full rebuild (static index)",
            "total s": round(rebuild_seconds, 3),
            "per edge ms": "-",
        },
    ]
    text = format_table(rows, title="Dynamic updates: incremental insertion vs rebuild")
    print("\n" + text)
    save_result("dynamic_updates", text)

    # Incremental maintenance of a single edge is much cheaper than a rebuild.
    assert per_insert_ms / 1e3 < rebuild_seconds
    # Spot-check correctness after the stream.
    spot = random_pairs(graph.num_vertices, 50, seed=4)
    static = PrunedLandmarkLabeling().build(
        Graph(graph.num_vertices, list(initial.edges()) + list(stream))
    )
    assert np.array_equal(oracle.distances(spot), static.distances(spot))


def collect_results(*, smoke: bool = False):
    """Run the suite and emit the shared observatory schema (``repro.obs``)."""
    import time as _time

    from repro.obs import Metric, bench_result

    graph = load_dataset("gnutella")
    num_queries = 150 if smoke else 500
    pairs = random_pairs(graph.num_vertices, num_queries, seed=1)
    weighted_graph = assign_random_weights(graph, low=1, high=10, seed=0)
    directed_graph = orient_edges(graph, both_directions_probability=0.3, seed=0)
    start = _time.perf_counter()
    variants = {
        "basic": (lambda: PrunedLandmarkLabeling(num_bit_parallel_roots=16), graph),
        "path": (PathPrunedLandmarkLabeling, graph),
        "weighted": (WeightedPrunedLandmarkLabeling, weighted_graph),
        "directed": (DirectedPrunedLandmarkLabeling, directed_graph),
    }
    metrics = []
    for name, (factory, variant_graph) in variants.items():
        _, build_seconds, query_seconds = _measure(factory, variant_graph, pairs)
        metrics.append(Metric(f"{name}_build_seconds", build_seconds, unit="s"))
        metrics.append(Metric(f"{name}_query_us", query_seconds * 1e6, unit="us"))
    run_seconds = _time.perf_counter() - start
    metrics.insert(
        0,
        Metric(
            "run_seconds", run_seconds, unit="s", higher_is_better=False, tolerance=0.5
        ),
    )
    return bench_result("variants", metrics, smoke=smoke)

"""Ablation benchmarks for the design choices called out in DESIGN.md.

Three ablations complement the paper's own figures: pruning on/off
(Section 4.1 vs 4.2), the vertex-ordering strategies measured by search-space
size as well as label size, and an empirical check of Theorem 4.3's label-size
bound.
"""

from __future__ import annotations

from repro.datasets import load_dataset
from repro.experiments import (
    format_ablation,
    ordering_ablation,
    pruning_ablation,
    theorem43_check,
)


def test_ablation_pruning_on_off(run_once, save_result, full_scale):
    """Pruned vs naive landmark labeling: index size and construction cost."""
    dataset = "gnutella" if not full_scale else "epinions"
    graph = load_dataset(dataset)

    rows = run_once(pruning_ablation, graph)
    text = format_ablation(rows, f"Ablation: pruning on/off ({dataset})")
    print("\n" + text)
    save_result("ablation_pruning", text)

    pruned = next(r for r in rows if "pruned" in r["method"])
    naive = next(r for r in rows if "naive" in r["method"])
    # Pruning removes the overwhelming majority of label entries (the naive
    # index is Θ(n) entries per vertex, i.e. quadratic overall).
    assert pruned["total label entries"] < 0.1 * naive["total label entries"]
    assert pruned["index bytes"] < 0.1 * naive["index bytes"]
    assert pruned["build seconds"] < naive["build seconds"]


def test_ablation_vertex_ordering(run_once, save_result, full_scale):
    """Ordering strategies measured by label size, search space and build time."""
    datasets = ["gnutella", "epinions"] if full_scale else ["gnutella"]

    rows = run_once(
        ordering_ablation, datasets, strategies=["degree", "closeness", "random"]
    )
    text = format_ablation(rows, "Ablation: vertex ordering strategies")
    print("\n" + text)
    save_result("ablation_ordering", text)

    by_key = {(r["dataset"], r["strategy"]): r for r in rows}
    for dataset in datasets:
        degree = by_key[(dataset, "degree")]
        closeness = by_key[(dataset, "closeness")]
        random = by_key[(dataset, "random")]
        # Centrality-aware orderings dominate the random baseline on every axis.
        assert degree["avg label size"] < 0.3 * random["avg label size"]
        assert degree["total visited"] < random["total visited"]
        # Degree and Closeness are comparable (within a factor of two).
        assert closeness["avg label size"] < 2 * degree["avg label size"]


def test_ablation_theorem43_bound(run_once, save_result, full_scale):
    """Theorem 4.3: average label size is O(k + eps * n) given landmark coverage."""
    dataset = "epinions" if full_scale else "notredame"
    num_pairs = 2_000 if full_scale else 600

    rows = run_once(
        theorem43_check,
        dataset,
        landmark_counts=(4, 16, 64, 256),
        num_pairs=num_pairs,
    )
    text = format_ablation(rows, "Ablation: Theorem 4.3 label-size bound")
    print("\n" + text)
    save_result("ablation_theorem43", text)

    for row in rows:
        assert row["within bound"], row
    # More landmarks answer a larger fraction of pairs exactly.
    fractions = [row["landmark exact fraction"] for row in rows]
    assert fractions == sorted(fractions)


def collect_results(*, smoke: bool = False):
    """Run the suite and emit the shared observatory schema (``repro.obs``)."""
    import re
    import time

    from repro.obs import Metric, bench_result

    graph = load_dataset("gnutella" if smoke else "epinions")
    start = time.perf_counter()
    pruning_rows = pruning_ablation(graph)
    # The random ordering is deliberately near-quadratic (the effect the
    # ablation demonstrates) and dominates the runtime; smoke skips it.
    if smoke:
        ordering_rows = ordering_ablation(
            ["gnutella"], strategies=["degree", "closeness"]
        )
    else:
        ordering_rows = ordering_ablation(["gnutella", "epinions"])
    run_seconds = time.perf_counter() - start
    metrics = [
        Metric(
            "run_seconds", run_seconds, unit="s", higher_is_better=False, tolerance=0.5
        ),
        Metric("num_pruning_rows", len(pruning_rows)),
        Metric("num_ordering_rows", len(ordering_rows)),
    ]
    for row in pruning_rows:
        slug = re.sub(r"[^a-z0-9]+", "_", str(row["method"]).lower()).strip("_")
        metrics.append(Metric(f"{slug}_label_entries", row["total label entries"]))
        metrics.append(
            Metric(f"{slug}_build_seconds", row["build seconds"], unit="s")
        )
    return bench_result("ablations", metrics, smoke=smoke)

"""Benchmark for the observability layer's instrumentation overhead.

The tracing spans and fixed-bucket histograms are designed to be left on in
production, so their cost has to be measured, not assumed.  This benchmark
drives the same batched query workload through two :class:`QueryServer`
configurations:

* **instrumented** — a live :class:`TraceRecorder` (every request leaves a
  stitched trace in the ring buffer), :class:`ServerMetrics` with the
  end-to-end and per-stage histograms enabled, a :class:`HealthMonitor`
  evaluating the full default alert-rule set on its background thread, and a
  :class:`ShadowCanary` re-verifying 1 % of served batches through the
  scalar per-pair path,
* **baseline** — :class:`NullTraceRecorder` (span recording compiled down to
  one ``enabled`` check) plus :class:`ServerMetrics` with histograms off; no
  health engine, no canary.

Rounds are interleaved (baseline, instrumented, baseline, ...) and the best
round per configuration is compared, so cache warm-up and CPU-frequency drift
hit both sides equally.  The acceptance bar: instrumented throughput within
**5 %** of baseline (relaxed at ``--smoke`` scale, where per-round noise on a
sub-second workload dominates).

Also runnable standalone: ``python benchmarks/bench_observability.py [--smoke]``.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, Tuple

import numpy as np

from repro.core.index import PrunedLandmarkLabeling
from repro.experiments.workloads import random_pairs
from repro.generators import barabasi_albert_graph
from repro.serving import (
    BatchQueryEngine,
    HealthMonitor,
    NullTraceRecorder,
    QueryServer,
    ServerMetrics,
    ShadowCanary,
    TraceRecorder,
)

#: Maximum throughput regression the always-on instrumentation may cost.
REQUIRED_OVERHEAD = 0.05
#: Relaxed bar at smoke scale, where each round runs well under a second.
SMOKE_OVERHEAD = 0.15
#: Shadow-canary sampling rate carried by the instrumented configuration.
SHADOW_SAMPLE_RATE = 0.01


def _measure_qps(
    engine: BatchQueryEngine,
    sources: np.ndarray,
    targets: np.ndarray,
    *,
    batch_size: int,
    instrumented: bool,
) -> Tuple[float, Dict[str, float]]:
    """One round: serve the whole workload.

    Returns ``(queries/s, health stats)`` — the stats dict is empty for the
    baseline configuration and carries the shadow-canary counters plus the
    firing-alert gauge for the instrumented one.
    """
    if instrumented:
        tracer = TraceRecorder()
        metrics = ServerMetrics()
    else:
        tracer = NullTraceRecorder()
        metrics = ServerMetrics(histogram_buckets=None)
    health_stats: Dict[str, float] = {}
    with QueryServer(
        engine, max_batch_size=batch_size, metrics=metrics, tracer=tracer
    ) as server:
        health = None
        shadow = None
        if instrumented:
            # The instrumented configuration carries the full health stack:
            # the alert engine on its background thread (at the production
            # default cadence — `serve --health-interval` is 5s) and a 1%
            # shadow canary re-verifying served batches.  Both run during
            # the timed loop, so their cost lands inside the overhead
            # budget; a forced tick() after the loop guarantees at least
            # one full rule evaluation per round regardless of cadence.
            shadow = ShadowCanary(SHADOW_SAMPLE_RATE, seed=43)
            shadow.start()
            server.shadow = shadow
            health = HealthMonitor(server.metrics_snapshot, interval_seconds=5.0)
            health.start()
            server.health = health
        # One untimed warm-up batch per round: freshly-started monitor and
        # canary threads settle before the clock starts — at smoke scale
        # their startup otherwise lands inside a ~40 ms timed window and
        # dominates the measurement.
        server.submit(sources[:batch_size], targets[:batch_size]).wait(120)
        start = time.perf_counter()
        for begin in range(0, sources.shape[0], batch_size):
            end = begin + batch_size
            server.submit(sources[begin:end], targets[begin:end]).wait(120)
        seconds = time.perf_counter() - start
        if instrumented:
            # The instrumented side must actually have instrumented: every
            # request traced, every histogram fed — otherwise the comparison
            # flatters a broken pipeline.
            # +1 for the untimed warm-up batch.
            assert tracer.num_recorded == -(-sources.shape[0] // batch_size) + 1
            histograms = server.metrics_snapshot()["histograms"]
            assert histograms["latency_seconds"]["count"] > 0
            assert histograms["stage_kernel_seconds"]["count"] > 0
            shadow.flush()
            health.tick()  # at least one full rule evaluation per round
            payload = health.alerts_payload()
            assert payload["enabled"] and payload["rules"]
            stats = server.metrics_snapshot()
            health_stats = {
                "shadow_pairs": stats["shadow_pairs_total"],
                "shadow_mismatches": stats["shadow_mismatches_total"],
                "alerts_firing": stats["alerts_firing"],
            }
            health.stop()
            shadow.stop()
    return sources.shape[0] / seconds, health_stats


def _forced_canary_verification(
    engine: BatchQueryEngine,
    sources: np.ndarray,
    targets: np.ndarray,
) -> Dict[str, float]:
    """Re-verify one real served batch at sampling rate 1.0.

    The 1% rate above may legitimately sample zero batches on a small smoke
    run; this pass pins the canary's correctness contract — exact agreement
    between the batched kernel answers and the scalar per-pair path —
    deterministically, every run.
    """
    shadow = ShadowCanary(1.0, seed=11)
    shadow.start()
    # The reply future resolves before the batch worker reaches the shadow
    # hook, so flush() must wait for the server to wind down (joining the
    # worker) before it can see the enqueued batch.
    with QueryServer(engine, max_batch_size=sources.shape[0]) as server:
        server.shadow = shadow
        server.submit(sources, targets).wait(120)
    shadow.flush()
    stats = shadow.stats()
    shadow.stop()
    assert stats["shadow_pairs_total"] > 0, "forced canary verified nothing"
    return stats


def run_observability_benchmark(
    *,
    num_vertices: int = 10_000,
    attach: int = 5,
    num_queries: int = 200_000,
    batch_size: int = 2_048,
    rounds: int = 3,
    seed: int = 29,
) -> Dict[str, float]:
    """Interleave baseline and instrumented rounds; compare the best of each."""
    graph = barabasi_albert_graph(num_vertices, attach, seed=seed)
    index = PrunedLandmarkLabeling(num_bit_parallel_roots=8).build(graph)
    engine = BatchQueryEngine(index)
    pairs = np.asarray(
        random_pairs(num_vertices, num_queries, seed=seed + 1), dtype=np.int64
    )
    sources, targets = pairs[:, 0], pairs[:, 1]

    baseline_qps = []
    instrumented_qps = []
    shadow_pairs = 0.0
    shadow_mismatches = 0.0
    alerts_firing = 0.0
    for _ in range(rounds):
        qps, _ = _measure_qps(
            engine, sources, targets, batch_size=batch_size, instrumented=False
        )
        baseline_qps.append(qps)
        qps, health_stats = _measure_qps(
            engine, sources, targets, batch_size=batch_size, instrumented=True
        )
        instrumented_qps.append(qps)
        shadow_pairs += health_stats["shadow_pairs"]
        shadow_mismatches += health_stats["shadow_mismatches"]
        alerts_firing = max(alerts_firing, health_stats["alerts_firing"])

    forced = _forced_canary_verification(
        engine, sources[:batch_size], targets[:batch_size]
    )
    shadow_pairs += forced["shadow_pairs_total"]
    shadow_mismatches += forced["shadow_mismatches_total"]

    best_baseline = max(baseline_qps)
    best_instrumented = max(instrumented_qps)
    return {
        "num_vertices": num_vertices,
        "num_queries": num_queries,
        "batch_size": batch_size,
        "rounds": rounds,
        "baseline_qps": best_baseline,
        "instrumented_qps": best_instrumented,
        "overhead": 1.0 - best_instrumented / best_baseline,
        "shadow_pairs": shadow_pairs,
        "shadow_mismatches": shadow_mismatches,
        "alerts_firing": alerts_firing,
    }


def format_observability_report(results: Dict[str, float]) -> str:
    """Human-readable overhead report."""
    lines = [
        "Observability overhead benchmark "
        "(tracing + histograms + health engine + shadow canary vs no-op)",
        f"  workload: {results['num_queries']:,.0f} pairs on "
        f"{results['num_vertices']:,.0f} vertices, "
        f"batches of {results['batch_size']:,.0f}, "
        f"best of {results['rounds']:.0f} interleaved rounds",
        "",
        f"  baseline (no-op recorder)   {results['baseline_qps']:12,.0f} queries/s",
        f"  instrumented (full stack)   {results['instrumented_qps']:12,.0f} queries/s",
        f"  overhead                    {results['overhead']:12.2%}",
        f"  shadow pairs re-verified    {results['shadow_pairs']:12,.0f}",
        f"  shadow mismatches           {results['shadow_mismatches']:12,.0f}",
        f"  alerts firing               {results['alerts_firing']:12,.0f}",
    ]
    return "\n".join(lines)


def _check(results: Dict[str, float], *, smoke: bool) -> None:
    budget = SMOKE_OVERHEAD if smoke else REQUIRED_OVERHEAD
    assert results["overhead"] <= budget, (
        f"instrumentation overhead {results['overhead']:.1%} above the "
        f"{budget:.0%} budget — tracing/histograms/health/canary are no "
        "longer cheap enough to leave on"
    )
    assert results["shadow_mismatches"] == 0, (
        f"shadow canary found {results['shadow_mismatches']:.0f} divergences "
        "between the batched kernel and the scalar per-pair path"
    )


def test_observability_overhead_within_budget(run_once, save_result, full_scale):
    """Always-on tracing + histograms must cost <= 5% of serving throughput."""
    kwargs = dict(num_queries=400_000) if full_scale else {}
    results = run_once(run_observability_benchmark, **kwargs)
    text = format_observability_report(results)
    print("\n" + text)
    save_result("observability", text)
    _check(results, smoke=False)


def collect_results(*, smoke: bool = False):
    """Run the suite and emit the shared observatory schema (``repro.obs``)."""
    from repro.obs import Metric, bench_result

    if smoke:
        results = run_observability_benchmark(
            num_vertices=2_000, attach=3, num_queries=40_000, batch_size=1_024
        )
    else:
        results = run_observability_benchmark()
    _check(results, smoke=smoke)
    metrics = [
        Metric(
            "baseline_qps",
            results["baseline_qps"],
            unit="queries/s",
            higher_is_better=True,
        ),
        Metric(
            "instrumented_qps",
            results["instrumented_qps"],
            unit="queries/s",
            higher_is_better=True,
        ),
        # Overhead hovers near zero, so a relative band around the median is
        # meaningless noise; a wide explicit tolerance keeps the gate on the
        # _check assertion (<= budget) rather than run-to-run jitter.
        Metric(
            "overhead", results["overhead"], higher_is_better=False, tolerance=5.0
        ),
        # Exact-zero gates: the committed baselines carry all-zero samples,
        # so the tolerance band collapses to zero and *any* shadow mismatch
        # or firing alert in CI fails ``bench compare`` outright.
        Metric("shadow_mismatches", results["shadow_mismatches"], higher_is_better=False),
        Metric("alerts_firing", results["alerts_firing"], higher_is_better=False),
        Metric("num_queries", results["num_queries"]),
        Metric("num_vertices", results["num_vertices"]),
    ]
    return bench_result("observability", metrics, smoke=smoke)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    if smoke:
        report = run_observability_benchmark(
            num_vertices=2_000, attach=3, num_queries=40_000, batch_size=1_024
        )
    else:
        report = run_observability_benchmark()
    print(format_observability_report(report))
    try:
        _check(report, smoke=smoke)
    except AssertionError as exc:
        raise SystemExit(f"FAIL: {exc}")
    print("PASS" + (" (smoke scale)" if smoke else ""))

"""Benchmark for the observability layer's instrumentation overhead.

The tracing spans and fixed-bucket histograms are designed to be left on in
production, so their cost has to be measured, not assumed.  This benchmark
drives the same batched query workload through two :class:`QueryServer`
configurations:

* **instrumented** — a live :class:`TraceRecorder` (every request leaves a
  stitched trace in the ring buffer) plus :class:`ServerMetrics` with the
  end-to-end and per-stage histograms enabled,
* **baseline** — :class:`NullTraceRecorder` (span recording compiled down to
  one ``enabled`` check) plus :class:`ServerMetrics` with histograms off.

Rounds are interleaved (baseline, instrumented, baseline, ...) and the best
round per configuration is compared, so cache warm-up and CPU-frequency drift
hit both sides equally.  The acceptance bar: instrumented throughput within
**5 %** of baseline (relaxed at ``--smoke`` scale, where per-round noise on a
sub-second workload dominates).

Also runnable standalone: ``python benchmarks/bench_observability.py [--smoke]``.
"""

from __future__ import annotations

import sys
import time
from typing import Dict

import numpy as np

from repro.core.index import PrunedLandmarkLabeling
from repro.experiments.workloads import random_pairs
from repro.generators import barabasi_albert_graph
from repro.serving import (
    BatchQueryEngine,
    NullTraceRecorder,
    QueryServer,
    ServerMetrics,
    TraceRecorder,
)

#: Maximum throughput regression the always-on instrumentation may cost.
REQUIRED_OVERHEAD = 0.05
#: Relaxed bar at smoke scale, where each round runs well under a second.
SMOKE_OVERHEAD = 0.15


def _measure_qps(
    engine: BatchQueryEngine,
    sources: np.ndarray,
    targets: np.ndarray,
    *,
    batch_size: int,
    instrumented: bool,
) -> float:
    """One round: serve the whole workload, return end-to-end queries/s."""
    if instrumented:
        tracer = TraceRecorder()
        metrics = ServerMetrics()
    else:
        tracer = NullTraceRecorder()
        metrics = ServerMetrics(histogram_buckets=None)
    with QueryServer(
        engine, max_batch_size=batch_size, metrics=metrics, tracer=tracer
    ) as server:
        start = time.perf_counter()
        for begin in range(0, sources.shape[0], batch_size):
            end = begin + batch_size
            server.submit(sources[begin:end], targets[begin:end]).wait(120)
        seconds = time.perf_counter() - start
        if instrumented:
            # The instrumented side must actually have instrumented: every
            # request traced, every histogram fed — otherwise the comparison
            # flatters a broken pipeline.
            assert tracer.num_recorded == -(-sources.shape[0] // batch_size)
            histograms = server.metrics_snapshot()["histograms"]
            assert histograms["latency_seconds"]["count"] > 0
            assert histograms["stage_kernel_seconds"]["count"] > 0
    return sources.shape[0] / seconds


def run_observability_benchmark(
    *,
    num_vertices: int = 10_000,
    attach: int = 5,
    num_queries: int = 200_000,
    batch_size: int = 2_048,
    rounds: int = 3,
    seed: int = 29,
) -> Dict[str, float]:
    """Interleave baseline and instrumented rounds; compare the best of each."""
    graph = barabasi_albert_graph(num_vertices, attach, seed=seed)
    index = PrunedLandmarkLabeling(num_bit_parallel_roots=8).build(graph)
    engine = BatchQueryEngine(index)
    pairs = np.asarray(
        random_pairs(num_vertices, num_queries, seed=seed + 1), dtype=np.int64
    )
    sources, targets = pairs[:, 0], pairs[:, 1]

    baseline_qps = []
    instrumented_qps = []
    for _ in range(rounds):
        baseline_qps.append(
            _measure_qps(
                engine, sources, targets, batch_size=batch_size, instrumented=False
            )
        )
        instrumented_qps.append(
            _measure_qps(
                engine, sources, targets, batch_size=batch_size, instrumented=True
            )
        )

    best_baseline = max(baseline_qps)
    best_instrumented = max(instrumented_qps)
    return {
        "num_vertices": num_vertices,
        "num_queries": num_queries,
        "batch_size": batch_size,
        "rounds": rounds,
        "baseline_qps": best_baseline,
        "instrumented_qps": best_instrumented,
        "overhead": 1.0 - best_instrumented / best_baseline,
    }


def format_observability_report(results: Dict[str, float]) -> str:
    """Human-readable overhead report."""
    lines = [
        "Observability overhead benchmark (tracing + histograms vs no-op)",
        f"  workload: {results['num_queries']:,.0f} pairs on "
        f"{results['num_vertices']:,.0f} vertices, "
        f"batches of {results['batch_size']:,.0f}, "
        f"best of {results['rounds']:.0f} interleaved rounds",
        "",
        f"  baseline (no-op recorder)   {results['baseline_qps']:12,.0f} queries/s",
        f"  instrumented (traces+hist)  {results['instrumented_qps']:12,.0f} queries/s",
        f"  overhead                    {results['overhead']:12.2%}",
    ]
    return "\n".join(lines)


def _check(results: Dict[str, float], *, smoke: bool) -> None:
    budget = SMOKE_OVERHEAD if smoke else REQUIRED_OVERHEAD
    assert results["overhead"] <= budget, (
        f"instrumentation overhead {results['overhead']:.1%} above the "
        f"{budget:.0%} budget — tracing/histograms are no longer cheap "
        "enough to leave on"
    )


def test_observability_overhead_within_budget(run_once, save_result, full_scale):
    """Always-on tracing + histograms must cost <= 5% of serving throughput."""
    kwargs = dict(num_queries=400_000) if full_scale else {}
    results = run_once(run_observability_benchmark, **kwargs)
    text = format_observability_report(results)
    print("\n" + text)
    save_result("observability", text)
    _check(results, smoke=False)


def collect_results(*, smoke: bool = False):
    """Run the suite and emit the shared observatory schema (``repro.obs``)."""
    from repro.obs import Metric, bench_result

    if smoke:
        results = run_observability_benchmark(
            num_vertices=2_000, attach=3, num_queries=40_000, batch_size=1_024
        )
    else:
        results = run_observability_benchmark()
    _check(results, smoke=smoke)
    metrics = [
        Metric(
            "baseline_qps",
            results["baseline_qps"],
            unit="queries/s",
            higher_is_better=True,
        ),
        Metric(
            "instrumented_qps",
            results["instrumented_qps"],
            unit="queries/s",
            higher_is_better=True,
        ),
        # Overhead hovers near zero, so a relative band around the median is
        # meaningless noise; a wide explicit tolerance keeps the gate on the
        # _check assertion (<= budget) rather than run-to-run jitter.
        Metric(
            "overhead", results["overhead"], higher_is_better=False, tolerance=5.0
        ),
        Metric("num_queries", results["num_queries"]),
        Metric("num_vertices", results["num_vertices"]),
    ]
    return bench_result("observability", metrics, smoke=smoke)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    if smoke:
        report = run_observability_benchmark(
            num_vertices=2_000, attach=3, num_queries=40_000, batch_size=1_024
        )
    else:
        report = run_observability_benchmark()
    print(format_observability_report(report))
    try:
        _check(report, smoke=smoke)
    except AssertionError as exc:
        raise SystemExit(f"FAIL: {exc}")
    print("PASS" + (" (smoke scale)" if smoke else ""))

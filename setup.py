"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that editable installs (``pip install -e .``) work in offline environments
where the ``wheel`` package (required by PEP 660 editable builds) is not
available and pip falls back to the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()

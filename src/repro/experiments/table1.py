"""Table 1: headline comparison with the numbers published for prior methods.

Table 1 of the paper juxtaposes the published indexing/query times of four
prior exact methods (TEDI, HCL, TD, HHL) with pruned landmark labeling's
results on representative networks.  The prior methods' numbers are copied
from their papers (they were not re-run by the authors either), so this driver
does the same: it reports the static published numbers alongside *our measured
PLL results* on the corresponding synthetic stand-in datasets, making the
qualitative comparison (orders-of-magnitude faster indexing at comparable
query time) reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.index import PrunedLandmarkLabeling
from repro.datasets.registry import get_dataset, load_dataset
from repro.experiments.harness import measure_method
from repro.experiments.reporting import format_query_time, format_seconds, format_table
from repro.experiments.workloads import random_pairs

__all__ = ["PUBLISHED_RESULTS", "run_table1", "format_table1"]


@dataclass(frozen=True)
class PublishedResult:
    """One row of published results from a prior paper (as cited in Table 1)."""

    method: str
    network_type: str
    vertices: str
    edges: str
    indexing: str
    query: str


#: The prior-method rows of Table 1, verbatim from the paper.
PUBLISHED_RESULTS: List[PublishedResult] = [
    PublishedResult("TEDI [41]", "Computer", "22 K", "46 K", "17 s", "4.2 us"),
    PublishedResult("TEDI [41]", "Social", "0.6 M", "0.6 M", "2,226 s", "55.0 us"),
    PublishedResult("HCL [17]", "Social", "7.1 K", "0.1 M", "1,003 s", "28.2 us"),
    PublishedResult("HCL [17]", "Citation", "0.7 M", "0.3 M", "253,104 s", "0.2 us"),
    PublishedResult("TD [4]", "Social", "0.3 M", "0.4 M", "9 s", "0.5 us"),
    PublishedResult("TD [4]", "Social", "2.4 M", "4.7 M", "2,473 s", "0.8 us"),
    PublishedResult("HHL [2]", "Computer", "0.2 M", "1.2 M", "7,399 s", "3.1 us"),
    PublishedResult("HHL [2]", "Social", "0.3 M", "1.9 M", "19,488 s", "6.9 us"),
    PublishedResult("PLL (paper)", "Web", "0.3 M", "1.5 M", "4 s", "0.5 us"),
    PublishedResult("PLL (paper)", "Social", "2.4 M", "4.7 M", "61 s", "0.6 us"),
    PublishedResult("PLL (paper)", "Social", "1.1 M", "114 M", "15,164 s", "15.6 us"),
    PublishedResult("PLL (paper)", "Web", "7.4 M", "194 M", "6,068 s", "4.1 us"),
]

#: Datasets we measure PLL on, mirroring the classes shown in Table 1.
DEFAULT_MEASURED_DATASETS = ["notredame", "wikitalk", "hollywood", "indochina"]


def run_table1(
    datasets: Optional[Sequence[str]] = None,
    *,
    num_queries: int = 1_000,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Measure PLL on the representative datasets and merge with published rows.

    Returns a list of row dictionaries with columns matching Table 1 plus a
    ``source`` column distinguishing published numbers from our measurements.
    """
    rows: List[Dict[str, object]] = []
    for published in PUBLISHED_RESULTS:
        rows.append(
            {
                "source": "published",
                "method": published.method,
                "network": published.network_type,
                "|V|": published.vertices,
                "|E|": published.edges,
                "indexing": published.indexing,
                "query": published.query,
            }
        )

    for name in datasets or DEFAULT_MEASURED_DATASETS:
        spec = get_dataset(name)
        graph = load_dataset(name)
        pairs = random_pairs(graph.num_vertices, num_queries, seed=seed)
        measurement = measure_method(
            "PLL (this repro)",
            lambda spec=spec: PrunedLandmarkLabeling(
                num_bit_parallel_roots=spec.default_bit_parallel
            ),
            graph,
            pairs,
            dataset=name,
        )
        rows.append(
            {
                "source": "measured",
                "method": "PLL (this repro)",
                "network": f"{spec.network_type} ({name})",
                "|V|": f"{graph.num_vertices / 1e3:.1f} K",
                "|E|": f"{graph.num_edges / 1e3:.1f} K",
                "indexing": format_seconds(measurement.indexing_seconds),
                "query": format_query_time(measurement.query_seconds),
            }
        )
    return rows


def format_table1(rows: Sequence[Dict[str, object]]) -> str:
    """Render the Table 1 rows as text."""
    return format_table(
        rows,
        ["source", "method", "network", "|V|", "|E|", "indexing", "query"],
        title="Table 1: summary of exact-method results (published) vs this reproduction (measured)",
    )

"""Figure 4: fraction of vertex pairs covered after each pruned BFS.

A pair ``(s, t)`` is *covered* after ``k`` BFSs when the labels created by the
first ``k`` BFSs already answer its exact distance.  Figure 4a plots this
coverage curve for random pairs; Figures 4b–4d split the pairs by their true
distance, showing that distant pairs are covered much earlier than close pairs
— the structural fact behind both the accuracy profile of landmark-based
estimates and the effectiveness of pruning.

The covering step of a pair is recovered *post hoc* from the final index: the
labels produced by the first ``k`` BFSs are exactly the final label entries
whose hub rank is below ``k``, so the covering step is one plus the smallest
rank of a hub realising the exact distance
(:meth:`~repro.core.index.PrunedLandmarkLabeling.covering_rank`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.index import PrunedLandmarkLabeling
from repro.datasets.registry import load_dataset
from repro.experiments.reporting import format_table
from repro.experiments.workloads import distance_stratified_workload

__all__ = [
    "CoverageCurve",
    "run_figure4",
    "format_figure4",
    "DEFAULT_FIGURE4_DATASETS",
]

#: The paper uses Gnutella, Epinions and Slashdot for Figure 4.
DEFAULT_FIGURE4_DATASETS = ["gnutella", "epinions", "slashdot"]


@dataclass
class CoverageCurve:
    """Coverage-vs-BFS-count curves for one dataset."""

    dataset: str
    #: Checkpoints (number of BFSs performed) at which coverage is evaluated.
    checkpoints: np.ndarray
    #: Overall fraction of sampled pairs covered at each checkpoint (Fig. 4a).
    overall: np.ndarray
    #: Per-distance coverage: distance -> fractions at each checkpoint (Fig. 4b-d).
    by_distance: Dict[int, np.ndarray]

    def coverage_at(self, checkpoint: int) -> float:
        """Overall coverage at (or just below) a given BFS count."""
        valid = np.flatnonzero(self.checkpoints <= checkpoint)
        if valid.size == 0:
            return 0.0
        return float(self.overall[valid[-1]])


def _checkpoints(num_vertices: int) -> np.ndarray:
    """Logarithmically spaced BFS-count checkpoints: 1, 2, 4, ..., n."""
    points = [1]
    while points[-1] < num_vertices:
        points.append(min(points[-1] * 2, num_vertices))
    return np.asarray(points, dtype=np.int64)


def run_figure4(
    datasets: Optional[Sequence[str]] = None,
    *,
    num_pairs: int = 2_000,
    seed: int = 0,
) -> List[CoverageCurve]:
    """Compute coverage curves for the requested datasets (no bit-parallel labels)."""
    curves = []
    for name in datasets or DEFAULT_FIGURE4_DATASETS:
        graph = load_dataset(name)
        index = PrunedLandmarkLabeling(num_bit_parallel_roots=0, seed=seed).build(graph)
        workload = distance_stratified_workload(graph, num_pairs, seed=seed)

        covering_steps = np.array(
            [
                index.covering_rank(s, t) or (graph.num_vertices + 1)
                for s, t in workload.pairs
            ],
            dtype=np.int64,
        )
        checkpoints = _checkpoints(graph.num_vertices)
        overall = np.array(
            [
                float((covering_steps <= checkpoint).mean())
                if covering_steps.size
                else 0.0
                for checkpoint in checkpoints
            ]
        )
        by_distance: Dict[int, np.ndarray] = {}
        for distance, indices in sorted(workload.by_distance.items()):
            steps = covering_steps[np.asarray(indices, dtype=np.int64)]
            by_distance[distance] = np.array(
                [float((steps <= checkpoint).mean()) for checkpoint in checkpoints]
            )
        curves.append(
            CoverageCurve(
                dataset=name,
                checkpoints=checkpoints,
                overall=overall,
                by_distance=by_distance,
            )
        )
    return curves


def format_figure4(curves: Sequence[CoverageCurve]) -> str:
    """Render the coverage curves as checkpoint tables."""
    sections: List[str] = []
    display_checkpoints = [1, 4, 16, 64, 256, 1_024, 4_096]
    for curve in curves:
        rows: List[Dict[str, object]] = []
        rows.append(
            {"series": "all pairs"}
            | {
                f"x={c}": f"{curve.coverage_at(c):.2f}"
                for c in display_checkpoints
                if c <= curve.checkpoints[-1]
            }
        )
        for distance, fractions in curve.by_distance.items():
            row: Dict[str, object] = {"series": f"d = {distance}"}
            for checkpoint in display_checkpoints:
                if checkpoint > curve.checkpoints[-1]:
                    continue
                valid = np.flatnonzero(curve.checkpoints <= checkpoint)
                row[f"x={checkpoint}"] = f"{fractions[valid[-1]]:.2f}" if valid.size else "-"
            rows.append(row)
        sections.append(
            format_table(
                rows,
                title=(
                    f"Figure 4 ({curve.dataset}): fraction of pairs covered "
                    "after x pruned BFSs"
                ),
            )
        )
    return "\n\n".join(sections)

"""Table 3: full method comparison on every dataset.

For each dataset the paper reports, per method (pruned landmark labeling,
hierarchical hub labeling, the tree-decomposition oracle, and per-query BFS):
indexing time (IT), index size (IS), average query time (QT) and, for the
labeling methods, the average label size (LN).  Methods that exceed their
resource budget are shown as DNF, which in this reproduction happens through
the baselines' configured limits rather than a 24-hour timeout.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.baselines.hub_labeling import HierarchicalHubLabeling
from repro.baselines.online import BidirectionalBFSOracle, OnlineBFSOracle
from repro.baselines.tree_decomposition import TreeDecompositionOracle
from repro.core.index import PrunedLandmarkLabeling
from repro.datasets.registry import get_dataset, list_datasets, load_dataset
from repro.experiments.harness import MethodMeasurement, MethodSpec, run_comparison
from repro.experiments.reporting import format_measurements
from repro.experiments.workloads import random_pairs

__all__ = ["default_methods", "run_table3", "format_table3"]


def default_methods(
    num_bit_parallel_roots: int,
    *,
    online_query_cap: int = 50,
) -> List[MethodSpec]:
    """The four methods compared in Table 3.

    ``online_query_cap`` limits how many workload pairs the per-query BFS
    baselines answer — they are three to five orders of magnitude slower per
    query, so a small sample suffices for a stable average (the paper likewise
    uses a smaller sample for the BFS column).
    """
    return [
        MethodSpec(
            "PLL",
            lambda: PrunedLandmarkLabeling(
                num_bit_parallel_roots=num_bit_parallel_roots
            ),
        ),
        MethodSpec("HHL", HierarchicalHubLabeling),
        MethodSpec("TreeDec", TreeDecompositionOracle),
        MethodSpec("BFS", OnlineBFSOracle, max_query_pairs=online_query_cap),
        MethodSpec(
            "BiBFS", BidirectionalBFSOracle, max_query_pairs=online_query_cap
        ),
    ]


def run_table3(
    datasets: Optional[Sequence[str]] = None,
    *,
    num_queries: int = 2_000,
    seed: int = 0,
    include_baselines: bool = True,
    online_query_cap: int = 50,
) -> List[MethodMeasurement]:
    """Run the Table 3 comparison.

    Parameters
    ----------
    datasets:
        Dataset names (defaults to all eleven).
    num_queries:
        Random query pairs per dataset (the paper uses one million; the
        default here keeps the whole table under a few minutes).
    include_baselines:
        When false, only pruned landmark labeling is measured (useful for the
        scalability half of the table, where the baselines DNF anyway).
    online_query_cap:
        Query-sample cap for the per-query BFS baselines.
    """
    measurements: List[MethodMeasurement] = []
    for name in datasets or list_datasets():
        spec = get_dataset(name)
        graph = load_dataset(name)
        pairs = random_pairs(graph.num_vertices, num_queries, seed=seed)
        if include_baselines:
            methods = default_methods(
                spec.default_bit_parallel, online_query_cap=online_query_cap
            )
        else:
            methods = default_methods(spec.default_bit_parallel)[:1]
        measurements.extend(
            run_comparison(graph, methods, pairs, dataset=name, validate=True)
        )
    return measurements


def format_table3(measurements: Sequence[MethodMeasurement]) -> str:
    """Render Table 3 as text."""
    header = (
        "Table 3: performance comparison (IT = indexing time, IS = index size, "
        "QT = avg query time, LN = avg label size)"
    )
    return header + "\n" + format_measurements(measurements)

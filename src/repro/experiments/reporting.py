"""Formatting helpers: human-readable tables and CSV export for experiment output.

The experiment drivers produce lists of dictionaries or measurement records;
this module renders them the way the paper's tables look (aligned columns,
seconds / microseconds / megabytes units) and optionally writes CSV files so
results can be post-processed elsewhere.
"""

from __future__ import annotations

import csv
import math
import os
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

__all__ = [
    "format_seconds",
    "format_query_time",
    "format_bytes",
    "format_table",
    "write_csv",
    "format_measurements",
]

PathLike = Union[str, os.PathLike]


def format_seconds(seconds: float) -> str:
    """Render a duration the way the paper does (e.g. ``61 s``, ``0.5 s``)."""
    if not math.isfinite(seconds):
        return "inf"
    if seconds >= 100:
        return f"{seconds:,.0f} s"
    if seconds >= 1:
        return f"{seconds:.1f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds * 1e6:.1f} us"


def format_query_time(seconds: float) -> str:
    """Render a per-query latency in microseconds / milliseconds."""
    if not math.isfinite(seconds):
        return "inf"
    if seconds >= 1:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.1f} us"


def format_bytes(num_bytes: float) -> str:
    """Render a byte count as B / KB / MB / GB (decimal units, as in the paper)."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1000 or unit == "TB":
            if unit == "B":
                return f"{value:.0f} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1000.0
    return f"{value:.1f} TB"  # pragma: no cover - unreachable


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    *,
    title: Optional[str] = None,
) -> str:
    """Render a list of dictionaries as an aligned text table.

    Parameters
    ----------
    rows:
        The records to print.
    columns:
        Column order; defaults to the keys of the first row.
    title:
        Optional title printed above the table.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    rendered = [[cell(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(r[i]) for r in rendered))
        for i, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append("  ".join(value.ljust(width) for value, width in zip(row, widths)))
    return "\n".join(lines)


def write_csv(
    rows: Sequence[Mapping[str, object]],
    path: PathLike,
    *,
    columns: Optional[Sequence[str]] = None,
) -> None:
    """Write records to a CSV file (column order as in :func:`format_table`)."""
    if not rows:
        with open(path, "w", newline="", encoding="utf-8") as handle:
            handle.write("")
        return
    if columns is None:
        columns = list(rows[0].keys())
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({column: row.get(column) for column in columns})


def format_measurements(measurements: Iterable) -> str:
    """Render :class:`~repro.experiments.harness.MethodMeasurement` records.

    Produces a table shaped like the paper's Table 3: one row per
    (dataset, method) with IT / IS / QT / LN columns.
    """
    rows: List[Dict[str, object]] = []
    for m in measurements:
        if not m.finished:
            rows.append(
                {
                    "dataset": m.dataset,
                    "method": m.method,
                    "IT": "DNF",
                    "IS": "-",
                    "QT": "-",
                    "LN": "-",
                }
            )
            continue
        label = "-"
        if m.average_label_size is not None:
            label = f"{m.average_label_size:.1f}"
            if m.bit_parallel_roots:
                label = f"{m.average_label_size:.1f}+{m.bit_parallel_roots}"
        rows.append(
            {
                "dataset": m.dataset,
                "method": m.method,
                "IT": format_seconds(m.indexing_seconds),
                "IS": format_bytes(m.index_bytes),
                "QT": format_query_time(m.query_seconds),
                "LN": label,
            }
        )
    return format_table(rows, ["dataset", "method", "IT", "IS", "QT", "LN"])

"""Ablation studies for the design choices DESIGN.md calls out.

Three ablations beyond the paper's own figures:

* :func:`pruning_ablation` — pruned vs naive landmark labeling (Section 4.1
  vs 4.2): total label entries, construction time and the resulting index
  size, demonstrating the quadratic blow-up that pruning avoids.
* :func:`ordering_ablation` — the three ordering strategies measured not just
  by label size (Table 5) but also by search-space size (vertices visited by
  the pruned BFSs) and construction time.
* :func:`theorem43_check` — empirical check of Theorem 4.3: if the standard
  landmark method with ``k`` landmarks answers a ``1 - ε`` fraction of pairs
  exactly, the PLL average label size should be ``O(k + εn)``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.baselines.landmark import LandmarkOracle
from repro.core.index import PrunedLandmarkLabeling
from repro.core.pruned import build_naive_labels, build_pruned_labels
from repro.datasets.registry import load_dataset
from repro.experiments.reporting import format_table
from repro.experiments.workloads import random_pair_workload
from repro.graph.csr import Graph
from repro.graph.ordering import compute_order

__all__ = [
    "pruning_ablation",
    "ordering_ablation",
    "theorem43_check",
    "format_ablation",
]


def pruning_ablation(
    graph: Graph, *, seed: int = 0
) -> List[Dict[str, object]]:
    """Compare pruned and naive landmark labeling on one (small) graph."""
    order = compute_order(graph, "degree", seed=seed)

    start = time.perf_counter()
    pruned_labels, _ = build_pruned_labels(graph, order)
    pruned_seconds = time.perf_counter() - start

    start = time.perf_counter()
    naive_labels, _ = build_naive_labels(graph, order)
    naive_seconds = time.perf_counter() - start

    rows = []
    for name, labels, seconds in [
        ("pruned (Section 4.2)", pruned_labels, pruned_seconds),
        ("naive (Section 4.1)", naive_labels, naive_seconds),
    ]:
        rows.append(
            {
                "method": name,
                "n": graph.num_vertices,
                "m": graph.num_edges,
                "total label entries": labels.total_entries(),
                "avg label size": round(labels.average_label_size(), 1),
                "index bytes": labels.nbytes(),
                "build seconds": round(seconds, 3),
            }
        )
    return rows


def ordering_ablation(
    datasets: Optional[Sequence[str]] = None,
    *,
    strategies: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Measure label size, search space and build time per ordering strategy."""
    rows: List[Dict[str, object]] = []
    for name in datasets or ["gnutella", "epinions"]:
        graph = load_dataset(name)
        for strategy in strategies or ["degree", "closeness", "random"]:
            start = time.perf_counter()
            index = PrunedLandmarkLabeling(
                ordering=strategy, num_bit_parallel_roots=0, seed=seed,
                collect_stats=True,
            ).build(graph)
            elapsed = time.perf_counter() - start
            stats = index.construction_stats
            rows.append(
                {
                    "dataset": name,
                    "strategy": strategy,
                    "avg label size": round(index.average_label_size(), 1),
                    "total visited": int(stats.visited_per_bfs.sum()),
                    "total pruned": int(stats.pruned_per_bfs.sum()),
                    "build seconds": round(elapsed, 2),
                }
            )
    return rows


def theorem43_check(
    dataset: str = "epinions",
    *,
    landmark_counts: Sequence[int] = (4, 16, 64, 256),
    num_pairs: int = 1_000,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Empirical check of Theorem 4.3's label-size bound ``O(k + εn)``.

    For each landmark count ``k`` the standard landmark oracle's exact-answer
    fraction ``1 - ε`` is estimated on random pairs, the bound ``k + εn`` is
    computed, and the measured PLL average label size is reported next to it.
    The theorem predicts the measured value stays within a small constant of
    the bound.
    """
    graph = load_dataset(dataset)
    workload = random_pair_workload(graph, num_pairs, seed=seed, with_ground_truth=True)
    index = PrunedLandmarkLabeling(num_bit_parallel_roots=0, seed=seed).build(graph)
    measured = index.average_label_size()

    rows: List[Dict[str, object]] = []
    for k in landmark_counts:
        oracle = LandmarkOracle(k, strategy="degree", seed=seed).build(graph)
        exact_fraction = oracle.exact_fraction(
            workload.pairs, list(workload.true_distances)
        )
        epsilon = 1.0 - exact_fraction
        bound = k + epsilon * graph.num_vertices
        rows.append(
            {
                "dataset": dataset,
                "k landmarks": k,
                "landmark exact fraction": round(exact_fraction, 3),
                "epsilon": round(epsilon, 3),
                "bound k + eps*n": round(bound, 1),
                "measured PLL label size": round(measured, 1),
                "within bound": bool(measured <= max(bound, 1.0) * 4.0),
            }
        )
    return rows


def format_ablation(rows: Sequence[Dict[str, object]], title: str) -> str:
    """Render any ablation result table."""
    return format_table(rows, title=title)

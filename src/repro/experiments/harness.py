"""Measurement harness: indexing time, index size, query time, label size.

Every table row of the paper reports the same four quantities for a method on
a dataset: indexing time (IT), index size (IS), average query time (QT) and,
for labeling methods, the average label size (LN).  This module measures all
of them uniformly for any oracle exposing the informal protocol used across
this library (``build(graph)``, ``distance(s, t)``, optionally
``index_size_bytes()`` / ``average_label_size()``), and records "did not
finish" outcomes when a baseline refuses or exceeds its budget — the analogue
of the paper's DNF entries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import IndexBuildError
from repro.graph.csr import Graph

__all__ = ["MethodMeasurement", "measure_method", "MethodSpec", "run_comparison"]


@dataclass
class MethodMeasurement:
    """Outcome of measuring one method on one graph."""

    method: str
    dataset: str
    num_vertices: int
    num_edges: int
    #: Indexing (preprocessing) wall-clock time in seconds; the paper's IT.
    indexing_seconds: float = 0.0
    #: Index size in bytes; the paper's IS.
    index_bytes: int = 0
    #: Average query time in seconds over the workload; the paper's QT.
    query_seconds: float = 0.0
    #: Average label entries per vertex, when the method has labels; paper's LN.
    average_label_size: Optional[float] = None
    #: Number of bit-parallel roots, when applicable.
    bit_parallel_roots: Optional[int] = None
    #: Whether the method finished; False reproduces the paper's "DNF" cells.
    finished: bool = True
    #: Human-readable note (e.g. the reason a method did not finish).
    note: str = ""
    #: Distances returned on the workload (used for cross-method validation).
    query_results: Optional[np.ndarray] = field(default=None, repr=False)

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary view for CSV reporting."""
        return {
            "method": self.method,
            "dataset": self.dataset,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "indexing_seconds": self.indexing_seconds,
            "index_bytes": self.index_bytes,
            "query_seconds": self.query_seconds,
            "average_label_size": self.average_label_size,
            "bit_parallel_roots": self.bit_parallel_roots,
            "finished": self.finished,
            "note": self.note,
        }


@dataclass(frozen=True)
class MethodSpec:
    """A named method: a zero-argument factory producing a fresh oracle."""

    name: str
    factory: Callable[[], object]
    #: Methods whose per-query cost is high get a smaller query sample.
    max_query_pairs: Optional[int] = None


def measure_method(
    name: str,
    oracle_factory: Callable[[], object],
    graph: Graph,
    pairs: Sequence[Tuple[int, int]],
    *,
    dataset: str = "",
    max_query_pairs: Optional[int] = None,
    collect_results: bool = False,
) -> MethodMeasurement:
    """Build one oracle, time its construction, and time its queries.

    A method that raises :class:`~repro.errors.IndexBuildError` (the library's
    "this input is beyond my configured limits" signal) or :class:`MemoryError`
    is reported as unfinished rather than crashing the whole comparison,
    mirroring the DNF entries in the paper's tables.
    """
    measurement = MethodMeasurement(
        method=name,
        dataset=dataset,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
    )
    oracle = oracle_factory()

    start = time.perf_counter()
    try:
        oracle.build(graph)
    except (IndexBuildError, MemoryError) as exc:
        measurement.finished = False
        measurement.note = f"DNF: {exc}"
        return measurement
    measurement.indexing_seconds = time.perf_counter() - start

    if hasattr(oracle, "index_size_bytes"):
        measurement.index_bytes = int(oracle.index_size_bytes())
    if hasattr(oracle, "average_label_size"):
        measurement.average_label_size = float(oracle.average_label_size())
    if hasattr(oracle, "bit_parallel_labels"):
        measurement.bit_parallel_roots = oracle.bit_parallel_labels.num_roots

    query_pairs = list(pairs)
    if max_query_pairs is not None and len(query_pairs) > max_query_pairs:
        query_pairs = query_pairs[:max_query_pairs]
    if query_pairs:
        results = np.empty(len(query_pairs), dtype=np.float64)
        start = time.perf_counter()
        for i, (s, t) in enumerate(query_pairs):
            results[i] = oracle.distance(s, t)
        elapsed = time.perf_counter() - start
        measurement.query_seconds = elapsed / len(query_pairs)
        if collect_results:
            measurement.query_results = results
    return measurement


def run_comparison(
    graph: Graph,
    methods: Sequence[MethodSpec],
    pairs: Sequence[Tuple[int, int]],
    *,
    dataset: str = "",
    validate: bool = True,
) -> List[MethodMeasurement]:
    """Measure several methods on the same graph and workload.

    With ``validate`` (the default), the distances returned by every finished
    *exact* method are cross-checked on the common prefix of the workload and
    a mismatch raises ``AssertionError`` — a comparison whose methods disagree
    is meaningless.  Approximate methods (anything exposing
    ``is_exact = False``) are exempt.
    """
    measurements: List[MethodMeasurement] = []
    reference: Optional[np.ndarray] = None
    reference_len = 0
    for spec in methods:
        measurement = measure_method(
            spec.name,
            spec.factory,
            graph,
            pairs,
            dataset=dataset,
            max_query_pairs=spec.max_query_pairs,
            collect_results=validate,
        )
        measurements.append(measurement)
        if not validate or not measurement.finished:
            continue
        oracle_exact = getattr(spec.factory, "is_exact", True)
        if measurement.query_results is None or not oracle_exact:
            continue
        if reference is None:
            reference = measurement.query_results
            reference_len = reference.shape[0]
        else:
            overlap = min(reference_len, measurement.query_results.shape[0])
            if overlap and not np.array_equal(
                reference[:overlap], measurement.query_results[:overlap]
            ):
                raise AssertionError(
                    f"exact methods disagree on dataset {dataset!r}: "
                    f"{measurements[0].method} vs {measurement.method}"
                )
    return measurements

"""Table 5: average label size under different vertex ordering strategies.

The paper's Table 5 reports, for the five smaller datasets, the average label
size produced by the Random, Degree and Closeness orderings (without
bit-parallel labels).  The headline finding — Random is one to two orders of
magnitude worse, Degree and Closeness are comparable with Degree slightly
ahead — is the motivation for using Degree everywhere else.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.core.index import PrunedLandmarkLabeling
from repro.datasets.registry import SMALL_DATASETS, load_dataset
from repro.experiments.reporting import format_table

__all__ = ["DEFAULT_STRATEGIES", "run_table5", "format_table5"]

#: Ordering strategies compared in the paper's Table 5.
DEFAULT_STRATEGIES = ["random", "degree", "closeness"]


def run_table5(
    datasets: Optional[Sequence[str]] = None,
    *,
    strategies: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Build one index per (dataset, ordering strategy) and record label sizes.

    Bit-parallel labels are disabled, exactly as in the paper's Table 5 runs.
    Returns one row per dataset with a column per strategy (average label
    size) plus build times for context.
    """
    rows: List[Dict[str, object]] = []
    for name in datasets or SMALL_DATASETS:
        graph = load_dataset(name)
        row: Dict[str, object] = {"dataset": name, "n": graph.num_vertices}
        for strategy in strategies or DEFAULT_STRATEGIES:
            start = time.perf_counter()
            index = PrunedLandmarkLabeling(
                ordering=strategy, num_bit_parallel_roots=0, seed=seed
            ).build(graph)
            elapsed = time.perf_counter() - start
            row[strategy] = round(index.average_label_size(), 1)
            row[f"{strategy}_seconds"] = round(elapsed, 2)
        rows.append(row)
    return rows


def format_table5(rows: Sequence[Dict[str, object]]) -> str:
    """Render Table 5 as text (label-size columns first, timing columns after)."""
    if not rows:
        return "(no rows)"
    size_columns = [c for c in rows[0] if not c.endswith("_seconds")]
    time_columns = [c for c in rows[0] if c.endswith("_seconds")]
    return format_table(
        rows,
        size_columns + time_columns,
        title="Table 5: average label size per vertex by ordering strategy (no bit-parallel labels)",
    )

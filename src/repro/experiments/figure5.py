"""Figure 5: performance against the number of bit-parallel BFSs.

The paper sweeps the number ``t`` of bit-parallel BFSs over 1…1024 on Skitter,
Indo and Flickr and plots four panels: (a) preprocessing time, (b) query time,
(c) average size of a normal label and (d) index size.  The qualitative
finding is that a moderate ``t`` improves all four, and that performance is
insensitive to the exact value unless ``t`` is made extremely large.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.index import PrunedLandmarkLabeling
from repro.datasets.registry import load_dataset
from repro.experiments.reporting import (
    format_bytes,
    format_query_time,
    format_seconds,
    format_table,
)
from repro.experiments.workloads import random_pairs

__all__ = [
    "BitParallelSweepPoint",
    "run_figure5",
    "format_figure5",
    "DEFAULT_FIGURE5_DATASETS",
    "DEFAULT_SWEEP",
]

#: The paper uses Skitter, Indo and Flickr for Figure 5.
DEFAULT_FIGURE5_DATASETS = ["skitter", "indo", "flickr"]

#: Sweep over the number of bit-parallel BFSs (the paper goes up to 1024).
DEFAULT_SWEEP = [0, 1, 4, 16, 64, 256]


@dataclass
class BitParallelSweepPoint:
    """One (dataset, t) measurement for Figure 5."""

    dataset: str
    num_bit_parallel: int
    preprocessing_seconds: float
    query_seconds: float
    average_normal_label_size: float
    index_bytes: int

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary view for CSV reporting."""
        return {
            "dataset": self.dataset,
            "num_bit_parallel": self.num_bit_parallel,
            "preprocessing_seconds": self.preprocessing_seconds,
            "query_seconds": self.query_seconds,
            "average_normal_label_size": self.average_normal_label_size,
            "index_bytes": self.index_bytes,
        }


def run_figure5(
    datasets: Optional[Sequence[str]] = None,
    *,
    sweep: Optional[Sequence[int]] = None,
    num_queries: int = 1_000,
    seed: int = 0,
) -> List[BitParallelSweepPoint]:
    """Sweep the number of bit-parallel BFSs and measure all four panels."""
    points = []
    for name in datasets or DEFAULT_FIGURE5_DATASETS:
        graph = load_dataset(name)
        pairs = random_pairs(graph.num_vertices, num_queries, seed=seed)
        for t in sweep if sweep is not None else DEFAULT_SWEEP:
            start = time.perf_counter()
            index = PrunedLandmarkLabeling(num_bit_parallel_roots=t, seed=seed).build(
                graph
            )
            preprocessing = time.perf_counter() - start

            start = time.perf_counter()
            for s, target in pairs:
                index.distance(s, target)
            query = (time.perf_counter() - start) / max(len(pairs), 1)

            points.append(
                BitParallelSweepPoint(
                    dataset=name,
                    num_bit_parallel=t,
                    preprocessing_seconds=preprocessing,
                    query_seconds=query,
                    average_normal_label_size=index.average_label_size(),
                    index_bytes=index.index_size_bytes(),
                )
            )
    return points


def format_figure5(points: Sequence[BitParallelSweepPoint]) -> str:
    """Render the sweep as one table per dataset (rows = t, columns = panels)."""
    by_dataset: Dict[str, List[BitParallelSweepPoint]] = {}
    for point in points:
        by_dataset.setdefault(point.dataset, []).append(point)
    sections = []
    for dataset, dataset_points in by_dataset.items():
        rows = [
            {
                "bit-parallel BFSs": point.num_bit_parallel,
                "(a) preprocessing": format_seconds(point.preprocessing_seconds),
                "(b) query time": format_query_time(point.query_seconds),
                "(c) normal label size": round(point.average_normal_label_size, 1),
                "(d) index size": format_bytes(point.index_bytes),
            }
            for point in sorted(dataset_points, key=lambda p: p.num_bit_parallel)
        ]
        sections.append(
            format_table(
                rows,
                title=f"Figure 5 ({dataset}): performance vs number of bit-parallel BFSs",
            )
        )
    return "\n\n".join(sections)

"""Figure 3: effect of pruning and the distribution of label sizes.

Three panels, all measured on indexes built *without* bit-parallel labels (as
in the paper):

* 3a — number of vertices labelled by the x-th pruned BFS (log-log): drops by
  orders of magnitude within the first few thousand BFSs.
* 3b — cumulative share of all label entries created by the first x BFSs:
  most of the index is produced at the very beginning.
* 3c — distribution of final per-vertex label sizes (sorted ascending):
  label sizes are concentrated, so query time is stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.index import PrunedLandmarkLabeling
from repro.datasets.registry import load_dataset
from repro.experiments.reporting import format_table

__all__ = ["PruningProfile", "run_figure3", "format_figure3", "DEFAULT_FIGURE3_DATASETS"]

#: The paper uses Skitter, Indo and Flickr for Figure 3.
DEFAULT_FIGURE3_DATASETS = ["skitter", "indo", "flickr"]


@dataclass
class PruningProfile:
    """Per-dataset pruning profile backing all three panels of Figure 3."""

    dataset: str
    #: labels added by the k-th pruned BFS (panel 3a).
    labels_per_bfs: np.ndarray
    #: cumulative fraction of all labels after the k-th BFS (panel 3b).
    cumulative_fraction: np.ndarray
    #: per-vertex label sizes sorted ascending (panel 3c).
    sorted_label_sizes: np.ndarray

    def labels_at(self, checkpoints: Sequence[int]) -> Dict[int, int]:
        """Labels added by the BFS at each checkpoint index (1-based)."""
        result = {}
        for checkpoint in checkpoints:
            index = min(checkpoint, self.labels_per_bfs.shape[0]) - 1
            if index >= 0:
                result[checkpoint] = int(self.labels_per_bfs[index])
        return result

    def cumulative_at(self, checkpoints: Sequence[int]) -> Dict[int, float]:
        """Cumulative label fraction after each checkpoint (1-based)."""
        result = {}
        for checkpoint in checkpoints:
            index = min(checkpoint, self.cumulative_fraction.shape[0]) - 1
            if index >= 0:
                result[checkpoint] = float(self.cumulative_fraction[index])
        return result

    def label_size_percentile(self, percentile: float) -> float:
        """Percentile of the final label-size distribution (panel 3c)."""
        if self.sorted_label_sizes.size == 0:
            return 0.0
        return float(np.percentile(self.sorted_label_sizes, percentile))


def run_figure3(
    datasets: Optional[Sequence[str]] = None,
    *,
    seed: int = 0,
) -> List[PruningProfile]:
    """Build stat-collecting indexes (no bit-parallel labels) and extract the profiles."""
    profiles = []
    for name in datasets or DEFAULT_FIGURE3_DATASETS:
        graph = load_dataset(name)
        index = PrunedLandmarkLabeling(
            num_bit_parallel_roots=0, collect_stats=True, seed=seed
        ).build(graph)
        stats = index.construction_stats
        profiles.append(
            PruningProfile(
                dataset=name,
                labels_per_bfs=stats.labeled_per_bfs,
                cumulative_fraction=stats.cumulative_labeled_fraction(),
                sorted_label_sizes=np.sort(index.label_set.label_sizes()),
            )
        )
    return profiles


def format_figure3(profiles: Sequence[PruningProfile]) -> str:
    """Render the three panels as checkpoint tables."""
    checkpoints = [1, 10, 100, 1_000, 10_000]
    rows_a: List[Dict[str, object]] = []
    rows_b: List[Dict[str, object]] = []
    rows_c: List[Dict[str, object]] = []
    for profile in profiles:
        labels = profile.labels_at(checkpoints)
        cumulative = profile.cumulative_at(checkpoints)
        rows_a.append(
            {"dataset": profile.dataset}
            | {f"BFS #{c}": labels.get(c, "-") for c in checkpoints}
        )
        rows_b.append(
            {"dataset": profile.dataset}
            | {
                f"after {c}": (
                    f"{cumulative[c]:.2f}" if c in cumulative else "-"
                )
                for c in checkpoints
            }
        )
        rows_c.append(
            {
                "dataset": profile.dataset,
                "p10": profile.label_size_percentile(10),
                "p50": profile.label_size_percentile(50),
                "p90": profile.label_size_percentile(90),
                "p99": profile.label_size_percentile(99),
                "max": float(profile.sorted_label_sizes[-1])
                if profile.sorted_label_sizes.size
                else 0.0,
            }
        )
    return (
        format_table(rows_a, title="Figure 3a: labels added by the x-th pruned BFS")
        + "\n\n"
        + format_table(
            rows_b, title="Figure 3b: cumulative fraction of labels after x BFSs"
        )
        + "\n\n"
        + format_table(rows_c, title="Figure 3c: distribution of final label sizes")
    )

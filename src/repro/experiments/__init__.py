"""Experiment drivers regenerating every table and figure of the paper."""

from repro.experiments.ablations import (
    format_ablation,
    ordering_ablation,
    pruning_ablation,
    theorem43_check,
)
from repro.experiments.figure2 import (
    DegreeSeries,
    DistanceSeries,
    format_figure2,
    run_figure2_degrees,
    run_figure2_distances,
)
from repro.experiments.figure3 import PruningProfile, format_figure3, run_figure3
from repro.experiments.figure4 import CoverageCurve, format_figure4, run_figure4
from repro.experiments.figure5 import (
    BitParallelSweepPoint,
    format_figure5,
    run_figure5,
)
from repro.experiments.harness import (
    MethodMeasurement,
    MethodSpec,
    measure_method,
    run_comparison,
)
from repro.experiments.reporting import (
    format_bytes,
    format_measurements,
    format_query_time,
    format_seconds,
    format_table,
    write_csv,
)
from repro.experiments.scaling import (
    ScalingPoint,
    format_scaling,
    run_scaling,
)
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table3 import default_methods, format_table3, run_table3
from repro.experiments.table4 import format_table4, run_table4
from repro.experiments.table5 import format_table5, run_table5
from repro.experiments.workloads import (
    QueryWorkload,
    distance_stratified_workload,
    random_pair_workload,
    random_pairs,
)

__all__ = [
    "MethodMeasurement",
    "MethodSpec",
    "measure_method",
    "run_comparison",
    "QueryWorkload",
    "random_pairs",
    "random_pair_workload",
    "distance_stratified_workload",
    "run_table1",
    "format_table1",
    "run_table3",
    "format_table3",
    "default_methods",
    "run_table4",
    "format_table4",
    "run_table5",
    "format_table5",
    "run_figure2_degrees",
    "run_figure2_distances",
    "format_figure2",
    "DegreeSeries",
    "DistanceSeries",
    "run_figure3",
    "format_figure3",
    "PruningProfile",
    "run_figure4",
    "format_figure4",
    "CoverageCurve",
    "run_figure5",
    "format_figure5",
    "BitParallelSweepPoint",
    "pruning_ablation",
    "ordering_ablation",
    "theorem43_check",
    "format_ablation",
    "ScalingPoint",
    "run_scaling",
    "format_scaling",
    "format_table",
    "format_seconds",
    "format_query_time",
    "format_bytes",
    "format_measurements",
    "write_csv",
]

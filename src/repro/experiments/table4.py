"""Table 4: the dataset inventory.

The paper's Table 4 lists, for each dataset, its network type and size.  This
driver reports both the original (paper) sizes kept as registry metadata and
the sizes of the synthetic stand-ins actually used in this reproduction, so a
reader can see the scale correspondence at a glance.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.datasets.registry import get_dataset, list_datasets, load_dataset
from repro.experiments.reporting import format_table
from repro.graph.statistics import summarize_graph

__all__ = ["run_table4", "format_table4"]


def run_table4(
    datasets: Optional[Sequence[str]] = None,
    *,
    with_statistics: bool = True,
    num_pairs: int = 1_000,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Collect per-dataset rows (paper size, stand-in size, summary statistics)."""
    rows: List[Dict[str, object]] = []
    for name in datasets or list_datasets():
        spec = get_dataset(name)
        graph = load_dataset(name)
        row: Dict[str, object] = {
            "dataset": name,
            "type": spec.network_type,
            "paper |V|": f"{spec.paper_vertices:,}",
            "paper |E|": f"{spec.paper_edges:,}",
            "repro |V|": graph.num_vertices,
            "repro |E|": graph.num_edges,
        }
        if with_statistics:
            summary = summarize_graph(graph, num_pairs=num_pairs, seed=seed)
            row["avg degree"] = round(summary.average_degree, 2)
            row["avg distance"] = round(summary.average_distance, 2)
            row["90% eff. diameter"] = round(summary.effective_diameter, 1)
        rows.append(row)
    return rows


def format_table4(rows: Sequence[Dict[str, object]]) -> str:
    """Render Table 4 as text."""
    columns = list(rows[0].keys()) if rows else []
    return format_table(rows, columns, title="Table 4: datasets (paper vs reproduction stand-ins)")

"""Scalability study: how indexing cost and query time grow with graph size.

The paper's headline claim is scalability: indexing time two orders of
magnitude lower than prior exact methods and query time that "does not
increase rapidly against sizes of networks" (Section 7.2).  The real datasets
make that point across different networks; this driver makes it on a
controlled family — Barabási–Albert graphs of increasing size with constant
average degree — so the growth *rate* is visible directly: near-linear
indexing cost and essentially flat query time and label size.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.index import PrunedLandmarkLabeling
from repro.experiments.reporting import format_table
from repro.experiments.workloads import random_pairs
from repro.generators import barabasi_albert_graph

__all__ = ["ScalingPoint", "run_scaling", "format_scaling", "DEFAULT_SIZES"]

#: Default graph sizes for the sweep (vertices).
DEFAULT_SIZES = [1_000, 2_000, 4_000, 8_000, 16_000]


@dataclass
class ScalingPoint:
    """Measurements for one graph size."""

    num_vertices: int
    num_edges: int
    indexing_seconds: float
    query_seconds: float
    average_label_size: float
    index_bytes: int

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary view for CSV reporting."""
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "indexing_seconds": self.indexing_seconds,
            "query_seconds": self.query_seconds,
            "average_label_size": self.average_label_size,
            "index_bytes": self.index_bytes,
        }


def run_scaling(
    sizes: Optional[Sequence[int]] = None,
    *,
    edges_per_vertex: int = 4,
    num_bit_parallel_roots: int = 16,
    num_queries: int = 1_000,
    seed: int = 0,
) -> List[ScalingPoint]:
    """Build indexes on increasingly large scale-free graphs and measure them."""
    points: List[ScalingPoint] = []
    for size in sizes or DEFAULT_SIZES:
        graph = barabasi_albert_graph(size, edges_per_vertex, seed=seed)
        start = time.perf_counter()
        index = PrunedLandmarkLabeling(
            num_bit_parallel_roots=num_bit_parallel_roots, seed=seed
        ).build(graph)
        indexing_seconds = time.perf_counter() - start

        pairs = random_pairs(graph.num_vertices, num_queries, seed=seed + 1)
        start = time.perf_counter()
        for s, t in pairs:
            index.distance(s, t)
        query_seconds = (time.perf_counter() - start) / max(len(pairs), 1)

        points.append(
            ScalingPoint(
                num_vertices=graph.num_vertices,
                num_edges=graph.num_edges,
                indexing_seconds=indexing_seconds,
                query_seconds=query_seconds,
                average_label_size=index.average_label_size(),
                index_bytes=index.index_size_bytes(),
            )
        )
    return points


def format_scaling(points: Sequence[ScalingPoint]) -> str:
    """Render the scaling sweep as a text table."""
    rows = [
        {
            "|V|": point.num_vertices,
            "|E|": point.num_edges,
            "indexing s": round(point.indexing_seconds, 2),
            "query us": round(point.query_seconds * 1e6, 1),
            "avg label": round(point.average_label_size, 1),
            "index MB": round(point.index_bytes / 1e6, 2),
        }
        for point in points
    ]
    return format_table(
        rows,
        title=(
            "Scalability: pruned landmark labeling on Barabási–Albert graphs of "
            "growing size (constant average degree)"
        ),
    )

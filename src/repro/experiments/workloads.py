"""Query workloads for the experiments.

The paper measures query time on one million uniformly random vertex pairs
per dataset, and Figure 4 additionally stratifies sampled pairs by their true
distance.  This module generates both workloads (scaled down through the
``num_pairs`` parameter) and packages them with ground-truth distances when a
reference oracle is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.graph.csr import Graph
from repro.graph.traversal import UNREACHABLE, bfs_distances

__all__ = [
    "QueryWorkload",
    "random_pairs",
    "random_pair_workload",
    "distance_stratified_workload",
]


@dataclass
class QueryWorkload:
    """A set of query pairs, optionally with ground-truth distances."""

    pairs: List[Tuple[int, int]]
    true_distances: Optional[np.ndarray] = None
    #: Optional mapping distance -> list of pair indices at that distance.
    by_distance: Dict[int, List[int]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.pairs)

    def finite_pairs(self) -> List[Tuple[int, int]]:
        """Pairs whose ground-truth distance is finite (requires true distances)."""
        if self.true_distances is None:
            raise ExperimentError("workload has no ground-truth distances")
        return [
            pair
            for pair, dist in zip(self.pairs, self.true_distances)
            if np.isfinite(dist)
        ]


def random_pairs(
    num_vertices: int, num_pairs: int, *, seed: int = 0, distinct: bool = True
) -> List[Tuple[int, int]]:
    """Uniformly random ``(s, t)`` pairs (s != t when ``distinct``)."""
    if num_vertices < 2:
        raise ExperimentError("need at least two vertices to build a workload")
    rng = np.random.default_rng(seed)
    pairs: List[Tuple[int, int]] = []
    while len(pairs) < num_pairs:
        remaining = num_pairs - len(pairs)
        sources = rng.integers(0, num_vertices, size=remaining)
        targets = rng.integers(0, num_vertices, size=remaining)
        for s, t in zip(sources, targets):
            if distinct and s == t:
                continue
            pairs.append((int(s), int(t)))
    return pairs[:num_pairs]


def _ground_truth(graph: Graph, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
    """Exact distances for the pairs, grouping by source to share BFSs."""
    result = np.empty(len(pairs), dtype=np.float64)
    by_source: Dict[int, List[int]] = {}
    for index, (s, _) in enumerate(pairs):
        by_source.setdefault(s, []).append(index)
    for source, indices in by_source.items():
        dist = bfs_distances(graph, source)
        for index in indices:
            d = dist[pairs[index][1]]
            result[index] = float("inf") if d == UNREACHABLE else float(d)
    return result


def random_pair_workload(
    graph: Graph,
    num_pairs: int,
    *,
    seed: int = 0,
    with_ground_truth: bool = False,
) -> QueryWorkload:
    """Uniform random-pair workload, optionally with BFS ground truth."""
    pairs = random_pairs(graph.num_vertices, num_pairs, seed=seed)
    true_distances = _ground_truth(graph, pairs) if with_ground_truth else None
    return QueryWorkload(pairs=pairs, true_distances=true_distances)


def distance_stratified_workload(
    graph: Graph,
    num_pairs: int,
    *,
    seed: int = 0,
    max_distance: Optional[int] = None,
) -> QueryWorkload:
    """Random pairs annotated with their exact distance and grouped by it.

    Used by the Figure 4 experiments (coverage by distance class).  Pairs with
    infinite distance are dropped; ``max_distance`` optionally drops very
    distant pairs as well.
    """
    raw = random_pairs(graph.num_vertices, num_pairs, seed=seed)
    distances = _ground_truth(graph, raw)

    pairs: List[Tuple[int, int]] = []
    kept_distances: List[float] = []
    by_distance: Dict[int, List[int]] = {}
    for pair, dist in zip(raw, distances):
        if not np.isfinite(dist):
            continue
        if max_distance is not None and dist > max_distance:
            continue
        index = len(pairs)
        pairs.append(pair)
        kept_distances.append(dist)
        by_distance.setdefault(int(dist), []).append(index)
    return QueryWorkload(
        pairs=pairs,
        true_distances=np.asarray(kept_distances, dtype=np.float64),
        by_distance=by_distance,
    )

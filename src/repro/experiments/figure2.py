"""Figure 2: dataset properties (degree distributions and distance distributions).

Figure 2 of the paper has four panels: the complementary cumulative degree
distribution of the five smaller (2a) and six larger (2b) datasets on log-log
axes, and the distribution of distances over one million random pairs for the
same two groups (2c, 2d).  The drivers below compute the underlying series;
the benchmark prints them as compact text sparklines / tables since plotting
libraries are not available offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.registry import LARGE_DATASETS, SMALL_DATASETS, load_dataset
from repro.experiments.reporting import format_table
from repro.graph.statistics import degree_ccdf, distance_distribution

__all__ = [
    "DegreeSeries",
    "DistanceSeries",
    "run_figure2_degrees",
    "run_figure2_distances",
    "format_figure2",
]


@dataclass
class DegreeSeries:
    """Complementary cumulative degree distribution of one dataset (Fig. 2a/2b)."""

    dataset: str
    degrees: np.ndarray
    cumulative_counts: np.ndarray

    def power_law_slope(self) -> float:
        """Least-squares slope of the CCDF on log-log axes (a power-law check)."""
        mask = (self.degrees > 0) & (self.cumulative_counts > 0)
        if mask.sum() < 2:
            return 0.0
        x = np.log10(self.degrees[mask].astype(np.float64))
        y = np.log10(self.cumulative_counts[mask].astype(np.float64))
        slope, _ = np.polyfit(x, y, 1)
        return float(slope)


@dataclass
class DistanceSeries:
    """Distance distribution of one dataset over sampled pairs (Fig. 2c/2d)."""

    dataset: str
    distances: np.ndarray
    fractions: np.ndarray

    def average_distance(self) -> float:
        """Mean of the sampled distance distribution."""
        if self.distances.size == 0:
            return float("nan")
        return float((self.distances * self.fractions).sum() / self.fractions.sum())

    def mode_distance(self) -> int:
        """Most common sampled distance."""
        if self.distances.size == 0:
            return 0
        return int(self.distances[int(np.argmax(self.fractions))])


def run_figure2_degrees(
    datasets: Optional[Sequence[str]] = None,
) -> List[DegreeSeries]:
    """Degree CCDF series for the requested datasets (default: all eleven)."""
    names = list(datasets) if datasets else SMALL_DATASETS + LARGE_DATASETS
    series = []
    for name in names:
        graph = load_dataset(name)
        degrees, counts = degree_ccdf(graph)
        series.append(DegreeSeries(name, degrees, counts))
    return series


def run_figure2_distances(
    datasets: Optional[Sequence[str]] = None,
    *,
    num_pairs: int = 5_000,
    seed: int = 0,
) -> List[DistanceSeries]:
    """Distance-distribution series for the requested datasets."""
    names = list(datasets) if datasets else SMALL_DATASETS + LARGE_DATASETS
    series = []
    for name in names:
        graph = load_dataset(name)
        distances, fractions = distance_distribution(graph, num_pairs, seed=seed)
        series.append(DistanceSeries(name, distances, fractions))
    return series


def format_figure2(
    degree_series: Sequence[DegreeSeries],
    distance_series: Sequence[DistanceSeries],
) -> str:
    """Summarise both panels of Figure 2 as text tables."""
    degree_rows: List[Dict[str, object]] = []
    for series in degree_series:
        degree_rows.append(
            {
                "dataset": series.dataset,
                "max degree": int(series.degrees.max()) if series.degrees.size else 0,
                "ccdf log-log slope": round(series.power_law_slope(), 2),
            }
        )
    distance_rows: List[Dict[str, object]] = []
    for series in distance_series:
        distribution = "  ".join(
            f"d={int(d)}:{f:.2f}" for d, f in zip(series.distances, series.fractions)
        )
        distance_rows.append(
            {
                "dataset": series.dataset,
                "avg dist": round(series.average_distance(), 2),
                "mode": series.mode_distance(),
                "distribution": distribution,
            }
        )
    return (
        format_table(
            degree_rows,
            ["dataset", "max degree", "ccdf log-log slope"],
            title="Figure 2a/2b: degree CCDF (power-law slope on log-log axes)",
        )
        + "\n\n"
        + format_table(
            distance_rows,
            ["dataset", "avg dist", "mode", "distribution"],
            title="Figure 2c/2d: distance distribution over random pairs",
        )
    )

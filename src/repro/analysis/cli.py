"""Command surface for reprolint: ``repro-pll lint`` and ``python -m repro.analysis``.

Exit codes: ``0`` — clean (every finding suppressed or baselined); ``1`` —
new findings (or unparsable files); ``2`` — usage / IO errors (unknown rule,
unreadable baseline).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO, Optional, Sequence

from .base import RuleError, all_rules, select_rules
from .baseline import DEFAULT_BASELINE_NAME, BaselineError, load_baseline, write_baseline
from .reporters import render_json, render_text
from .runner import run_lint

__all__ = ["add_lint_arguments", "main", "run_lint_command"]

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``lint`` options (shared by the repro-pll subcommand)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE_NAME} in the current directory, if present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings and exit 0",
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="include baselined findings in text output",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )


def _resolve_baseline_path(args: argparse.Namespace) -> Optional[Path]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Path(args.baseline)
    default = Path(DEFAULT_BASELINE_NAME)
    if default.exists() or args.write_baseline:
        return default
    return None


def run_lint_command(args: argparse.Namespace, *, stdout: Optional[IO[str]] = None) -> int:
    """Execute a parsed ``lint`` invocation; returns the process exit code."""
    out = stdout if stdout is not None else sys.stdout

    if args.list_rules:
        for rule in all_rules():
            out.write(f"{rule.id}  {rule.name}: {rule.description}\n")
        return EXIT_OK

    try:
        rules = select_rules(args.select.split(",")) if args.select else all_rules()
    except RuleError as exc:
        out.write(f"error: {exc}\n")
        return EXIT_USAGE

    baseline_path = _resolve_baseline_path(args)
    fingerprints = None
    if baseline_path is not None and baseline_path.exists() and not args.write_baseline:
        try:
            fingerprints = load_baseline(baseline_path)
        except BaselineError as exc:
            out.write(f"error: {exc}\n")
            return EXIT_USAGE

    report = run_lint(args.paths, rules=rules, baseline=fingerprints)

    if args.write_baseline:
        if baseline_path is None:
            out.write("error: --write-baseline conflicts with --no-baseline\n")
            return EXIT_USAGE
        write_baseline(baseline_path, report.findings)
        out.write(
            f"wrote {len(report.findings)} finding(s) to {baseline_path}\n"
        )
        return EXIT_OK

    if args.format == "json":
        out.write(render_json(report))
    else:
        out.write(render_text(report, show_baselined=args.show_baselined))
    return EXIT_OK if report.ok else EXIT_FINDINGS


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: project-specific static analysis (rules RL001-RL007)",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(list(argv) if argv is not None else None)
    return run_lint_command(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())

"""Baseline files: grandfathered findings that do not fail the build.

A baseline is a committed JSON file listing fingerprints of known findings.
``repro-pll lint`` exits non-zero only for findings *not* in the baseline, so
a new rule can land before every legacy violation is fixed — while still
catching regressions from that day forward.  ``--write-baseline`` regenerates
the file from the current tree; the workflow is: add the rule, write the
baseline, burn the baseline down to empty in follow-up commits.

Matching is by fingerprint (rule + path + symbol + message — see
:meth:`repro.analysis.base.Finding.fingerprint`) and is *multiset* matching:
one baseline entry absorbs at most one live finding, so duplicating a
grandfathered violation still fails the build.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from .base import Finding

__all__ = [
    "BaselineError",
    "DEFAULT_BASELINE_NAME",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
]

#: File name probed for in the current directory when ``--baseline`` is not
#: given.
DEFAULT_BASELINE_NAME = "reprolint-baseline.json"

_FORMAT_VERSION = 1


class BaselineError(Exception):
    """Raised for unreadable or structurally invalid baseline files."""


def load_baseline(path: Union[str, Path]) -> Counter:
    """Load a baseline file into a fingerprint multiset."""
    try:
        raw = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    try:
        payload = json.loads(raw)
    except ValueError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
        raise BaselineError(
            f"baseline {path} has unsupported structure (expected version {_FORMAT_VERSION})"
        )
    entries = payload.get("findings", [])
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path}: 'findings' must be a list")
    fingerprints: Counter = Counter()
    for entry in entries:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise BaselineError(f"baseline {path}: each finding needs a 'fingerprint'")
        fingerprints[str(entry["fingerprint"])] += 1
    return fingerprints


def write_baseline(path: Union[str, Path], findings: Sequence[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, human-diffable)."""
    entries: List[Dict[str, object]] = [
        {
            "rule": finding.rule,
            "path": finding.path,
            "symbol": finding.symbol,
            "message": finding.message,
            "fingerprint": finding.fingerprint,
        }
        for finding in sorted(findings, key=Finding.sort_key)
    ]
    payload = {"version": _FORMAT_VERSION, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(
    findings: Sequence[Finding], fingerprints: Counter
) -> Tuple[List[Finding], int]:
    """Split findings into the full annotated list and the count of new ones.

    Returns ``(annotated, num_new)`` where ``annotated`` carries every finding
    with ``baselined`` set appropriately.  Each baseline fingerprint absorbs
    at most as many findings as it was recorded times.
    """
    remaining = Counter(fingerprints)
    annotated: List[Finding] = []
    num_new = 0
    for finding in findings:
        if remaining.get(finding.fingerprint, 0) > 0:
            remaining[finding.fingerprint] -= 1
            annotated.append(
                Finding(
                    rule=finding.rule,
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    message=finding.message,
                    symbol=finding.symbol,
                    baselined=True,
                )
            )
        else:
            annotated.append(finding)
            num_new += 1
    return annotated, num_new

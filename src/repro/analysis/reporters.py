"""Text and JSON renderings of a lint run.

The text reporter is the human / CI-log format (one ``path:line:col: RLnnn``
line per finding plus a summary); the JSON reporter is the machine format the
tests pin a schema for, and what tooling (dashboards, pre-commit wrappers)
should consume.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

from .base import Finding, Rule

__all__ = ["LintReport", "render_text", "render_json"]

JSON_SCHEMA_VERSION = 1


@dataclass
class LintReport:
    """Outcome of one lint run, before rendering.

    ``findings`` holds every unsuppressed finding (baselined ones included,
    flagged via :attr:`Finding.baselined`); suppressed findings are only
    counted.  ``errors`` are file-level failures (unreadable, unparsable) —
    they fail the run regardless of baseline.
    """

    findings: List[Finding] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    rules: List[Rule] = field(default_factory=list)
    num_files: int = 0
    num_suppressed: int = 0
    num_new: int = 0

    @property
    def num_baselined(self) -> int:
        return sum(1 for finding in self.findings if finding.baselined)

    @property
    def ok(self) -> bool:
        return self.num_new == 0 and not self.errors

    def summary(self) -> Dict[str, int]:
        return {
            "files": self.num_files,
            "findings": len(self.findings),
            "new": self.num_new,
            "baselined": self.num_baselined,
            "suppressed": self.num_suppressed,
            "errors": len(self.errors),
        }


def render_text(report: LintReport, *, show_baselined: bool = False) -> str:
    """The human-readable rendering (what CI logs show)."""
    lines: List[str] = []
    for error in report.errors:
        lines.append(f"error: {error}")
    for finding in sorted(report.findings, key=Finding.sort_key):
        if finding.baselined and not show_baselined:
            continue
        suffix = "  [baselined]" if finding.baselined else ""
        where = f"{finding.path}:{finding.line}:{finding.col + 1}"
        symbol = f" ({finding.symbol})" if finding.symbol else ""
        lines.append(f"{where}: {finding.rule} {finding.message}{symbol}{suffix}")
    summary = report.summary()
    lines.append(
        "{files} file(s): {findings} finding(s) — {new} new, {baselined} baselined, "
        "{suppressed} suppressed, {errors} error(s)".format(**summary)
    )
    return "\n".join(lines) + "\n"


def render_json(report: LintReport) -> str:
    """The machine-readable rendering (schema pinned by the test suite)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "ok": report.ok,
        "summary": report.summary(),
        "rules": {
            rule.id: {"name": rule.name, "description": rule.description}
            for rule in report.rules
        },
        "findings": [
            finding.as_dict()
            for finding in sorted(report.findings, key=Finding.sort_key)
        ],
        "errors": list(report.errors),
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"

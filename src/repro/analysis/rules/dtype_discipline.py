"""RL005 — no implicit float64 allocations on the kernel paths.

``np.zeros(n)`` quietly allocates float64.  On the label-store and serving
paths that is 2–8x the memory the data needs (hubs are int32, distances fit
int8/int32), doubles cache pressure in the batch kernel, and — worst —
changes the bytes that cross the shared-memory / raw-file layout boundary,
where dtype is part of the on-disk contract.  Every allocation in ``core/``
and ``serving/`` therefore states its dtype.

Flagged: ``np.zeros`` / ``np.empty`` / ``np.ones`` / ``np.full`` /
``np.array`` calls (on a ``np``/``numpy`` name) with neither a ``dtype=``
keyword nor a positional dtype argument.  ``np.array`` is included even
though it preserves an existing array's dtype — on these paths the input is
often a plain Python list, and "explicit is the contract" is cheaper than
auditing call sites.  Dtype-preserving constructors (``zeros_like``,
``asarray`` used as a view cast) are deliberately exempt.

Scope: ``src/repro/core/`` and ``src/repro/serving/`` — experiments and
benchmarks may allocate however they like.  ``src/repro/core/kernels/`` is
covered by the ``core/`` prefix and is where the rule matters most: the
narrow kernel layout stakes its memory win on uint32/uint8 arrays, so one
implicit float64 temporary there costs 8x the bytes it should.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from ..base import Finding, ModuleContext, Rule, register_rule

__all__ = ["DtypeDisciplineRule"]

#: function name -> number of positional arguments at which the dtype is
#: covered positionally (``np.zeros(n, np.int64)`` is explicit).
_ALLOCATORS: Dict[str, int] = {
    "zeros": 2,
    "empty": 2,
    "ones": 2,
    "array": 2,
    "full": 3,
}

_NUMPY_NAMES = {"np", "numpy"}


@register_rule
class DtypeDisciplineRule(Rule):
    id = "RL005"
    name = "dtype-discipline"
    description = (
        "np.zeros/np.empty/np.ones/np.full/np.array in core/ and serving/ must pass "
        "an explicit dtype (no implicit float64)"
    )
    rationale = (
        "implicit float64 silently doubles label-store memory and breaks the "
        "shared-memory/raw-layout dtype contract"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        path = "/" + ctx.path.replace("\\", "/")
        return "/core/" in path or "/serving/" in path

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in _NUMPY_NAMES
                and func.attr in _ALLOCATORS
            ):
                continue
            if any(keyword.arg == "dtype" for keyword in node.keywords):
                continue
            if len(node.args) >= _ALLOCATORS[func.attr]:
                continue
            yield self.finding(
                ctx,
                node,
                f"np.{func.attr}(...) without an explicit dtype allocates float64; "
                "state the dtype",
            )

"""RL003 — shared-memory segments must have an owner on every path.

A ``multiprocessing.shared_memory.SharedMemory`` allocation is a kernel
object: drop the handle without ``close()``/``unlink()`` and the segment
outlives the process in ``/dev/shm`` (the resource tracker then spams
warnings, or worse, a respawning worker pool slowly fills the host).  PR 3's
``SharedGeneration`` exists precisely to give each published generation a
refcounted owner.

The rule inspects every ``SharedMemory(...)`` construction and accepts it
only when the handle demonstrably reaches an owner:

* used directly as a context manager (``with SharedMemory(...) as shm:``);
* returned directly (the caller owns it — ``_attach_segment`` style);
* stored onto ``self`` (``self._segments[field] = ...``), i.e. registered
  with an object whose lifecycle methods own the close;
* bound to a local that is then (a) closed/unlinked inside a ``finally``
  block of the enclosing function, (b) used as a context manager, (c) passed
  to a ``SharedGeneration``, or (d) escapes — returned, yielded, or stored
  onto ``self``.

Everything else is a potential leak on the exception path and gets flagged.
The analysis is per-function and lexical — it does not chase the handle
through arbitrary helper calls, which is the point: keep segment ownership
locally obvious.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from ..base import Finding, ModuleContext, Rule, register_rule

__all__ = ["ShmLifecycleRule"]

_CLEANUP_METHODS = {"close", "unlink"}


def _is_shared_memory_call(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id == "SharedMemory"
    if isinstance(func, ast.Attribute):
        return func.attr == "SharedMemory"
    return False


def _is_self_store_target(target: ast.AST) -> bool:
    """``self.x`` / ``self.x[k]`` / ``self.x.y`` style targets."""
    node = target
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return True
        node = node.value
    return False


def _name_used_in(node: ast.AST, name: str) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id == name:
            return True
    return False


class _FunctionIndex:
    """Lexical facts about one function body, queried per allocation."""

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        #: nodes lexically inside any ``finally`` block of the function.
        self.finally_nodes: Set[int] = set()
        for node in ast.walk(func):
            if isinstance(node, (ast.Try,)):
                for stmt in node.finalbody:
                    for inner in ast.walk(stmt):
                        self.finally_nodes.add(id(inner))

    def local_reaches_owner(self, name: str) -> bool:
        for node in ast.walk(self.func):
            # (a) name.close() / name.unlink() inside a finally block.
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _CLEANUP_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
                and id(node) in self.finally_nodes
            ):
                return True
            # (b) used as (part of) a context manager expression.
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if _name_used_in(item.context_expr, name):
                        return True
            # (c) handed to a SharedGeneration (refcounted owner).
            if isinstance(node, ast.Call):
                callee = node.func
                callee_name = (
                    callee.id
                    if isinstance(callee, ast.Name)
                    else callee.attr
                    if isinstance(callee, ast.Attribute)
                    else ""
                )
                if "SharedGeneration" in callee_name and any(
                    _name_used_in(arg, name) for arg in node.args
                ):
                    return True
            # (d) escapes: returned/yielded, or stored onto self.
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
                if value is not None and _name_used_in(value, name):
                    return True
            if isinstance(node, ast.Assign):
                if any(_is_self_store_target(target) for target in node.targets):
                    if _name_used_in(node.value, name):
                        return True
        return False


@register_rule
class ShmLifecycleRule(Rule):
    id = "RL003"
    name = "shm-lifecycle"
    description = (
        "every shared_memory.SharedMemory(...) allocation must reach close()/unlink() "
        "on all paths: try/finally, context manager, self storage, or SharedGeneration"
    )
    rationale = (
        "a dropped SharedMemory handle leaks a /dev/shm segment past process exit; "
        "segment ownership must be locally obvious"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        parents: Dict[int, ast.AST] = {}
        for node in ast.walk(ctx.tree):
            for child in ast.iter_child_nodes(node):
                parents[id(child)] = node

        indexes: Dict[int, _FunctionIndex] = {}
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and _is_shared_memory_call(node)):
                continue
            if self._allocation_owned(node, parents):
                continue
            scope = self._enclosing_scope(node, parents)
            local = self._bound_local(node, parents)
            if local is not None:
                if id(scope) not in indexes:
                    indexes[id(scope)] = _FunctionIndex(scope)
                if indexes[id(scope)].local_reaches_owner(local):
                    continue
            yield self.finding(
                ctx,
                node,
                "SharedMemory allocation may leak: no close()/unlink() on all "
                "paths (use try/finally, a with-block, store it on self, or "
                "register it with a SharedGeneration)",
                symbol=getattr(scope, "name", "<module>"),
            )

    def _enclosing_scope(self, node: ast.AST, parents: Dict[int, ast.AST]) -> ast.AST:
        """Innermost enclosing function (module tree for top-level code)."""
        current = parents.get(id(node))
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
                return current
            current = parents.get(id(current))
        return node

    def _allocation_owned(self, call: ast.Call, parents: Dict[int, ast.AST]) -> bool:
        parent = parents.get(id(call))
        # with SharedMemory(...) as shm: — the with-block owns close().
        if isinstance(parent, ast.withitem):
            return True
        # return SharedMemory(...) — ownership transfers to the caller.
        if isinstance(parent, (ast.Return, ast.Yield)):
            return True
        # self._segments[...] = SharedMemory(...) — registered on the object.
        if isinstance(parent, ast.Assign) and any(
            _is_self_store_target(target) for target in parent.targets
        ):
            return True
        return False

    def _bound_local(self, call: ast.Call, parents: Dict[int, ast.AST]) -> Optional[str]:
        parent = parents.get(id(call))
        if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
            target = parent.targets[0]
            if isinstance(target, ast.Name):
                return target.id
        if isinstance(parent, ast.AnnAssign) and isinstance(parent.target, ast.Name):
            return parent.target.id
        return None

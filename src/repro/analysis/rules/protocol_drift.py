"""RL004 — wire replies and protocol vocabulary live in ``protocol.py`` only.

Three front ends (stdio, threaded TCP, asyncio) speak the same line protocol.
The only reason they *stay* wire-identical — the property the equality tests
pin — is that every reply string and every command word comes from
``repro.serving.protocol``.  PR 6's review round caught inline
``f"error: ..."`` formatting drifting between ``server.py`` and ``aio.py``;
this rule makes that a build failure.

Scope: the front-end modules (``serving/server.py``, ``serving/aio.py``).
Flagged there:

* f-strings or plain string constants that begin with a wire reply prefix
  (``"ok "`` / ``"error:"``) — replies must be built by ``protocol.py``
  formatters (``format_distance_line``, ``format_mutation_ack``,
  ``format_error`` ...);
* bytes literals carrying a wire prefix (replies are encoded centrally);
* comparisons against protocol vocabulary literals (``op == "add"``,
  ``command in ("quit", "exit")``) — use the ``OP_*`` constants and command
  sets exported by ``protocol.py`` so renames and aliases happen in one
  place.

HTTP admin-plane strings (paths, JSON keys, content types) are untouched:
the rule keys on the line-protocol reply prefixes and command words only.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from ..base import Finding, ModuleContext, Rule, register_rule

__all__ = ["ProtocolDriftRule"]

#: Modules that speak the wire protocol but must not define it.
_FRONTEND_SUFFIXES = ("serving/server.py", "serving/aio.py")

_REPLY_PREFIXES: Tuple[str, ...] = ("ok ", "error:")
_REPLY_PREFIXES_BYTES: Tuple[bytes, ...] = (b"ok ", b"error:")

#: Command words owned by protocol.py (mutation ops + control commands +
#: query-verb spellings).
_VOCABULARY = {
    "add",
    "insert",
    "remove",
    "delete",
    "publish",
    "quit",
    "exit",
    "stats",
    "stats json",
    "traces",
    "alerts",
    "many",
    "one_to_many",
    "one-to-many",
}


def _starts_with_reply_prefix(value: str) -> bool:
    return value.startswith(_REPLY_PREFIXES)


@register_rule
class ProtocolDriftRule(Rule):
    id = "RL004"
    name = "protocol-drift"
    description = (
        "front ends (serving/server.py, serving/aio.py) must not inline wire reply "
        "strings or protocol command literals; use protocol.py helpers/constants"
    )
    rationale = (
        "three front ends stay wire-identical only because replies and vocabulary "
        "are defined once in protocol.py; inline literals drift"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.path.replace("\\", "/").endswith(_FRONTEND_SUFFIXES)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        fstring_parts = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.JoinedStr):
                for value in node.values:
                    fstring_parts.add(id(value))
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.JoinedStr):
                yield from self._check_fstring(ctx, node)
            elif isinstance(node, ast.Constant) and id(node) not in fstring_parts:
                yield from self._check_constant(ctx, node)
            elif isinstance(node, ast.Compare):
                yield from self._check_compare(ctx, node)

    def _check_fstring(self, ctx: ModuleContext, node: ast.JoinedStr) -> Iterator[Finding]:
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                if _starts_with_reply_prefix(value.value):
                    yield self.finding(
                        ctx,
                        node,
                        "inline wire reply f-string; build replies with the "
                        "protocol.py formatters (format_error, format_mutation_ack, ...)",
                    )
            # Only the leading literal chunk identifies a reply.
            break

    def _check_constant(self, ctx: ModuleContext, node: ast.Constant) -> Iterator[Finding]:
        if isinstance(node.value, str) and _starts_with_reply_prefix(node.value):
            yield self.finding(
                ctx,
                node,
                "inline wire reply literal; build replies with the protocol.py formatters",
            )
        elif isinstance(node.value, bytes) and node.value.startswith(_REPLY_PREFIXES_BYTES):
            yield self.finding(
                ctx,
                node,
                "inline wire reply bytes literal; format via protocol.py and encode once",
            )

    def _check_compare(self, ctx: ModuleContext, node: ast.Compare) -> Iterator[Finding]:
        candidates = [node.left, *node.comparators]
        literals = []
        for candidate in candidates:
            if isinstance(candidate, (ast.Tuple, ast.List, ast.Set)):
                literals.extend(candidate.elts)
            else:
                literals.append(candidate)
        for literal in literals:
            if (
                isinstance(literal, ast.Constant)
                and isinstance(literal.value, str)
                and literal.value.lower() in _VOCABULARY
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"protocol vocabulary literal {literal.value!r} in comparison; "
                    "use the constants/sets exported by protocol.py "
                    "(OP_ADD, OP_REMOVE, OP_PUBLISH, QUIT_COMMANDS, ...)",
                )

"""RL001 — lock discipline: guarded attributes must not be touched bare.

The serving stack guards mutable state with per-object locks
(``ServerMetrics._lock``, ``ShardedQueryEngine._respawn_lock``,
``SnapshotManager._write_lock``).  The recurring regression — PR 6 shipped a
fix for exactly this in ``num_queries`` — is a *read* of such a field added
outside the lock, which is a torn read or a stale publish on a relaxed-memory
runtime and is invisible to tests.

The rule infers the guarded set per class: any ``self.<attr>`` written
(assigned, aug-assigned, or written *through* — ``self._x[k] = v``,
``self._x.y = v``) while a ``with self.<lock>:`` block is lexically open, in
any method, is guarded by that lock.  Every other access of that attribute
anywhere in the class must then also hold one of its guarding locks.

A lock is any ``self`` attribute whose name contains ``lock`` and that is
used as a (possibly async) context manager.  Conventions the rule honours:

* ``__init__``/``__new__`` neither create guards nor get flagged — the object
  is not yet shared during construction.
* Methods named ``*_locked`` are assumed to be called with the lock already
  held (the codebase convention: ``LRUCache._get_locked``,
  ``SharedGeneration._maybe_unlink_locked``); they are skipped entirely.
* A class docstring can declare guards the inference cannot see (state only
  ever mutated through method calls, e.g. ``self._latencies.record(...)``)::

      _latencies: guarded-by _lock

* Deliberate lock-free reads (RCU-style snapshot pointers, optimistic
  double-checked probes) carry a ``# reprolint: disable=RL001`` suppression
  with a justification — making every such decision visible in the diff.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set

from ..base import Finding, ModuleContext, Rule, register_rule

__all__ = ["LockDisciplineRule"]

#: ``_latencies: guarded-by _lock`` (an optional leading ``self.`` on either
#: side is tolerated) inside a class docstring.
_ANNOTATION_PATTERN = re.compile(
    r"^\s*(?:self\.)?(?P<attr>[A-Za-z_]\w*)\s*:\s*guarded-by\s+(?:self\.)?(?P<lock>[A-Za-z_]\w*)\s*$",
    re.MULTILINE,
)

#: Methods that run before the object is shared between threads.
_CONSTRUCTION_METHODS = {"__init__", "__new__", "__post_init__"}


def _is_lock_name(name: str) -> bool:
    return "lock" in name.lower()


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.<attr>`` -> attr name, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _base_self_attr(node: ast.AST) -> Optional[str]:
    """Innermost ``self.<attr>`` under a chain of attribute/subscript access.

    ``self._segments[k]`` -> ``_segments``; ``self._stats.misses`` -> ``_stats``.
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        direct = _self_attr(node)
        if direct is not None:
            return direct
        node = node.value
    return None


@dataclass
class _Access:
    attr: str
    node: ast.AST
    method: str
    held: FrozenSet[str]
    is_write: bool


class _MethodScanner:
    """Collect every ``self.<attr>`` access in one method with the lock set held."""

    def __init__(self, method_name: str) -> None:
        self.method = method_name
        self.accesses: List[_Access] = []

    def scan(self, method: ast.AST) -> List[_Access]:
        body = getattr(method, "body", [])
        for stmt in body:
            self._walk(stmt, frozenset())
        return self.accesses

    # -- recording ---------------------------------------------------------

    def _record(self, attr: str, node: ast.AST, held: FrozenSet[str], is_write: bool) -> None:
        self.accesses.append(
            _Access(attr=attr, node=node, method=self.method, held=held, is_write=is_write)
        )

    def _record_target(self, target: ast.AST, held: FrozenSet[str]) -> None:
        """An assignment/delete target: find the underlying self attribute."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_target(elt, held)
            return
        if isinstance(target, ast.Starred):
            self._record_target(target.value, held)
            return
        attr = _base_self_attr(target)
        if attr is not None:
            self._record(attr, target, held, is_write=True)
        # Index/attribute expressions inside the target still *read* things
        # (``self._a[self._b] = v`` reads ``_b``): walk the non-self parts.
        if isinstance(target, ast.Subscript):
            self._walk(target.slice, held)
            if _base_self_attr(target.value) is None:
                self._walk(target.value, held)
        elif isinstance(target, ast.Attribute) and _self_attr(target) is None:
            if _base_self_attr(target) is None:
                self._walk(target.value, held)

    # -- traversal ---------------------------------------------------------

    def _locks_of(self, with_node: ast.AST) -> FrozenSet[str]:
        locks: Set[str] = set()
        for item in getattr(with_node, "items", []):
            attr = _self_attr(item.context_expr)
            if attr is not None and _is_lock_name(attr):
                locks.add(attr)
        return frozenset(locks)

    def _walk(self, node: ast.AST, held: FrozenSet[str]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self._walk(item.context_expr, held)
                if item.optional_vars is not None:
                    self._walk(item.optional_vars, held)
            inner = held | self._locks_of(node)
            for stmt in node.body:
                self._walk(stmt, inner)
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._record_target(target, held)
            self._walk(node.value, held)
            return
        if isinstance(node, ast.AugAssign):
            self._record_target(node.target, held)
            self._walk(node.value, held)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._record_target(node.target, held)
                self._walk(node.value, held)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self._record_target(target, held)
            return
        if isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None:
                self._record(attr, node, held, is_write=isinstance(node.ctx, (ast.Store, ast.Del)))
                return
            self._walk(node.value, held)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            # A nested callable may run on another thread or after the lock is
            # released; its body cannot be assumed to hold the lock.  Walk it
            # with an empty held set so bare touches still register.
            for child in ast.iter_child_nodes(node):
                self._walk(child, frozenset())
            return
        for child in ast.iter_child_nodes(node):
            self._walk(child, held)


def _docstring_guards(cls: ast.ClassDef) -> Dict[str, Set[str]]:
    guards: Dict[str, Set[str]] = {}
    docstring = ast.get_docstring(cls, clean=False) or ""
    for match in _ANNOTATION_PATTERN.finditer(docstring):
        guards.setdefault(match.group("attr"), set()).add(match.group("lock"))
    return guards


@register_rule
class LockDisciplineRule(Rule):
    id = "RL001"
    name = "lock-discipline"
    description = (
        "attributes written under a `with self.<lock>:` block must hold the lock "
        "on every other access in the class"
    )
    rationale = (
        "unlocked reads of lock-guarded serving state (metrics counters, pool "
        "handles, pending-update ledgers) are torn-read races that tests never catch"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: ModuleContext, cls: ast.ClassDef) -> Iterator[Finding]:
        methods = [
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        if not methods:
            return

        accesses: List[_Access] = []
        for method in methods:
            if method.name in _CONSTRUCTION_METHODS or method.name.endswith("_locked"):
                continue
            accesses.extend(_MethodScanner(method.name).scan(method))

        # Guard inference: attribute -> set of locks it was written under.
        guards: Dict[str, Set[str]] = {}
        for access in accesses:
            if access.is_write and access.held:
                guards.setdefault(access.attr, set()).update(access.held)
        for attr, locks in _docstring_guards(cls).items():
            guards.setdefault(attr, set()).update(locks)

        # The locks themselves are accessed bare by construction.
        for lock_name in list(guards):
            if _is_lock_name(lock_name):
                del guards[lock_name]
        if not guards:
            return

        for access in accesses:
            locks = guards.get(access.attr)
            if locks is None or access.held & locks:
                continue
            if _is_lock_name(access.attr):
                continue
            lock_list = " or ".join(f"self.{name}" for name in sorted(locks))
            verb = "written" if access.is_write else "read"
            yield self.finding(
                ctx,
                access.node,
                f"'{access.attr}' is guarded by {lock_list} but {verb} without it",
                symbol=f"{cls.name}.{access.method}",
            )

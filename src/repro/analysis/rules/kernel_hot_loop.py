"""RL006 — no per-pair Python allocation inside kernel query bodies.

The kernel layer exists because per-pair Python work is what makes the
paper's microsecond query algorithm millisecond-slow under the interpreter.
A list/dict/set comprehension inside ``query_pairs`` /
``query_one_to_many`` / ``rooted_probe`` re-introduces exactly that cost:
one Python object per pair (or per label entry), allocated on every batch,
invisible in profiles until the batch size grows.  Those bodies must stay
vectorised — numpy ufuncs over whole arrays, or a jitted loop.

Flagged: ``ListComp`` / ``SetComp`` / ``DictComp`` nodes anywhere inside a
function (sync or async) named ``query_pairs``, ``query_one_to_many`` or
``rooted_probe``.  Generator expressions are exempt — they are lazy and the
usual offenders (``any``/``all`` guards over a handful of capability flags)
are not per-pair work.

Scope: ``src/repro/core/kernels/`` and ``src/repro/core/query.py`` — the
only places those entry points are implemented; wrappers elsewhere (the
serving engine) delegate and may batch however they like.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Finding, ModuleContext, Rule, register_rule

__all__ = ["KernelHotLoopRule"]

_HOT_FUNCTIONS = frozenset({"query_pairs", "query_one_to_many", "rooted_probe"})

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp)

_COMP_LABEL = {
    ast.ListComp: "list comprehension",
    ast.SetComp: "set comprehension",
    ast.DictComp: "dict comprehension",
}


@register_rule
class KernelHotLoopRule(Rule):
    id = "RL006"
    name = "kernel-hot-loop"
    description = (
        "query_pairs/query_one_to_many/rooted_probe bodies in core/kernels/ and "
        "core/query.py must not build list/dict/set comprehensions (per-pair "
        "Python allocation in the hot loop)"
    )
    rationale = (
        "a comprehension in a kernel query body allocates one Python object per "
        "pair per batch, undoing the vectorisation the kernel layer exists for"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        path = "/" + ctx.path.replace("\\", "/")
        return "/core/kernels/" in path or path.endswith("/core/query.py")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in _HOT_FUNCTIONS:
                continue
            for inner in ast.walk(node):
                if isinstance(inner, _COMPREHENSIONS):
                    label = _COMP_LABEL[type(inner)]
                    yield self.finding(
                        ctx,
                        inner,
                        f"{label} inside {node.name}() allocates per-pair Python "
                        "objects in the kernel hot loop; vectorise with numpy "
                        "array operations instead",
                    )

"""RL008 — metric and series names are spelled via ``repro.obs.names``.

PR 10 added an alerting engine whose rules reference metrics *by name*: a
rule watching ``"cache_hit_rate"`` silently evaluates to "no data" forever if
the exposition key is ever renamed, and an operator dashboard keyed on
``shadow_mismatches_total`` goes blank the same way.  The defence is a single
registry — :mod:`repro.obs.names` — that both the metrics snapshot/exposition
code and the alert rules import their names from, so a rename is one edit and
every consumer follows.

Scope: the modules that produce or consume metric names programmatically
(``serving/metrics.py``, ``serving/alerts.py``, ``obs/health.py``).  Flagged
there:

* a string literal whose value **is** a registered name
  (``repro.obs.names.REGISTERED_NAMES``) — respell it as the constant, the
  whole point is that grep-for-the-constant finds every consumer;
* a string literal that *looks* like a metric name (Prometheus-style
  ``lower_snake`` with a recognised unit/kind suffix: ``_total``,
  ``_seconds``, ``_bytes``, ``_ms``, ``_fds``, ``_rate``, ``_fraction``) but
  is **not** registered — register it in ``repro.obs.names`` and use the
  constant, or rename it so it no longer reads as a metric.

F-string constituents are exempt (derived names like ``latency_{name}_ms``
are templates, not spellable constants) and so are docstrings.  The registry
module itself is out of scope — it is where the literals are *supposed* to
live.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Set

from repro.obs.names import REGISTERED_NAMES

from ..base import Finding, ModuleContext, Rule, register_rule

__all__ = ["MetricNameRule"]

#: Modules that mint or consume metric names; everything else is untouched.
_SCOPED_SUFFIXES = ("serving/metrics.py", "serving/alerts.py", "obs/health.py")

#: Prometheus-flavoured metric-name shape: ``lower_snake`` plus a unit/kind
#: suffix this codebase actually uses.  Deliberately narrower than the full
#: Prometheus grammar — structural dict keys ("buckets", "num_shards") must
#: not trip it.
_METRIC_GRAMMAR = re.compile(
    r"^[a-z][a-z0-9_]*_(total|seconds|bytes|ms|fds|rate|fraction)$"
)


@register_rule
class MetricNameRule(Rule):
    id = "RL008"
    name = "metric-name-discipline"
    description = (
        "metric/series names in serving/metrics.py, serving/alerts.py and "
        "obs/health.py must be spelled via the repro.obs.names registry, "
        "never as inline string literals"
    )
    rationale = (
        "alert rules and dashboards reference metrics by name; an inline "
        "spelling lets a rename strand them on a key that no longer exists"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.path.replace("\\", "/").endswith(_SCOPED_SUFFIXES)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        exempt: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.JoinedStr):
                # Constituent chunks of f-strings are name *templates*
                # (f"latency_{name}_ms"); the assembled name cannot be a
                # single constant, so they are out of the rule's reach.
                for value in node.values:
                    exempt.add(id(value))
            elif isinstance(
                node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                body = node.body
                if (
                    body
                    and isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                ):
                    exempt.add(id(body[0].value))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Constant) or id(node) in exempt:
                continue
            value = node.value
            if not isinstance(value, str):
                continue
            if value in REGISTERED_NAMES:
                yield self.finding(
                    ctx,
                    node,
                    f"metric name {value!r} spelled inline; use the "
                    "repro.obs.names constant",
                )
            elif _METRIC_GRAMMAR.match(value):
                yield self.finding(
                    ctx,
                    node,
                    f"string {value!r} reads as a metric name but is not in "
                    "repro.obs.names; register it there and use the constant "
                    "(or rename it so it no longer looks like a metric)",
                )

"""Rule modules — importing this package registers every shipped rule.

Each module holds one rule class decorated with
:func:`repro.analysis.base.register_rule`; the registry is what
``repro-pll lint`` and ``--list-rules`` enumerate.  To add a rule, drop a new
module here, import it below, and give it fixture coverage in
``tests/test_analysis_rules.py`` (see README "Static analysis").
"""

from . import (  # noqa: F401  (imported for registration side effects)
    async_blocking,
    bench_schema,
    dtype_discipline,
    kernel_hot_loop,
    lock_discipline,
    metric_names,
    protocol_drift,
    shm_lifecycle,
)

__all__ = [
    "async_blocking",
    "bench_schema",
    "dtype_discipline",
    "kernel_hot_loop",
    "lock_discipline",
    "metric_names",
    "protocol_drift",
    "shm_lifecycle",
]

"""RL007 — benchmark scripts report results through the observatory schema.

The performance observatory (``repro.obs``) can only gate regressions on
results it can read: every suite in ``benchmarks/`` must expose a top-level
``collect_results(*, smoke=...)`` adapter returning a
:class:`~repro.obs.schema.BenchResult`, which the registry runs and writes as
``BENCH_<suite>.json``.  A bench script that only prints its numbers — or
serialises them with ad-hoc ``json.dump`` calls — produces measurements the
comparator and the trend report never see, so a perf regression in that suite
ships silently.

Scope: ``benchmarks/bench_*.py``.  Flagged there:

* a module with no top-level ``collect_results`` function definition;
* ``json.dump`` / ``json.dumps`` calls — result serialisation belongs to the
  pinned schema encoder (``BenchResult.to_json`` via ``write_result``), which
  keeps the files byte-stable and comparable.  ``json.loads`` (parsing an
  admin-endpoint reply, say) is fine.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Finding, ModuleContext, Rule, register_rule

__all__ = ["BenchSchemaRule"]

#: The adapter the suite registry loads and runs.
_ADAPTER_NAME = "collect_results"

_JSON_WRITERS = {"dump", "dumps"}


@register_rule
class BenchSchemaRule(Rule):
    id = "RL007"
    name = "bench-schema"
    description = (
        "benchmarks/bench_*.py must expose collect_results() returning the "
        "repro.obs result schema; no ad-hoc json.dump reporting"
    )
    rationale = (
        "the regression gate and trend report only see results emitted through "
        "the shared schema; print-only or hand-rolled JSON output hides perf "
        "regressions from CI"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        path = ctx.path.replace("\\", "/")
        filename = path.rsplit("/", 1)[-1]
        return "benchmarks/" in path and filename.startswith("bench_")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        has_adapter = any(
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == _ADAPTER_NAME
            for node in ctx.tree.body
        )
        if not has_adapter and ctx.tree.body:
            # ast.Module has no lineno; anchor on the first statement.
            yield self.finding(
                ctx,
                ctx.tree.body[0],
                f"benchmark module defines no top-level {_ADAPTER_NAME}(); "
                "add the repro.obs schema adapter so the suite is visible to "
                "'repro-pll bench run' and the regression gate",
                symbol=_ADAPTER_NAME,
            )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _JSON_WRITERS
                and isinstance(func.value, ast.Name)
                and func.value.id == "json"
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"ad-hoc json.{func.attr} in a benchmark; emit results "
                    "through repro.obs (bench_result + write_result) so they "
                    "stay schema-valid and byte-stable",
                    symbol=f"json.{func.attr}",
                )

"""RL002 — no blocking calls on the event loop.

One ``time.sleep`` or synchronous file read inside an ``async def`` stalls
*every* connection the asyncio front end is serving — the whole point of the
PR 4 architecture is that the loop thread never waits.  Blocking work must be
pushed through ``loop.run_in_executor`` (or ``asyncio.to_thread``).

Detection is lexical, over the bodies of ``async def`` functions only:

* known blocking callables: ``time.sleep``, builtin/``io.open``,
  ``os.system`` / ``os.popen`` / ``os.wait*``, anything under ``subprocess.``,
  ``socket.create_connection``;
* blocking-by-shape method calls, whatever the receiver:
  ``.read_text/.write_text/.read_bytes/.write_bytes`` (pathlib I/O),
  ``.result(...)`` **with arguments** (a ``concurrent.futures`` timed wait —
  a bare ``.result()`` on a completed asyncio future is the sanctioned way to
  fetch its value and stays legal), zero-argument ``.join()`` (thread /
  process / queue joins; ``str.join`` always takes an iterable), and
  ``.shutdown(wait=True)`` (executor teardown that parks the loop).

Nested ``def``/``lambda`` bodies are exempt: a synchronous closure is exactly
what gets handed *to* ``run_in_executor``, so blocking calls inside one are
the fix, not the bug.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from ..base import Finding, ModuleContext, Rule, register_rule

__all__ = ["AsyncBlockingRule"]

_BLOCKING_CALLS = {
    "time.sleep",
    "open",
    "io.open",
    "os.system",
    "os.popen",
    "os.wait",
    "os.waitpid",
    "socket.create_connection",
}

_BLOCKING_PREFIXES = ("subprocess.",)

_BLOCKING_IO_METHODS = {"read_text", "write_text", "read_bytes", "write_bytes"}


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` -> "a.b.c" for Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_true(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is True


@register_rule
class AsyncBlockingRule(Rule):
    id = "RL002"
    name = "blocking-call-in-async"
    description = (
        "no time.sleep, blocking file/socket I/O, subprocess, timed Future.result() "
        "or executor shutdown(wait=True) inside `async def` bodies"
    )
    rationale = (
        "a single blocking call on the event loop stalls every connection the "
        "asyncio front end is serving; blocking work belongs in run_in_executor"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_body(ctx, node)

    def _check_async_body(
        self, ctx: ModuleContext, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for stmt in func.body:
            yield from self._walk(ctx, stmt, func.name)

    def _walk(self, ctx: ModuleContext, node: ast.AST, symbol: str) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.Lambda)):
            # Synchronous closures run off-loop (run_in_executor targets).
            return
        if isinstance(node, ast.AsyncFunctionDef):
            # A nested coroutine is its own async body; ast.walk in check()
            # already visits it independently.
            return
        if isinstance(node, ast.Await):
            # A directly-awaited call yields to the loop by construction
            # (``await queue.join()``); only its arguments need checking.
            if isinstance(node.value, ast.Call):
                for child in ast.iter_child_nodes(node.value):
                    yield from self._walk(ctx, child, symbol)
                return
        if isinstance(node, ast.Call):
            message = self._blocking_reason(node)
            if message is not None:
                yield self.finding(ctx, node, message, symbol=symbol)
        for child in ast.iter_child_nodes(node):
            yield from self._walk(ctx, child, symbol)

    def _blocking_reason(self, call: ast.Call) -> Optional[str]:
        dotted = _dotted_name(call.func)
        if dotted is not None:
            if dotted in _BLOCKING_CALLS or dotted.startswith(_BLOCKING_PREFIXES):
                return (
                    f"blocking call {dotted}() on the event loop; "
                    "route it through run_in_executor"
                )
        if not isinstance(call.func, ast.Attribute):
            return None
        method = call.func.attr
        if method in _BLOCKING_IO_METHODS:
            return (
                f"blocking file I/O .{method}() on the event loop; "
                "route it through run_in_executor"
            )
        if method == "result" and (call.args or call.keywords):
            return (
                "timed Future.result() blocks the event loop; await the future "
                "or use asyncio.wait_for"
            )
        if method == "join" and not call.args and not call.keywords:
            return (
                "bare .join() blocks the event loop waiting on a thread/queue; "
                "route it through run_in_executor"
            )
        if method == "shutdown":
            wait_true = any(
                keyword.arg == "wait" and _is_true(keyword.value)
                for keyword in call.keywords
            ) or (call.args and _is_true(call.args[0]))
            if wait_true:
                return (
                    "executor .shutdown(wait=True) blocks the event loop; "
                    "run it in an executor thread"
                )
        return None

"""File walking and rule execution — the engine behind ``repro-pll lint``."""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from .base import Finding, ModuleContext, Rule, all_rules
from .reporters import LintReport

__all__ = ["check_source", "iter_python_files", "run_lint"]

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hg", ".mypy_cache", ".ruff_cache", "build", "dist"}


def iter_python_files(paths: Sequence[Union[str, Path]]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` (files listed directly always pass)."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    name
                    for name in dirnames
                    if name not in _SKIP_DIRS and not name.startswith(".")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield Path(dirpath) / filename
        else:
            yield path


def display_path(path: Path) -> str:
    """Repo-relative posix path when possible — what findings and the baseline embed.

    Fingerprints must be identical no matter which directory the tool is
    invoked from, so the path is relativised against the working directory
    when the file lives under it, and left as given otherwise.
    """
    resolved = path.resolve()
    try:
        rel = resolved.relative_to(Path.cwd().resolve())
    except ValueError:
        rel = path
    return rel.as_posix()


def check_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one in-memory module under a virtual ``path`` (the test entry point).

    ``path`` drives the location-scoped rules (RL004 only looks at the wire
    front ends, RL005 only at ``core/`` and ``serving/``), so fixtures choose
    it to opt in or out of a rule.
    """
    ctx = ModuleContext.parse(path, source)
    active = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    for rule in active:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if not ctx.is_suppressed(finding.rule, finding.line):
                findings.append(finding)
    return sorted(findings, key=Finding.sort_key)


def _lint_file(path: Path, rules: Sequence[Rule]) -> Tuple[List[Finding], Optional[str], int]:
    """Returns ``(findings, error, num_suppressed)`` for one file."""
    shown = display_path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [], f"{shown}: cannot read: {exc}", 0
    try:
        ctx = ModuleContext.parse(shown, source)
    except SyntaxError as exc:
        return [], f"{shown}: cannot parse: {exc.msg} (line {exc.lineno})", 0

    findings: List[Finding] = []
    num_suppressed = 0
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if ctx.is_suppressed(finding.rule, finding.line):
                num_suppressed += 1
            else:
                findings.append(finding)
    return findings, None, num_suppressed


def run_lint(
    paths: Sequence[Union[str, Path]],
    *,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Iterable[str]] = None,
) -> LintReport:
    """Lint ``paths`` and return an un-rendered :class:`LintReport`.

    ``baseline`` is an iterable (or Counter) of grandfathered fingerprints;
    findings it absorbs are kept in the report but marked ``baselined`` and do
    not count as new.
    """
    from collections import Counter

    from .baseline import apply_baseline

    active = list(rules) if rules is not None else all_rules()
    report = LintReport(rules=active)
    collected: List[Finding] = []
    for path in iter_python_files(paths):
        findings, error, num_suppressed = _lint_file(path, active)
        report.num_files += 1
        report.num_suppressed += num_suppressed
        if error is not None:
            report.errors.append(error)
        collected.extend(findings)

    collected.sort(key=Finding.sort_key)
    fingerprints = Counter(baseline) if baseline is not None else Counter()
    annotated, num_new = apply_baseline(collected, fingerprints)
    report.findings = annotated
    report.num_new = num_new
    return report

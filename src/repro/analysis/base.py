"""Core types for reprolint: findings, rules, per-file context, suppressions.

The framework is deliberately small.  A *rule* is a class with an id, a
description and a ``check(ctx)`` generator; a *finding* is an immutable record
pointing at one source location; a :class:`ModuleContext` is one parsed file
(source text, AST, comment-derived suppressions) handed to every rule.  The
runner (:mod:`repro.analysis.runner`) walks files, builds contexts, calls
rules, applies suppressions and the baseline, and hands the survivors to a
reporter.

Suppression comments
--------------------
Findings are suppressed per physical line, in the style of the mainstream
linters::

    self._pool.submit(task)  # reprolint: disable=RL001  optimistic read

    # reprolint: disable=RL001
    self._pool.submit(task)

The first form silences rules on the commented line itself; the second —
a comment with nothing else on its line — silences them on the *next*
non-comment line.  ``disable=RL001,RL004`` lists several rules; a bare
``disable`` (no ``=``) silences every rule, and ``disable-file=...`` anywhere
in the file silences the listed rules for the whole module.  Suppressions are
parsed from the token stream, not with regexes over raw lines, so a ``#``
inside a string literal never reads as a comment.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "RuleError",
    "all_rules",
    "get_rule",
    "register_rule",
]


class RuleError(Exception):
    """Raised for unknown rule ids or invalid rule registrations."""


_RULE_ID_PATTERN = re.compile(r"^RL\d{3}$")

#: Comment grammar: ``# reprolint: disable`` / ``disable=RL001,RL002`` /
#: ``disable-file=RL003``.  Anything after the rule list is free-form
#: justification text and is ignored.
_SUPPRESSION_PATTERN = re.compile(
    r"#\s*reprolint:\s*(?P<verb>disable-file|disable)\s*(?:=\s*(?P<rules>[A-Za-z0-9_,\s]+?))?\s*(?:--|$)"
)

#: Sentinel stored in suppression sets meaning "every rule".
ALL_RULES = "*"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``symbol`` is the enclosing ``Class.method`` (or function) name when the
    rule can name one — it feeds the fingerprint so baseline entries survive
    unrelated edits that shift line numbers.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = ""
    baselined: bool = False

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching: rule + path + symbol + message.

        Line and column are deliberately excluded so a grandfathered finding
        does not resurface every time an unrelated edit reflows the file.
        """
        payload = "\x1f".join((self.rule, self.path, self.symbol, self.message))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint,
            "baselined": self.baselined,
        }

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


@dataclass
class ModuleContext:
    """One parsed source file, shared by every rule that checks it.

    ``path`` is the *display* path (repo-relative where possible) — rules that
    scope themselves by location (RL004, RL005) match against it, and it is
    what fingerprints embed, so it must be stable across checkouts.
    """

    path: str
    source: str
    tree: ast.Module
    #: line number -> rule ids suppressed on that line (ALL_RULES for bare
    #: ``disable``).
    line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule ids suppressed for the whole file.
    file_suppressions: Set[str] = field(default_factory=set)

    @classmethod
    def parse(cls, path: str, source: str) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        line_suppressions, file_suppressions = _collect_suppressions(source)
        return cls(
            path=path,
            source=source,
            tree=tree,
            line_suppressions=line_suppressions,
            file_suppressions=file_suppressions,
        )

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self.file_suppressions or ALL_RULES in self.file_suppressions:
            return True
        active = self.line_suppressions.get(line)
        if active is None:
            return False
        return rule_id in active or ALL_RULES in active


def _collect_suppressions(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract suppression comments from the token stream.

    Returns ``(line -> rules, file-wide rules)``.  A comment that is the only
    token on its physical line applies to the next line that carries code (the
    "disable-next-line" style); a trailing comment applies to its own line.
    Unreadable files (tokenize errors) yield no suppressions rather than
    crashing the whole lint run — the AST parse will surface the real error.
    """
    line_suppressions: Dict[int, Set[str]] = {}
    file_suppressions: Set[str] = set()
    #: comment-only suppressions waiting for the next code-bearing line.
    pending: List[Set[str]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return line_suppressions, file_suppressions

    code_lines: Set[int] = set()
    for tok in tokens:
        if tok.type in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            continue
        for lineno in range(tok.start[0], tok.end[0] + 1):
            code_lines.add(lineno)

    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_PATTERN.search(tok.string)
        if match is None:
            continue
        listed = match.group("rules")
        rules: Set[str] = set()
        if listed is None:
            rules.add(ALL_RULES)
        else:
            rules.update(part.strip() for part in listed.split(",") if part.strip())
        if not rules:
            continue
        lineno = tok.start[0]
        if match.group("verb") == "disable-file":
            file_suppressions.update(rules)
        elif lineno in code_lines:
            line_suppressions.setdefault(lineno, set()).update(rules)
        else:
            pending.append(rules)
            continue

    if pending:
        # Re-walk comment-only suppressions and bind each to the first code
        # line after it.  (Done in a second pass so multi-line statements and
        # stacked comments resolve consistently.)
        comment_lines = [
            (tok.start[0], _SUPPRESSION_PATTERN.search(tok.string))
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
        sorted_code_lines = sorted(code_lines)
        for lineno, match in comment_lines:
            if match is None or match.group("verb") != "disable" or lineno in code_lines:
                continue
            listed = match.group("rules")
            rules = (
                {ALL_RULES}
                if listed is None
                else {part.strip() for part in listed.split(",") if part.strip()}
            )
            if not rules:
                continue
            target = next((code for code in sorted_code_lines if code > lineno), None)
            if target is not None:
                line_suppressions.setdefault(target, set()).update(rules)

    return line_suppressions, file_suppressions


class Rule:
    """Base class for reprolint rules.

    Subclasses set the class attributes and implement :meth:`check`.  A rule
    instance is stateless across files; per-file state lives in locals of
    ``check`` (or visitor objects it builds).
    """

    id: str = ""
    name: str = ""
    description: str = ""
    rationale: str = ""

    def applies_to(self, ctx: ModuleContext) -> bool:
        """Whether this rule wants to see ``ctx`` at all (path scoping)."""
        return True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        message: str,
        *,
        symbol: str = "",
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=symbol,
        )


_REGISTRY: Dict[str, Rule] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one instance of ``cls`` to the global registry."""
    if not _RULE_ID_PATTERN.match(cls.id):
        raise RuleError(f"rule id {cls.id!r} does not match RLnnn")
    if cls.id in _REGISTRY:
        raise RuleError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> List[Rule]:
    """Registered rules, ordered by id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise RuleError(f"unknown rule {rule_id!r}") from None


def select_rules(selected: Optional[Iterable[str]]) -> List[Rule]:
    """Resolve ``--select`` ids (or None for everything) to rule instances."""
    if selected is None:
        return all_rules()
    resolved: List[Rule] = []
    seen: Set[str] = set()
    for rule_id in selected:
        rule_id = rule_id.strip()
        if not rule_id or rule_id in seen:
            continue
        seen.add(rule_id)
        resolved.append(get_rule(rule_id))
    return resolved


def qualname(stack: Sequence[str]) -> str:
    """Join an enclosing class/function stack into ``Outer.inner`` form."""
    return ".".join(stack)

"""reprolint — project-specific static analysis for the serving stack.

Generic linters cannot know that ``ServerMetrics`` counters belong to
``_lock``, that wire replies are only legal when ``protocol.py`` formats
them, or that a ``SharedMemory`` handle without an owner leaks a ``/dev/shm``
segment.  This package encodes those invariants as AST rules and runs them in
CI (`repro-pll lint` / ``python -m repro.analysis``), so the regressions that
previously surfaced in review rounds (PR 4, PR 6) fail the build instead.

Layout:

* :mod:`~repro.analysis.base` — ``Finding`` / ``Rule`` / registry /
  suppression comments
* :mod:`~repro.analysis.rules` — the shipped rules (RL001–RL007)
* :mod:`~repro.analysis.runner` — file walking + rule execution
* :mod:`~repro.analysis.baseline` — grandfathered-finding files
* :mod:`~repro.analysis.reporters` — text / JSON output
* :mod:`~repro.analysis.cli` — the ``lint`` command surface

See the README "Static analysis" section for the rule catalogue and the
suppression / baseline workflow.
"""

from . import rules  # noqa: F401  (registers RL001–RL007 on import)
from .base import Finding, ModuleContext, Rule, all_rules, get_rule, register_rule
from .baseline import load_baseline, write_baseline
from .reporters import LintReport, render_json, render_text
from .runner import check_source, run_lint

__all__ = [
    "Finding",
    "LintReport",
    "ModuleContext",
    "Rule",
    "all_rules",
    "check_source",
    "get_rule",
    "load_baseline",
    "register_rule",
    "render_json",
    "render_text",
    "run_lint",
    "write_baseline",
]

"""Command-line interface: ``repro-pll``.

Six sub-commands cover the common workflows:

``repro-pll build``
    Read an edge list, build a pruned-landmark-labeling index and save it.
``repro-pll query``
    Load a saved index and answer distance queries from the command line.
``repro-pll serve``
    Run the long-lived query service (batched engine, hot-pair cache,
    metrics) over stdio or TCP.
``repro-pll datasets``
    List the built-in benchmark datasets (the paper's Table 4 stand-ins).
``repro-pll experiment``
    Regenerate any of the paper's tables and figures and print them as text
    (optionally also writing CSV files).
``repro-pll lint``
    Run reprolint, the project-specific static-analysis suite that enforces
    the serving stack's concurrency/lifecycle/protocol invariants.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro._version import __version__
from repro.analysis.cli import add_lint_arguments, run_lint_command

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro-pll`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-pll",
        description=(
            "Pruned landmark labeling: exact shortest-path distance queries "
            "(SIGMOD 2013 reproduction)"
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    build = subparsers.add_parser("build", help="build an index from an edge list")
    build.add_argument("edge_list", help="path to a whitespace-separated edge list")
    build.add_argument(
        "-o",
        "--output",
        required=True,
        help=(
            "output index file; a .npz suffix selects the compressed archive, "
            "any other suffix the raw layout that supports zero-copy "
            "(--mmap) loading"
        ),
    )
    build.add_argument(
        "--bit-parallel", type=int, default=16, help="number of bit-parallel BFSs"
    )
    build.add_argument(
        "--ordering",
        default="degree",
        choices=["degree", "closeness", "random"],
        help="vertex ordering strategy",
    )
    build.add_argument("--directed", action="store_true", help="treat edges as directed")

    query = subparsers.add_parser("query", help="answer distance queries from an index")
    query.add_argument("index", help="path to a saved index file")
    query.add_argument(
        "pairs",
        nargs="*",
        help="query pairs as 's,t' (e.g. 12,93); omit to read pairs from stdin",
    )
    query.add_argument(
        "--mmap",
        action="store_true",
        help=(
            "zero-copy load: memory-map the label arrays read-only instead "
            "of materialising heap copies (raw-layout indexes only; the OS "
            "pages in just the labels the queries touch)"
        ),
    )

    serve = subparsers.add_parser(
        "serve", help="serve distance queries as a long-lived batching service"
    )
    serve.add_argument(
        "index",
        nargs="?",
        default=None,
        help="path to a saved .npz index (or use --edge-list to build one)",
    )
    serve.add_argument(
        "--edge-list",
        default=None,
        help=(
            "build the index from this edge list at startup instead of "
            "loading a saved one; keeps the graph around, so the server "
            "accepts add/remove/publish mutations and --mutations replay"
        ),
    )
    serve.add_argument(
        "--mutations",
        default=None,
        help=(
            "replay this mutation file (add a b / remove a b / publish per "
            "line) against the shadow index before serving; requires "
            "--edge-list (a saved index carries no graph to mutate)"
        ),
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address for TCP serving"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port to listen on; omit to serve stdin/stdout instead",
    )
    serve.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help=(
            "serve the line protocol from a single asyncio event loop instead "
            "of one thread per connection — thousands of mostly-idle clients "
            "cost a few coroutines each, not a thread; requires --port"
        ),
    )
    serve.add_argument(
        "--http-port",
        type=int,
        default=None,
        help=(
            "also bind an HTTP admin plane on this port (async mode only): "
            "GET /metrics (Prometheus text exposition incl. latency/stage "
            "histograms and ALERTS series), GET /healthz, POST /publish, "
            "GET /alerts, GET /traces, GET /debug/threads, "
            "GET /debug/profile?seconds=N, GET /debug/bundle"
        ),
    )
    serve.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help=(
            "slow-query log threshold in milliseconds: requests whose "
            "end-to-end latency meets it are kept in a dedicated trace ring "
            "and logged as structured JSON slow_query events (default: off)"
        ),
    )
    serve.add_argument(
        "--log-json",
        action="store_true",
        help=(
            "emit operational events (startup, listeners, replay/warm "
            "summaries, worker respawns, publishes, shutdown) as one JSON "
            "object per stderr line instead of human-readable text"
        ),
    )
    serve.add_argument(
        "--warm",
        default=None,
        metavar="PAIRS_FILE",
        help=(
            "replay this query log (one 's t' or 's,t' pair per line) through "
            "the engine to populate the hot-pair cache before the listener "
            "accepts connections; requires a non-zero --cache-size"
        ),
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=65536,
        help="hot-pair LRU cache capacity (0 disables the cache)",
    )
    serve.add_argument(
        "--batch-size",
        type=int,
        default=2048,
        help="maximum query pairs coalesced into one engine call",
    )
    serve.add_argument(
        "--batch-timeout-ms",
        type=float,
        default=2.0,
        help="how long to wait for more requests before dispatching a batch",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=4096,
        help="admission control: maximum queued requests before rejecting",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes sharing the label arrays through named shared "
            "memory; batches are sharded across them, bypassing the GIL for "
            "multi-core serving (1 = single-process)"
        ),
    )
    serve.add_argument(
        "--min-shard-size",
        type=int,
        default=512,
        help="target query pairs per worker shard (multi-process mode only)",
    )
    serve.add_argument(
        "--kernel",
        choices=["auto", "numpy", "narrow", "numba"],
        default=None,
        help=(
            "batch-kernel backend: auto picks the fastest available "
            "(numba > narrow > numpy); an explicit name pins it and makes a "
            "missing backend a startup error instead of a silent fallback "
            "(overrides the REPRO_KERNEL environment variable)"
        ),
    )
    serve.add_argument(
        "--gc-monitor",
        action="store_true",
        help=(
            "install the gc.callbacks pause monitor for the serve lifetime: "
            "stop-the-world collection pauses appear as gc_pause_seconds_total "
            "/ gc_pauses_total in the metrics and feed the GcPauseHigh alert"
        ),
    )
    serve.add_argument(
        "--shadow-sample",
        type=float,
        default=0.0,
        metavar="RATE",
        help=(
            "shadow correctness canary: asynchronously recompute this "
            "fraction of served batches (0..1) through the scalar per-pair "
            "path and count divergences as shadow_mismatches_total "
            "(default: 0, off)"
        ),
    )
    serve.add_argument(
        "--health-interval",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help=(
            "how often the health engine evaluates its alert rules (latency "
            "SLO burn rate, error rate, cache collapse, event-loop lag, GC "
            "pauses, worker respawns, dirty-vertex ratio, shadow mismatches) "
            "against a metrics snapshot; 0 disables the engine (default: 5)"
        ),
    )

    datasets = subparsers.add_parser("datasets", help="list the built-in datasets")
    datasets.add_argument(
        "--size-class", choices=["small", "large"], default=None, help="filter by size"
    )

    lint = subparsers.add_parser(
        "lint",
        help="run reprolint, the project-specific static-analysis suite",
        description=(
            "Check the codebase against the serving stack's concurrency, "
            "lifecycle and protocol invariants (rules RL001-RL007); see the "
            "README 'Static analysis' section for the catalogue."
        ),
    )
    add_lint_arguments(lint)

    bench = subparsers.add_parser(
        "bench",
        help="run benchmark suites and track their results over time",
        description=(
            "The performance observatory: run registered benchmark suites "
            "through the shared result schema (BENCH_<suite>.json), compare "
            "runs with noise-aware regression gating, render trend reports "
            "over a history directory, and snapshot a live /metrics endpoint."
        ),
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_sub.add_parser(
        "run", help="run one or more suites and write BENCH_<suite>.json files"
    )
    bench_run.add_argument(
        "--suite",
        nargs="*",
        default=None,
        metavar="NAME",
        help="suites to run (default: every registered suite; see 'bench list')",
    )
    bench_run.add_argument(
        "--smoke",
        action="store_true",
        help="run the reduced CI-scale configuration of each suite",
    )
    bench_run.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="repeats per suite; samples merge into one result (default 1)",
    )
    bench_run.add_argument(
        "--out",
        default="bench-results",
        metavar="DIR",
        help="directory for the BENCH_<suite>.json files (default bench-results)",
    )

    bench_sub.add_parser("list", help="list the registered benchmark suites")

    bench_compare = bench_sub.add_parser(
        "compare",
        help="compare two result files or directories; exit 1 on regression",
    )
    bench_compare.add_argument("baseline", help="baseline BENCH_*.json file or directory")
    bench_compare.add_argument("current", help="current BENCH_*.json file or directory")
    bench_compare.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="FRAC",
        help="relative band per gated metric (default 0.10; metric overrides win)",
    )
    bench_compare.add_argument(
        "--verbose",
        action="store_true",
        help="also show within-tolerance and informational rows",
    )

    bench_report = bench_sub.add_parser(
        "report", help="render a per-suite trend table over a history directory"
    )
    bench_report.add_argument(
        "history", help="directory tree holding BENCH_*.json files from past runs"
    )

    bench_scrape = bench_sub.add_parser(
        "scrape", help="snapshot a live /metrics endpoint into the result schema"
    )
    bench_scrape.add_argument("url", help="address of a serving /metrics endpoint")
    bench_scrape.add_argument(
        "--suite",
        default="scrape",
        help="suite name stamped on the snapshot (default 'scrape')",
    )
    bench_scrape.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="also write BENCH_<suite>.json to this directory",
    )

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's tables or figures"
    )
    experiment.add_argument(
        "name",
        choices=[
            "table1",
            "table3",
            "table4",
            "table5",
            "figure2",
            "figure3",
            "figure4",
            "figure5",
            "ablation-ordering",
            "ablation-pruning",
            "ablation-theorem43",
        ],
        help="experiment to run",
    )
    experiment.add_argument(
        "--datasets", nargs="*", default=None, help="restrict to these dataset names"
    )
    experiment.add_argument(
        "--num-queries", type=int, default=1_000, help="random query pairs per dataset"
    )
    experiment.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for random query workloads and randomised orderings",
    )
    experiment.add_argument(
        "--no-baselines",
        action="store_true",
        help="table3 only: skip the baseline methods",
    )
    experiment.add_argument("--csv", default=None, help="also write results to this CSV file")
    return parser


def _command_build(args: argparse.Namespace) -> int:
    from repro.core.index import PrunedLandmarkLabeling
    from repro.core.serialization import save_index
    from repro.graph.io import read_edge_list

    graph, _ = read_edge_list(args.edge_list, directed=args.directed)
    if args.directed:
        print(
            "note: saved indexes support undirected graphs; the graph will be "
            "symmetrised",
            file=sys.stderr,
        )
        graph = graph.to_undirected()
    index = PrunedLandmarkLabeling(
        ordering=args.ordering, num_bit_parallel_roots=args.bit_parallel
    ).build(graph)
    save_index(index, args.output)
    print(
        f"indexed {graph.num_vertices} vertices / {graph.num_edges} edges; "
        f"average label size {index.average_label_size():.1f}; "
        f"index written to {args.output}"
    )
    return 0


def _parse_pairs(tokens: Sequence[str]) -> List[tuple]:
    from repro.serving.protocol import parse_pair

    pairs = []
    for token in tokens:
        try:
            pairs.append(parse_pair(token))
        except ValueError as exc:
            raise ValueError(f"cannot parse query pair {token!r}; {exc}") from None
    return pairs


def _command_query(args: argparse.Namespace) -> int:
    from repro.core.serialization import load_index
    from repro.errors import SerializationError, VertexError

    try:
        index = load_index(args.index, mmap=args.mmap)
    except SerializationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tokens = list(args.pairs)
    if not tokens:
        tokens = [line.strip() for line in sys.stdin if line.strip()]
    try:
        pairs = _parse_pairs(tokens)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        distances = index.distances(pairs)
    except VertexError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for (s, t), distance in zip(pairs, distances):
        rendered = "inf" if distance == float("inf") else f"{distance:g}"
        print(f"{s}\t{t}\t{rendered}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.core.kernels import KernelUnavailableError, set_default_kernel

    if args.kernel is None:
        return _run_serve_command(args)
    # Pin the batch-kernel preference for the whole serve lifetime, then put
    # it back: tests drive main() in-process, so the module-level preference
    # must not leak across calls.  An explicit backend name is strict — a
    # host without that backend is a startup error, not a silent fallback.
    try:
        previous = set_default_kernel(args.kernel, strict=args.kernel != "auto")
    except KernelUnavailableError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        return _run_serve_command(args)
    finally:
        set_default_kernel(previous)


def _run_serve_command(args: argparse.Namespace) -> int:
    from repro.core.serialization import load_index
    from repro.errors import GraphError, ReproError, SerializationError
    from repro.graph.io import read_edge_list
    from repro.serving import (
        LRUCache,
        QueryServer,
        ServerMetrics,
        ShardedQueryEngine,
        SnapshotManager,
        StructuredLogger,
        TraceRecorder,
        replay_mutations,
        serve_stdio,
        serve_tcp,
    )

    if (args.index is None) == (args.edge_list is None):
        print(
            "error: serve needs exactly one input: a saved index or --edge-list",
            file=sys.stderr,
        )
        return 2
    if args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 2
    if args.use_async and args.port is None:
        print(
            "error: --async serves TCP (and optional HTTP) from an event "
            "loop; it requires --port",
            file=sys.stderr,
        )
        return 2
    if args.http_port is not None and not args.use_async:
        print(
            "error: the HTTP admin plane (--http-port) is part of the async "
            "front end; add --async",
            file=sys.stderr,
        )
        return 2
    if args.warm is not None and args.cache_size <= 0:
        print(
            "error: --warm populates the hot-pair cache; it requires a "
            "non-zero --cache-size",
            file=sys.stderr,
        )
        return 2
    if not 0.0 <= args.shadow_sample <= 1.0:
        print(
            "error: --shadow-sample is a sampling rate; it must be between "
            "0 and 1",
            file=sys.stderr,
        )
        return 2
    if args.health_interval < 0:
        print(
            "error: --health-interval must be non-negative (0 disables "
            "the health engine)",
            file=sys.stderr,
        )
        return 2
    # --log-json switches every operational announcement to one-JSON-object-
    # per-line events; without it the human-readable lines below stay exactly
    # as they were.  The slow-query log is always structured (it is meant for
    # pipelines), so --slow-ms gets a JSON logger of its own if needed.
    logger = StructuredLogger(component="cli") if args.log_json else None
    slow_logger = None
    if args.slow_ms is not None:
        base = logger if logger is not None else StructuredLogger()
        slow_logger = base.child("slow-query")
    tracer = TraceRecorder(slow_threshold_ms=args.slow_ms, logger=slow_logger)
    sharded = args.workers > 1
    if args.edge_list is not None:
        try:
            graph, _ = read_edge_list(args.edge_list)
        except (OSError, GraphError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        manager = SnapshotManager.from_graph(graph, shared=sharded)
        source = args.edge_list
    else:
        try:
            index = load_index(args.index)
        except SerializationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if logger is not None:
            logger.event(
                "index_loaded",
                ordering=index.ordering,
                bit_parallel_roots=index.num_bit_parallel_roots,
            )
        else:
            print(
                f"index metadata: ordering={index.ordering} "
                f"bit_parallel_roots={index.num_bit_parallel_roots}",
                file=sys.stderr,
            )
        manager = SnapshotManager.from_index(index, shared=sharded)
        source = args.index
    cache = LRUCache(args.cache_size) if args.cache_size > 0 else None
    metrics = ServerMetrics()
    # A served index may own named shared-memory generations; SIGTERM must
    # unwind through the finally below (not hard-kill the process) or their
    # /dev/shm segments outlive the server, and the finally must already be
    # in place while the engine/server are constructed (a failing pool fork
    # would otherwise skip manager.close()).  Restore the previous handler
    # so in-process callers (tests) are unaffected afterwards.
    import signal

    previous_handler = None
    try:
        previous_handler = signal.signal(
            signal.SIGTERM, lambda signum, frame: sys.exit(143)
        )
    except ValueError:  # not in the main thread; keep default behaviour
        pass
    gc_monitor_enabled = False
    if args.gc_monitor:
        from repro.obs import enable_gc_monitor

        enable_gc_monitor()
        gc_monitor_enabled = True
    engine = None
    try:
        if sharded:
            engine = ShardedQueryEngine(
                manager,
                num_workers=args.workers,
                min_shard_size=args.min_shard_size,
                metrics=metrics,
                logger=logger.child("sharded") if logger is not None else None,
            )
        backend = engine if engine is not None else manager
        kernel_info = manager.current.engine.kernel_info()
        if logger is not None:
            logger.event("kernel_selected", **kernel_info)
            logger.event(
                "serve_start",
                source=source,
                num_vertices=manager.current.engine.num_vertices,
                cache_size=args.cache_size,
                batch_size=args.batch_size,
                workers=args.workers,
                writable=manager.writable,
                frontend="async" if args.use_async else "threaded",
                slow_ms=args.slow_ms,
                kernel=kernel_info["selected"],
            )
        else:
            print(
                f"serving {manager.current.engine.num_vertices} vertices from {source} "
                f"(cache={args.cache_size}, batch={args.batch_size}, "
                f"workers={args.workers}, writable={manager.writable}, "
                f"frontend={'async' if args.use_async else 'threaded'}, "
                f"kernel={kernel_info['selected']})",
                file=sys.stderr,
            )
        if args.warm is not None:
            exit_code = _warm_serve_cache(args, backend, manager, cache, logger)
            if exit_code != 0:
                return exit_code
        if args.use_async:
            return _run_async_serve(
                args, backend, manager, metrics, cache, tracer, logger
            )
        server = QueryServer(
            backend,
            cache=cache,
            max_batch_size=args.batch_size,
            batch_timeout=args.batch_timeout_ms / 1000.0,
            max_pending=args.max_pending,
            metrics=metrics,
            tracer=tracer,
            logger=logger.child("server") if logger is not None else None,
        )
        health, shadow = _start_observability(args, server, logger)
        try:
            return _run_serve_loop(
                args, server, manager, replay_mutations, serve_stdio, serve_tcp, logger
            )
        finally:
            _stop_observability(health, shadow)
    finally:
        if engine is not None:
            engine.close()
        manager.close()
        if previous_handler is not None:
            signal.signal(signal.SIGTERM, previous_handler)
        if gc_monitor_enabled:
            from repro.obs import disable_gc_monitor

            disable_gc_monitor()


def _start_observability(args, front, logger=None):
    """Attach the health engine and shadow canary to a serving front end.

    Works for both the threaded :class:`QueryServer` and the asyncio
    :class:`AsyncQueryFrontend` — each exposes ``metrics_snapshot`` plus the
    caller-owned ``health`` / ``shadow`` attachment slots.  Returns
    ``(health, shadow)`` (either may be ``None``) for :func:`_stop_observability`.
    """
    from repro.serving import HealthMonitor, ShadowCanary

    health = None
    shadow = None
    if args.shadow_sample > 0:
        shadow = ShadowCanary(
            args.shadow_sample,
            logger=logger.child("shadow") if logger is not None else None,
        )
        shadow.start()
        front.shadow = shadow
    if args.health_interval > 0:
        health = HealthMonitor(
            front.metrics_snapshot,
            interval_seconds=args.health_interval,
            logger=logger.child("health") if logger is not None else None,
        )
        health.start()
        front.health = health
    return health, shadow


def _stop_observability(health, shadow) -> None:
    """Stop the serve-lifetime health/shadow threads (either may be ``None``)."""
    if health is not None:
        health.stop()
    if shadow is not None:
        shadow.flush()
        shadow.stop()


def _warm_serve_cache(args, backend, manager, cache, logger=None) -> int:
    """Replay the ``--warm`` query log into the hot-pair cache (before listening)."""
    from repro.errors import ReproError
    from repro.serving import SnapshotManager, read_pairs_file, warm_cache

    engine = (
        backend.current.engine if isinstance(backend, SnapshotManager) else backend
    )
    try:
        pairs = read_pairs_file(args.warm)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        stats = warm_cache(engine, cache, pairs)
    except ReproError as exc:
        print(f"error: cannot warm cache; {exc}", file=sys.stderr)
        return 2
    if logger is not None:
        logger.event("cache_warmed", path=args.warm, **stats)
    else:
        print(
            f"warmed cache from {args.warm}: {stats['pairs']} pairs replayed in "
            f"{stats['seconds']:.2f}s, {stats['cached']} entries cached, replay "
            f"hit rate {stats['hit_rate']:.1%}",
            file=sys.stderr,
        )
    return 0


def _run_async_serve(args, backend, manager, metrics, cache, tracer=None, logger=None) -> int:
    """Serve through the asyncio front end until SIGTERM/SIGINT drains it."""
    import asyncio

    from repro.errors import ReproError
    from repro.serving import AsyncQueryFrontend, QueryServer, replay_mutations

    # Constructed before any mutations replay: the frontend pins the current
    # snapshot version for cache invalidation at construction, so a replayed
    # publish afterwards bumps the version and flushes any --warm entries on
    # the first batch instead of serving them stale.
    frontend = AsyncQueryFrontend(
        backend,
        cache=cache,
        max_batch_size=args.batch_size,
        batch_timeout=args.batch_timeout_ms / 1000.0,
        max_pending=args.max_pending,
        metrics=metrics,
        health_check_interval=5.0 if args.workers > 1 else None,
        tracer=tracer,
        logger=logger.child("aio") if logger is not None else None,
    )

    if args.mutations is not None:
        # Replay before any listener exists.  The never-started QueryServer is
        # only a shim reusing the threaded server's mutation dispatch; it
        # serves no queries.
        shim = QueryServer(backend, metrics=metrics)
        try:
            with open(args.mutations, "r", encoding="utf-8") as handle:
                counts = replay_mutations(shim, handle)
        except (OSError, ValueError, ReproError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if logger is not None:
            logger.event(
                "mutations_replayed", path=args.mutations,
                version=manager.version, **counts,
            )
        else:
            print(
                f"replayed {args.mutations}: {counts['added']} insertions, "
                f"{counts['removed']} deletions, {counts['published']} "
                f"publishes (now at version {manager.version})",
                file=sys.stderr,
            )

    def announce(front) -> None:
        host, port = front.tcp_address
        http_address = front.http_address
        if logger is not None:
            event = {"host": host, "port": port, "frontend": "async"}
            if http_address is not None:
                event["http_host"], event["http_port"] = http_address
            logger.event("listening", **event)
            return
        print(f"listening on {host}:{port} (async)", file=sys.stderr)
        if http_address is not None:
            http_host, http_port = http_address
            print(
                f"admin plane on http://{http_host}:{http_port} "
                "(GET /metrics, GET /healthz, POST /publish, GET /alerts, "
                "GET /traces, GET /debug/threads, GET /debug/profile, "
                "GET /debug/bundle)",
                file=sys.stderr,
            )
        sys.stderr.flush()

    health, shadow = _start_observability(args, frontend, logger)
    try:
        asyncio.run(
            frontend.serve(
                args.host, args.port, http_port=args.http_port, ready=announce
            )
        )
    except KeyboardInterrupt:  # pragma: no cover - non-main-thread loops only
        pass
    finally:
        _stop_observability(health, shadow)
    stats = frontend.metrics_snapshot()
    if logger is not None:
        logger.event(
            "serve_done",
            num_queries=stats["num_queries"],
            num_batches=stats["num_batches"],
            latency_p50_ms=stats["latency_p50_ms"],
            latency_p99_ms=stats["latency_p99_ms"],
        )
    else:
        print(
            f"served {stats['num_queries']:.0f} queries in "
            f"{stats['num_batches']:.0f} batches "
            f"(p50 {stats['latency_p50_ms']:.3f} ms, "
            f"p99 {stats['latency_p99_ms']:.3f} ms)",
            file=sys.stderr,
        )
    return 0


def _run_serve_loop(
    args, server, manager, replay_mutations, serve_stdio, serve_tcp, logger=None
) -> int:
    from repro.errors import ReproError

    with server:
        if args.mutations is not None:
            try:
                with open(args.mutations, "r", encoding="utf-8") as handle:
                    counts = replay_mutations(server, handle)
            except (OSError, ValueError, ReproError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            if logger is not None:
                logger.event(
                    "mutations_replayed", path=args.mutations,
                    version=manager.version, **counts,
                )
            else:
                print(
                    f"replayed {args.mutations}: {counts['added']} insertions, "
                    f"{counts['removed']} deletions, {counts['published']} "
                    f"publishes (now at version {manager.version})",
                    file=sys.stderr,
                )
        if args.port is None:
            if logger is not None:
                logger.event("listening", transport="stdio")
            else:
                print(
                    "reading queries from stdin ('s t' or 's,t' per line; "
                    "add/remove a b and publish to mutate; STATS for metrics; "
                    "TRACES for recent traces; QUIT to exit)",
                    file=sys.stderr,
                )
            serve_stdio(server)
        else:
            tcp = serve_tcp(server, args.host, args.port)
            host, port = tcp.server_address[:2]
            if logger is not None:
                logger.event("listening", host=host, port=port, frontend="threaded")
            else:
                print(f"listening on {host}:{port}", file=sys.stderr)
            try:
                tcp.serve_forever()
            except KeyboardInterrupt:  # pragma: no cover - interactive only
                pass
            finally:
                tcp.shutdown()
                tcp.server_close()
        stats = server.metrics_snapshot()
        if logger is not None:
            logger.event(
                "serve_done",
                num_queries=stats["num_queries"],
                num_batches=stats["num_batches"],
                latency_p50_ms=stats["latency_p50_ms"],
                latency_p99_ms=stats["latency_p99_ms"],
            )
        else:
            print(
                f"served {stats['num_queries']:.0f} queries in "
                f"{stats['num_batches']:.0f} batches "
                f"(p50 {stats['latency_p50_ms']:.3f} ms, "
                f"p99 {stats['latency_p99_ms']:.3f} ms)",
                file=sys.stderr,
            )
    return 0


def _command_datasets(args: argparse.Namespace) -> int:
    from repro.datasets.registry import get_dataset, list_datasets

    print(f"{'name':12s} {'type':9s} {'class':6s} {'paper |V|':>12s} {'paper |E|':>13s}  description")
    for name in list_datasets(args.size_class):
        spec = get_dataset(name)
        print(
            f"{spec.name:12s} {spec.network_type:9s} {spec.size_class:6s} "
            f"{spec.paper_vertices:12,d} {spec.paper_edges:13,d}  {spec.description}"
        )
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    from repro import obs

    if args.bench_command == "list":
        for suite in obs.list_suites():
            print(f"{suite.name:16s} {suite.description}")
        return 0

    if args.bench_command == "run":
        if args.repeat < 1:
            print("error: --repeat must be >= 1", file=sys.stderr)
            return 2
        try:
            results = obs.run_suites(
                args.suite,
                smoke=args.smoke,
                repeat=args.repeat,
                out_dir=args.out,
                echo=print,
            )
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        total = sum(len(result.metrics) for result in results)
        print(f"[bench] {len(results)} suite(s), {total} metrics -> {args.out}")
        return 0

    if args.bench_command == "compare":
        tolerance = obs.compare.DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
        try:
            comparisons = obs.compare_paths(
                args.baseline, args.current, tolerance=tolerance
            )
        except (OSError, obs.SchemaError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(obs.format_comparisons(comparisons, verbose=args.verbose))
        return 1 if obs.has_regressions(comparisons) else 0

    if args.bench_command == "report":
        try:
            history = obs.load_history(args.history)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not history:
            print(f"no readable BENCH_*.json files under {args.history}", file=sys.stderr)
            return 2
        print(obs.format_trend(history))
        return 0

    if args.bench_command == "scrape":
        try:
            result = obs.scrape_url(args.url, suite=args.suite)
        except (OSError, obs.SchemaError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.out:
            path = obs.write_result(result, args.out)
            print(f"[bench] wrote {path} ({len(result.metrics)} metrics)")
        else:
            print(result.to_json(), end="")
        return 0

    raise ValueError(f"unknown bench command {args.bench_command!r}")  # pragma: no cover


def _command_experiment(args: argparse.Namespace) -> int:
    from repro import experiments as exp

    csv_rows = None
    if args.name == "table1":
        rows = exp.run_table1(args.datasets, num_queries=args.num_queries, seed=args.seed)
        print(exp.format_table1(rows))
        csv_rows = rows
    elif args.name == "table3":
        measurements = exp.run_table3(
            args.datasets,
            num_queries=args.num_queries,
            include_baselines=not args.no_baselines,
            seed=args.seed,
        )
        print(exp.format_table3(measurements))
        csv_rows = [m.as_dict() for m in measurements]
    elif args.name == "table4":
        rows = exp.run_table4(args.datasets, seed=args.seed)
        print(exp.format_table4(rows))
        csv_rows = rows
    elif args.name == "table5":
        rows = exp.run_table5(args.datasets, seed=args.seed)
        print(exp.format_table5(rows))
        csv_rows = rows
    elif args.name == "figure2":
        degrees = exp.run_figure2_degrees(args.datasets)
        distances = exp.run_figure2_distances(args.datasets, seed=args.seed)
        print(exp.format_figure2(degrees, distances))
    elif args.name == "figure3":
        profiles = exp.run_figure3(args.datasets, seed=args.seed)
        print(exp.format_figure3(profiles))
    elif args.name == "figure4":
        curves = exp.run_figure4(args.datasets, num_pairs=args.num_queries, seed=args.seed)
        print(exp.format_figure4(curves))
    elif args.name == "figure5":
        points = exp.run_figure5(
            args.datasets, num_queries=args.num_queries, seed=args.seed
        )
        print(exp.format_figure5(points))
        csv_rows = [p.as_dict() for p in points]
    elif args.name == "ablation-ordering":
        rows = exp.ordering_ablation(args.datasets, seed=args.seed)
        print(exp.format_ablation(rows, "Ablation: vertex ordering strategies"))
        csv_rows = rows
    elif args.name == "ablation-pruning":
        from repro.datasets.registry import load_dataset

        dataset = (args.datasets or ["gnutella"])[0]
        rows = exp.pruning_ablation(load_dataset(dataset), seed=args.seed)
        print(exp.format_ablation(rows, f"Ablation: pruning on/off ({dataset})"))
        csv_rows = rows
    elif args.name == "ablation-theorem43":
        dataset = (args.datasets or ["epinions"])[0]
        rows = exp.theorem43_check(
            dataset, num_pairs=args.num_queries, seed=args.seed
        )
        print(exp.format_ablation(rows, "Ablation: Theorem 4.3 label-size bound"))
        csv_rows = rows
    else:  # pragma: no cover - argparse prevents this
        raise ValueError(f"unknown experiment {args.name}")

    if args.csv and csv_rows:
        exp.write_csv(csv_rows, args.csv)
        print(f"\nwrote {len(csv_rows)} rows to {args.csv}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-pll`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "build":
        return _command_build(args)
    if args.command == "query":
        return _command_query(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "datasets":
        return _command_datasets(args)
    if args.command == "bench":
        return _command_bench(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "lint":
        return run_lint_command(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Incremental construction of :class:`~repro.graph.csr.Graph` objects.

:class:`GraphBuilder` accepts edges with arbitrary hashable vertex labels
(user names, URLs, compound identifiers, ...) and produces a dense-id CSR
graph plus the label <-> id mapping.  It is the ingestion point used by the
edge-list readers in :mod:`repro.graph.io` and by the example applications.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import EdgeError
from repro.graph.csr import Graph

__all__ = ["GraphBuilder", "VertexLabeling"]


class VertexLabeling:
    """Bidirectional mapping between external vertex labels and dense ids."""

    def __init__(self) -> None:
        self._label_to_id: Dict[Hashable, int] = {}
        self._id_to_label: List[Hashable] = []

    def __len__(self) -> int:
        return len(self._id_to_label)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._label_to_id

    def add(self, label: Hashable) -> int:
        """Return the id for ``label``, allocating a new one if unseen."""
        existing = self._label_to_id.get(label)
        if existing is not None:
            return existing
        new_id = len(self._id_to_label)
        self._label_to_id[label] = new_id
        self._id_to_label.append(label)
        return new_id

    def id_of(self, label: Hashable) -> int:
        """Id of a known label.

        Raises
        ------
        KeyError
            If the label has never been added.
        """
        return self._label_to_id[label]

    def label_of(self, vertex_id: int) -> Hashable:
        """External label of a dense vertex id."""
        return self._id_to_label[vertex_id]

    def labels(self) -> List[Hashable]:
        """All labels in id order."""
        return list(self._id_to_label)


class GraphBuilder:
    """Accumulate edges and produce an immutable :class:`Graph`.

    Parameters
    ----------
    directed:
        Whether the resulting graph is directed.
    weighted:
        Whether edges carry weights.  Adding a weighted edge to an unweighted
        builder (or vice versa) raises :class:`~repro.errors.EdgeError` to
        catch silent data corruption early.

    Examples
    --------
    >>> builder = GraphBuilder()
    >>> builder.add_edge("alice", "bob")
    >>> builder.add_edge("bob", "carol")
    >>> graph, labeling = builder.build()
    >>> graph.num_vertices, graph.num_edges
    (3, 2)
    >>> labeling.label_of(0)
    'alice'
    """

    def __init__(self, *, directed: bool = False, weighted: bool = False) -> None:
        self._directed = directed
        self._weighted = weighted
        self._labeling = VertexLabeling()
        self._edges: List[Tuple[int, int]] = []
        self._weights: List[float] = []

    @property
    def directed(self) -> bool:
        """Whether the graph under construction is directed."""
        return self._directed

    @property
    def weighted(self) -> bool:
        """Whether the graph under construction is weighted."""
        return self._weighted

    @property
    def num_vertices(self) -> int:
        """Number of distinct vertex labels seen so far."""
        return len(self._labeling)

    @property
    def num_edge_records(self) -> int:
        """Number of edge records added (before deduplication)."""
        return len(self._edges)

    def add_vertex(self, label: Hashable) -> int:
        """Register a vertex (possibly isolated) and return its dense id."""
        return self._labeling.add(label)

    def add_edge(
        self, u: Hashable, v: Hashable, weight: Optional[float] = None
    ) -> None:
        """Add one edge between labels ``u`` and ``v``.

        Self loops are accepted here and silently dropped by the graph
        constructor, matching how the paper treats its raw datasets.
        """
        if self._weighted:
            if weight is None:
                raise EdgeError(
                    "builder is weighted; every edge needs an explicit weight"
                )
            if weight < 0:
                raise EdgeError(f"edge weights must be non-negative, got {weight}")
        elif weight is not None:
            raise EdgeError("builder is unweighted but an edge weight was supplied")
        uid = self._labeling.add(u)
        vid = self._labeling.add(v)
        self._edges.append((uid, vid))
        if self._weighted:
            self._weights.append(float(weight))

    def add_edges(
        self,
        edges: Iterable[Tuple[Hashable, Hashable]],
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        """Add many edges at once; ``weights`` must align with ``edges`` if given."""
        if weights is None:
            for u, v in edges:
                self.add_edge(u, v)
            return
        edge_list = list(edges)
        if len(edge_list) != len(weights):
            raise EdgeError(
                f"{len(edge_list)} edges but {len(weights)} weights supplied"
            )
        for (u, v), w in zip(edge_list, weights):
            self.add_edge(u, v, w)

    def build(self) -> Tuple[Graph, VertexLabeling]:
        """Produce the immutable graph and the label mapping."""
        graph = Graph(
            len(self._labeling),
            self._edges,
            directed=self._directed,
            weights=self._weights if self._weighted else None,
        )
        return graph, self._labeling

"""Connectivity: connected components and largest-component extraction.

The paper treats every dataset as an undirected, unweighted graph and queries
are meaningful within connected components (disconnected pairs answer
infinity).  The experiment harness extracts the largest connected component of
each generated network so that random query pairs are almost always finite,
matching how the evaluation datasets behave (their giant components contain
nearly all vertices).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.graph.csr import Graph
from repro.graph.traversal import UNREACHABLE, multi_source_bfs

__all__ = [
    "connected_components",
    "largest_connected_component",
    "is_connected",
    "component_sizes",
]


def connected_components(graph: Graph) -> np.ndarray:
    """Label each vertex with a component id (weakly connected if directed).

    Returns
    -------
    numpy.ndarray
        ``int64`` array of length ``n``; components are numbered ``0, 1, ...``
        in order of discovery of their lowest-id vertex.
    """
    n = graph.num_vertices
    labels = np.full(n, -1, dtype=np.int64)
    current = 0
    # For directed graphs, weak connectivity needs both edge directions.
    undirected = graph if not graph.directed else graph.to_undirected()
    for start in range(n):
        if labels[start] >= 0:
            continue
        dist = multi_source_bfs(undirected, [start])
        members = np.flatnonzero(dist != UNREACHABLE)
        labels[members] = current
        current += 1
    return labels


def component_sizes(graph: Graph) -> List[int]:
    """Sizes of all (weakly) connected components, largest first."""
    labels = connected_components(graph)
    counts = np.bincount(labels)
    return sorted((int(c) for c in counts), reverse=True)


def is_connected(graph: Graph) -> bool:
    """Whether the graph is (weakly) connected; the empty graph counts as connected."""
    if graph.num_vertices == 0:
        return True
    labels = connected_components(graph)
    return int(labels.max()) == 0


def largest_connected_component(graph: Graph) -> Tuple[Graph, np.ndarray]:
    """Induced subgraph on the largest (weakly) connected component.

    Returns
    -------
    (subgraph, mapping):
        ``mapping[i]`` is the original vertex id of new vertex ``i``.
    """
    if graph.num_vertices == 0:
        return graph, np.empty(0, dtype=np.int64)
    labels = connected_components(graph)
    counts = np.bincount(labels)
    biggest = int(np.argmax(counts))
    members = np.flatnonzero(labels == biggest)
    return graph.subgraph(members)

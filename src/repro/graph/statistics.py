"""Descriptive network statistics used throughout the paper's evaluation.

Figure 2 of the paper plots, for every dataset, (a/b) the complementary
cumulative degree distribution on log-log axes and (c/d) the distribution of
distances over one million random vertex pairs.  This module computes both,
plus a handful of summary statistics (average degree, effective diameter,
average distance) used by the dataset registry and the reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import Graph
from repro.graph.traversal import UNREACHABLE, bfs_distances

__all__ = [
    "degree_histogram",
    "degree_ccdf",
    "sample_pair_distances",
    "distance_distribution",
    "GraphSummary",
    "summarize_graph",
]


def degree_histogram(graph: Graph) -> np.ndarray:
    """Histogram ``h`` with ``h[d]`` = number of vertices of degree ``d``."""
    degrees = graph.total_degrees() if graph.directed else graph.degrees()
    if degrees.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degrees)


def degree_ccdf(graph: Graph) -> Tuple[np.ndarray, np.ndarray]:
    """Complementary cumulative degree distribution (Figure 2a/2b).

    Returns
    -------
    (degrees, counts):
        ``counts[i]`` is the number of vertices whose degree is at least
        ``degrees[i]``.  Plotted on log-log axes this is the curve the paper
        shows for each dataset.
    """
    histogram = degree_histogram(graph)
    degrees = np.flatnonzero(histogram)
    if degrees.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    # Cumulative count of vertices with degree >= d, restricted to observed degrees.
    suffix_sums = np.cumsum(histogram[::-1])[::-1]
    return degrees.astype(np.int64), suffix_sums[degrees].astype(np.int64)


def sample_pair_distances(
    graph: Graph,
    num_pairs: int,
    *,
    seed: int = 0,
    connected_only: bool = False,
    max_attempts_factor: int = 20,
) -> np.ndarray:
    """Distances between random vertex pairs (the workload behind Figure 2c/2d).

    Parameters
    ----------
    graph:
        Input graph.
    num_pairs:
        Number of pairs to sample.
    seed:
        Seed for reproducible sampling.
    connected_only:
        If true, resample until a finite-distance pair is found (up to
        ``max_attempts_factor * num_pairs`` attempts overall).
    max_attempts_factor:
        Bound on resampling effort when ``connected_only`` is requested.

    Returns
    -------
    numpy.ndarray
        ``float64`` distances; disconnected pairs are ``inf`` (only possible
        when ``connected_only`` is false).

    Notes
    -----
    To avoid ``num_pairs`` full BFSs the sampler groups pairs by source
    vertex: it samples sources (with multiplicity), performs one BFS per
    distinct source and reads off the distances of that source's targets.
    """
    n = graph.num_vertices
    if n < 2:
        raise GraphError("need at least two vertices to sample pairs")
    if num_pairs <= 0:
        raise GraphError("num_pairs must be positive")
    rng = np.random.default_rng(seed)

    results: List[float] = []
    attempts = 0
    max_attempts = max_attempts_factor * num_pairs
    while len(results) < num_pairs and attempts < max_attempts:
        remaining = num_pairs - len(results)
        sources = rng.integers(0, n, size=remaining)
        targets = rng.integers(0, n, size=remaining)
        attempts += remaining
        # One BFS per distinct source covers all its sampled targets.
        order = np.argsort(sources, kind="stable")
        sources, targets = sources[order], targets[order]
        boundaries = np.flatnonzero(np.diff(sources)) + 1
        for chunk_sources, chunk_targets in zip(
            np.split(sources, boundaries), np.split(targets, boundaries)
        ):
            source = int(chunk_sources[0])
            dist = bfs_distances(graph, source)
            for target in chunk_targets:
                target = int(target)
                if target == source:
                    if not connected_only:
                        results.append(0.0)
                    continue
                d = dist[target]
                if d == UNREACHABLE:
                    if not connected_only:
                        results.append(float("inf"))
                else:
                    results.append(float(d))
    return np.asarray(results[:num_pairs], dtype=np.float64)


def distance_distribution(
    graph: Graph, num_pairs: int = 10_000, *, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Fraction of sampled pairs at each distance (Figure 2c/2d).

    Returns
    -------
    (distances, fractions):
        ``fractions[i]`` is the share of *finite-distance* sampled pairs whose
        distance equals ``distances[i]``.
    """
    samples = sample_pair_distances(graph, num_pairs, seed=seed)
    finite = samples[np.isfinite(samples)].astype(np.int64)
    if finite.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64)
    histogram = np.bincount(finite)
    distances = np.flatnonzero(histogram)
    fractions = histogram[distances] / finite.size
    return distances.astype(np.int64), fractions


@dataclass
class GraphSummary:
    """Summary statistics of one network, as reported in Table 4 and Figure 2."""

    num_vertices: int
    num_edges: int
    directed: bool
    weighted: bool
    average_degree: float
    max_degree: int
    average_distance: float
    effective_diameter: float
    sampled_diameter: int
    fraction_reachable: float
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary view, convenient for CSV reporting."""
        base = {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "directed": int(self.directed),
            "weighted": int(self.weighted),
            "average_degree": self.average_degree,
            "max_degree": self.max_degree,
            "average_distance": self.average_distance,
            "effective_diameter": self.effective_diameter,
            "sampled_diameter": self.sampled_diameter,
            "fraction_reachable": self.fraction_reachable,
        }
        base.update(self.extra)
        return base


def summarize_graph(
    graph: Graph,
    *,
    num_pairs: int = 2_000,
    seed: int = 0,
    percentile_for_effective_diameter: float = 90.0,
) -> GraphSummary:
    """Compute the summary statistics reported for every dataset.

    The effective diameter is the ``percentile_for_effective_diameter``-th
    percentile of the sampled distance distribution, the conventional
    small-world statistic (defaults to the 90th percentile).
    """
    degrees = graph.degrees()
    samples = sample_pair_distances(graph, num_pairs, seed=seed)
    finite = samples[np.isfinite(samples)]
    average_distance = float(finite.mean()) if finite.size else float("inf")
    effective_diameter = (
        float(np.percentile(finite, percentile_for_effective_diameter))
        if finite.size
        else float("inf")
    )
    sampled_diameter = int(finite.max()) if finite.size else 0
    return GraphSummary(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        directed=graph.directed,
        weighted=graph.weighted,
        average_degree=float(degrees.mean()) if degrees.size else 0.0,
        max_degree=int(degrees.max()) if degrees.size else 0,
        average_distance=average_distance,
        effective_diameter=effective_diameter,
        sampled_diameter=sampled_diameter,
        fraction_reachable=float(finite.size) / samples.size if samples.size else 0.0,
    )

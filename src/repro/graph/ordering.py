"""Vertex ordering strategies for pruned landmark labeling (paper Section 4.4).

The order in which pruned BFSs are performed is the single most important
tuning knob of the method: processing highly central vertices first lets later
searches prune aggressively.  The paper proposes and evaluates three
strategies (Table 5):

``degree``
    Vertices in decreasing order of degree (the default everywhere).
``closeness``
    Vertices in decreasing order of *approximate* closeness centrality,
    estimated by BFSs from a small random sample of vertices.
``random``
    A uniformly random permutation, used as a baseline to demonstrate how much
    the centrality-aware orders matter.

This module additionally implements ``degree_tiebreak_random`` (degree order
with randomised ties, useful for variance studies) as a small extension.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import Graph
from repro.graph.traversal import UNREACHABLE, bfs_distances

__all__ = [
    "ORDERING_STRATEGIES",
    "degree_order",
    "closeness_order",
    "random_order",
    "degree_tiebreak_random_order",
    "compute_order",
    "rank_from_order",
]


def degree_order(graph: Graph, *, seed: Optional[int] = None) -> np.ndarray:
    """Vertices sorted by decreasing degree; ties broken by vertex id.

    For directed graphs the sum of in- and out-degree is used, following the
    intuition that a good hub should be reachable in both directions.
    """
    degrees = graph.total_degrees()
    # argsort is ascending; negate degrees for a descending, id-stable order.
    return np.argsort(-degrees, kind="stable").astype(np.int64)


def degree_tiebreak_random_order(graph: Graph, *, seed: Optional[int] = 0) -> np.ndarray:
    """Degree order with ties broken uniformly at random (seeded)."""
    rng = np.random.default_rng(seed)
    degrees = graph.total_degrees().astype(np.float64)
    jitter = rng.random(graph.num_vertices)
    keys = degrees + jitter * 0.5  # jitter < 1 never reorders distinct degrees
    return np.argsort(-keys, kind="stable").astype(np.int64)


def closeness_order(
    graph: Graph, *, seed: Optional[int] = 0, num_samples: int = 32
) -> np.ndarray:
    """Vertices sorted by decreasing approximate closeness centrality.

    Exact closeness needs ``O(nm)`` time, so—exactly as the paper suggests—we
    estimate it from BFSs out of ``num_samples`` randomly chosen seed vertices:
    the centrality estimate of ``v`` is the inverse of its average distance to
    the sampled vertices (unreachable samples contribute a large penalty).
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    rng = np.random.default_rng(seed)
    num_samples = min(num_samples, n)
    samples = rng.choice(n, size=num_samples, replace=False)

    # Penalty distance for unreachable pairs: larger than any real distance.
    penalty = float(n)
    total = np.zeros(n, dtype=np.float64)
    for source in samples:
        dist = bfs_distances(graph, int(source)).astype(np.float64)
        dist[dist == UNREACHABLE] = penalty
        total += dist
    average = total / num_samples
    closeness = 1.0 / (average + 1.0)
    return np.argsort(-closeness, kind="stable").astype(np.int64)


def random_order(graph: Graph, *, seed: Optional[int] = 0) -> np.ndarray:
    """A uniformly random permutation of the vertices (seeded)."""
    rng = np.random.default_rng(seed)
    return rng.permutation(graph.num_vertices).astype(np.int64)


OrderingFunction = Callable[..., np.ndarray]

#: Registry of named ordering strategies, keyed by the names used in the paper.
ORDERING_STRATEGIES: Dict[str, OrderingFunction] = {
    "degree": degree_order,
    "closeness": closeness_order,
    "random": random_order,
    "degree_tiebreak_random": degree_tiebreak_random_order,
}


def compute_order(
    graph: Graph,
    strategy: str = "degree",
    *,
    seed: Optional[int] = 0,
    **kwargs,
) -> np.ndarray:
    """Compute a processing order with a named strategy.

    Parameters
    ----------
    graph:
        Input graph.
    strategy:
        One of :data:`ORDERING_STRATEGIES` (``"degree"``, ``"closeness"``,
        ``"random"``, ``"degree_tiebreak_random"``).
    seed:
        Seed for randomised strategies (ignored by ``degree``).
    kwargs:
        Extra strategy-specific options (e.g. ``num_samples`` for closeness).

    Returns
    -------
    numpy.ndarray
        Vertex ids in processing order: position 0 is processed first.
    """
    try:
        function = ORDERING_STRATEGIES[strategy]
    except KeyError:
        known = ", ".join(sorted(ORDERING_STRATEGIES))
        raise GraphError(
            f"unknown ordering strategy {strategy!r}; known strategies: {known}"
        ) from None
    return function(graph, seed=seed, **kwargs)


def rank_from_order(order: np.ndarray) -> np.ndarray:
    """Inverse permutation: ``rank[v]`` is the position of vertex ``v`` in ``order``."""
    order = np.asarray(order, dtype=np.int64)
    rank = np.empty_like(order)
    rank[order] = np.arange(order.shape[0])
    return rank

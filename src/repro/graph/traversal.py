"""Graph traversals: BFS, multi-source BFS, bidirectional BFS and Dijkstra.

These routines are the measurement baseline in the paper ("BFS" column of
Table 3) and the building blocks of several other components (closeness
sampling for vertex ordering, distance-distribution statistics for Figure 2,
the APSP test oracle).  The breadth-first searches are frontier-based and
vectorised with numpy so that the Python overhead is paid per *level* rather
than per *edge*, which is what makes the pure-Python reproduction tractable.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import Graph

__all__ = [
    "UNREACHABLE",
    "bfs_distances",
    "bfs_tree",
    "multi_source_bfs",
    "bidirectional_bfs_distance",
    "dijkstra_distances",
    "dijkstra_tree",
    "bfs_distance",
    "eccentricity",
]

#: Sentinel distance for unreachable vertices in integer distance arrays.
UNREACHABLE = -1


def _frontier_neighbors(
    indptr: np.ndarray, adj: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """All neighbours of the frontier vertices, concatenated (with duplicates)."""
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=adj.dtype)
    # For each output slot, compute its index into ``adj``:
    #   base offset of its frontier vertex + position within that vertex's list.
    base = np.repeat(starts, counts)
    within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    return adj[base + within]


def bfs_distances(
    graph: Graph, source: int, *, reverse: bool = False
) -> np.ndarray:
    """Hop distances from ``source`` to every vertex.

    Parameters
    ----------
    graph:
        Input graph (edge weights, if any, are ignored — every edge counts 1).
    source:
        Root vertex.
    reverse:
        For directed graphs, traverse incoming edges instead of outgoing ones
        (i.e. compute distances *to* ``source``).

    Returns
    -------
    numpy.ndarray
        ``int32`` array of length ``n``; unreachable vertices hold
        :data:`UNREACHABLE`.
    """
    n = graph.num_vertices
    if source < 0 or source >= n:
        raise GraphError(f"source {source} out of range for {n} vertices")
    indptr = graph.rev_indptr if reverse else graph.indptr
    adj = graph.rev_adjacency if reverse else graph.adjacency

    dist = np.full(n, UNREACHABLE, dtype=np.int32)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        neighbors = _frontier_neighbors(indptr, adj, frontier)
        if neighbors.size == 0:
            break
        fresh = neighbors[dist[neighbors] == UNREACHABLE]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh).astype(np.int64)
        dist[frontier] = level
    return dist


def bfs_tree(
    graph: Graph, source: int, *, reverse: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """BFS distances and parent pointers.

    Returns
    -------
    (dist, parent):
        ``parent[v]`` is the predecessor of ``v`` on a shortest path from the
        source (``-1`` for the source itself and for unreachable vertices).
    """
    n = graph.num_vertices
    if source < 0 or source >= n:
        raise GraphError(f"source {source} out of range for {n} vertices")
    indptr = graph.rev_indptr if reverse else graph.indptr
    adj = graph.rev_adjacency if reverse else graph.adjacency

    dist = np.full(n, UNREACHABLE, dtype=np.int32)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        base = np.repeat(starts, counts)
        within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        neighbors = adj[base + within]
        origins = np.repeat(frontier, counts)

        unseen = dist[neighbors] == UNREACHABLE
        neighbors = neighbors[unseen]
        origins = origins[unseen]
        if neighbors.size == 0:
            break
        # Keep the first occurrence of each newly discovered vertex so that the
        # parent pointer is deterministic (lowest-id frontier vertex wins).
        fresh, first_idx = np.unique(neighbors, return_index=True)
        dist[fresh] = level
        parent[fresh] = origins[first_idx]
        frontier = fresh.astype(np.int64)
    return dist, parent


def multi_source_bfs(
    graph: Graph, sources: Sequence[int], *, reverse: bool = False
) -> np.ndarray:
    """Distance from the *nearest* of several sources to every vertex."""
    n = graph.num_vertices
    source_array = np.asarray(list(sources), dtype=np.int64)
    if source_array.size == 0:
        return np.full(n, UNREACHABLE, dtype=np.int32)
    if source_array.min() < 0 or source_array.max() >= n:
        raise GraphError("multi_source_bfs: a source vertex is out of range")
    indptr = graph.rev_indptr if reverse else graph.indptr
    adj = graph.rev_adjacency if reverse else graph.adjacency

    dist = np.full(n, UNREACHABLE, dtype=np.int32)
    frontier = np.unique(source_array)
    dist[frontier] = 0
    level = 0
    while frontier.size:
        level += 1
        neighbors = _frontier_neighbors(indptr, adj, frontier)
        if neighbors.size == 0:
            break
        fresh = neighbors[dist[neighbors] == UNREACHABLE]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh).astype(np.int64)
        dist[frontier] = level
    return dist


def bfs_distance(graph: Graph, source: int, target: int) -> float:
    """Distance between one pair of vertices by plain BFS (inf if unreachable)."""
    dist = bfs_distances(graph, source)
    d = dist[target]
    return float("inf") if d == UNREACHABLE else float(d)


def bidirectional_bfs_distance(graph: Graph, source: int, target: int) -> float:
    """Distance between one pair by alternating BFS from both endpoints.

    This is the realistic online baseline for distance queries on undirected
    graphs: it expands the smaller frontier each round, meeting in the middle.
    For directed graphs the forward search uses out-edges and the backward
    search uses in-edges.

    Returns
    -------
    float
        The exact hop distance, or ``inf`` if the vertices are disconnected.
    """
    n = graph.num_vertices
    if source < 0 or source >= n or target < 0 or target >= n:
        raise GraphError("bidirectional_bfs_distance: endpoint out of range")
    if source == target:
        return 0.0

    dist_fwd = np.full(n, UNREACHABLE, dtype=np.int32)
    dist_bwd = np.full(n, UNREACHABLE, dtype=np.int32)
    dist_fwd[source] = 0
    dist_bwd[target] = 0
    frontier_fwd = np.array([source], dtype=np.int64)
    frontier_bwd = np.array([target], dtype=np.int64)
    best = np.inf

    while frontier_fwd.size and frontier_bwd.size:
        # Expand the cheaper side (by total adjacency volume).
        fwd_volume = int(
            (graph.indptr[frontier_fwd + 1] - graph.indptr[frontier_fwd]).sum()
        )
        bwd_volume = int(
            (graph.rev_indptr[frontier_bwd + 1] - graph.rev_indptr[frontier_bwd]).sum()
        )
        expand_forward = fwd_volume <= bwd_volume
        if expand_forward:
            indptr, adj = graph.indptr, graph.adjacency
            dist_here, dist_there = dist_fwd, dist_bwd
            frontier = frontier_fwd
        else:
            indptr, adj = graph.rev_indptr, graph.rev_adjacency
            dist_here, dist_there = dist_bwd, dist_fwd
            frontier = frontier_bwd

        level = int(dist_here[frontier[0]]) + 1
        neighbors = _frontier_neighbors(indptr, adj, frontier)
        if neighbors.size:
            fresh = np.unique(neighbors[dist_here[neighbors] == UNREACHABLE])
        else:
            fresh = np.empty(0, dtype=np.int64)
        if fresh.size:
            dist_here[fresh] = level
            met = fresh[dist_there[fresh] != UNREACHABLE]
            if met.size:
                best = min(best, float((dist_fwd[met] + dist_bwd[met]).min()))
        frontier = fresh.astype(np.int64)
        if expand_forward:
            frontier_fwd = frontier
        else:
            frontier_bwd = frontier

        # Termination: once the sum of completed radii reaches the best meeting
        # distance, no shorter path can exist.
        if np.isfinite(best):
            radius_fwd = int(dist_fwd[frontier_fwd[0]]) if frontier_fwd.size else 0
            radius_bwd = int(dist_bwd[frontier_bwd[0]]) if frontier_bwd.size else 0
            if radius_fwd + radius_bwd >= best:
                return best
    return best


def dijkstra_distances(
    graph: Graph, source: int, *, reverse: bool = False
) -> np.ndarray:
    """Weighted shortest-path distances from ``source`` (``inf`` if unreachable)."""
    n = graph.num_vertices
    if source < 0 or source >= n:
        raise GraphError(f"source {source} out of range for {n} vertices")
    indptr = graph.rev_indptr if reverse else graph.indptr
    adj = graph.rev_adjacency if reverse else graph.adjacency
    if reverse:
        weights = graph.rev_weights
    else:
        weights = graph.weights
    if weights is None:
        weights = np.ones(adj.shape[0], dtype=np.float64)

    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    done = np.zeros(n, dtype=bool)
    heap: list[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        start, end = indptr[u], indptr[u + 1]
        for idx in range(start, end):
            v = int(adj[idx])
            candidate = d + float(weights[idx])
            if candidate < dist[v]:
                dist[v] = candidate
                heapq.heappush(heap, (candidate, v))
    return dist


def dijkstra_tree(
    graph: Graph, source: int, *, reverse: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """Weighted distances and parent pointers from ``source``."""
    n = graph.num_vertices
    if source < 0 or source >= n:
        raise GraphError(f"source {source} out of range for {n} vertices")
    indptr = graph.rev_indptr if reverse else graph.indptr
    adj = graph.rev_adjacency if reverse else graph.adjacency
    weights = graph.rev_weights if reverse else graph.weights
    if weights is None:
        weights = np.ones(adj.shape[0], dtype=np.float64)

    dist = np.full(n, np.inf, dtype=np.float64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0.0
    done = np.zeros(n, dtype=bool)
    heap: list[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        start, end = indptr[u], indptr[u + 1]
        for idx in range(start, end):
            v = int(adj[idx])
            candidate = d + float(weights[idx])
            if candidate < dist[v]:
                dist[v] = candidate
                parent[v] = u
                heapq.heappush(heap, (candidate, v))
    return dist, parent


def eccentricity(graph: Graph, vertices: Optional[Iterable[int]] = None) -> np.ndarray:
    """Eccentricity (max finite distance) of the given vertices (default: all)."""
    targets = (
        np.arange(graph.num_vertices)
        if vertices is None
        else np.asarray(list(vertices), dtype=np.int64)
    )
    result = np.zeros(targets.shape[0], dtype=np.int32)
    for i, v in enumerate(targets):
        dist = bfs_distances(graph, int(v))
        reachable = dist[dist != UNREACHABLE]
        result[i] = int(reachable.max()) if reachable.size else 0
    return result

"""Compressed sparse row (CSR) graph representation.

The whole library works on top of :class:`Graph`, an immutable adjacency
structure stored in flat numpy arrays.  This mirrors the memory layout used by
the original C++ implementation of pruned landmark labeling: the neighbours of
vertex ``v`` occupy the contiguous slice ``adj[indptr[v]:indptr[v + 1]]``,
which keeps breadth-first searches cache friendly and lets the indexing code
use vectorised numpy operations on neighbour slices.

Vertices are integers ``0 .. n - 1``.  External identifiers (user names, URLs,
compound ids, ...) are handled by :class:`repro.graph.builder.GraphBuilder`,
which maps arbitrary hashable labels onto this dense id space.

Directed graphs keep two CSR structures, one for out-neighbours and one for
in-neighbours, because the directed variant of pruned landmark labeling
(Section 6 of the paper) performs BFSs in both directions.  Weighted graphs
store a parallel ``float64`` weight array per direction.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EdgeError, GraphError, VertexError

__all__ = ["Graph"]


def _as_edge_array(edges: Iterable[Tuple[int, int]]) -> np.ndarray:
    """Convert an iterable of ``(u, v)`` pairs to an ``(m, 2)`` int64 array."""
    array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if array.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if array.ndim != 2 or array.shape[1] != 2:
        raise EdgeError(
            "edges must be an iterable of (u, v) pairs; got an array of shape "
            f"{array.shape}"
        )
    return array.astype(np.int64, copy=False)


def _build_csr(
    n: int,
    sources: np.ndarray,
    targets: np.ndarray,
    weights: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Build (indptr, adj, weights) with neighbour lists sorted by target id."""
    order = np.lexsort((targets, sources))
    sources = sources[order]
    targets = targets[order]
    if weights is not None:
        weights = weights[order]

    counts = np.bincount(sources, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, targets.astype(np.int32, copy=False), weights


class Graph:
    """An immutable graph in compressed sparse row form.

    Parameters
    ----------
    n:
        Number of vertices.  Vertices are ``0 .. n - 1``.
    edges:
        Iterable of ``(u, v)`` pairs.  Parallel edges and self loops are
        removed.  For undirected graphs each edge may be listed in either or
        both directions; it is stored once per direction internally.
    directed:
        Whether the graph is directed.  Undirected graphs symmetrise the edge
        set.
    weights:
        Optional sequence of edge weights aligned with ``edges``.  When
        omitted the graph is unweighted and all traversals count hops.

    Notes
    -----
    The constructor normalises the edge set (dedup, drop self loops, sort
    neighbour lists), so two graphs built from permutations of the same edge
    list compare equal structurally.
    """

    __slots__ = (
        "_n",
        "_m",
        "_directed",
        "_indptr",
        "_adj",
        "_weights",
        "_rev_indptr",
        "_rev_adj",
        "_rev_weights",
    )

    def __init__(
        self,
        n: int,
        edges: Iterable[Tuple[int, int]],
        *,
        directed: bool = False,
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        if n < 0:
            raise GraphError(f"number of vertices must be non-negative, got {n}")
        edge_array = _as_edge_array(edges)
        weight_array: Optional[np.ndarray] = None
        if weights is not None:
            weight_array = np.asarray(weights, dtype=np.float64)
            if weight_array.shape[0] != edge_array.shape[0]:
                raise EdgeError(
                    f"{edge_array.shape[0]} edges but {weight_array.shape[0]} weights"
                )
            if edge_array.shape[0] and np.any(weight_array < 0):
                raise EdgeError("edge weights must be non-negative")

        if edge_array.shape[0]:
            low = edge_array.min()
            high = edge_array.max()
            if low < 0 or high >= n:
                bad = int(low if low < 0 else high)
                raise VertexError(bad, n)

        self._n = int(n)
        self._directed = bool(directed)

        sources = edge_array[:, 0]
        targets = edge_array[:, 1]

        # Drop self loops: they never affect shortest-path distances.
        keep = sources != targets
        sources, targets = sources[keep], targets[keep]
        if weight_array is not None:
            weight_array = weight_array[keep]

        if not directed:
            # Symmetrise, then dedup on (min, max) pairs keeping the smallest weight.
            all_sources = np.concatenate([sources, targets])
            all_targets = np.concatenate([targets, sources])
            if weight_array is not None:
                all_weights = np.concatenate([weight_array, weight_array])
            else:
                all_weights = None
            sources, targets, weight_array = self._dedup(
                all_sources, all_targets, all_weights
            )
            self._m = int(sources.shape[0]) // 2
        else:
            sources, targets, weight_array = self._dedup(sources, targets, weight_array)
            self._m = int(sources.shape[0])

        self._indptr, self._adj, self._weights = _build_csr(
            self._n, sources, targets, weight_array
        )

        if directed:
            rev_weights = weight_array
            self._rev_indptr, self._rev_adj, self._rev_weights = _build_csr(
                self._n, targets, sources, rev_weights
            )
        else:
            self._rev_indptr = self._indptr
            self._rev_adj = self._adj
            self._rev_weights = self._weights

    @staticmethod
    def _dedup(
        sources: np.ndarray,
        targets: np.ndarray,
        weights: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Remove parallel edges; for weighted graphs keep the minimum weight."""
        if sources.shape[0] == 0:
            return sources, targets, weights
        if weights is None:
            keys = sources.astype(np.int64) * (targets.max() + 1 if targets.size else 1)
            keys = keys + targets
            _, unique_idx = np.unique(keys, return_index=True)
            unique_idx.sort()
            return sources[unique_idx], targets[unique_idx], None
        # Weighted: sort by (u, v, w) and keep the first (smallest weight) per pair.
        order = np.lexsort((weights, targets, sources))
        sources, targets, weights = sources[order], targets[order], weights[order]
        pair_change = np.ones(sources.shape[0], dtype=bool)
        pair_change[1:] = (sources[1:] != sources[:-1]) | (targets[1:] != targets[:-1])
        return sources[pair_change], targets[pair_change], weights[pair_change]

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of edges ``m`` (each undirected edge counted once)."""
        return self._m

    @property
    def directed(self) -> bool:
        """Whether the graph is directed."""
        return self._directed

    @property
    def weighted(self) -> bool:
        """Whether edges carry explicit weights."""
        return self._weights is not None

    @property
    def indptr(self) -> np.ndarray:
        """CSR row-pointer array of length ``n + 1`` (out-neighbours)."""
        return self._indptr

    @property
    def adjacency(self) -> np.ndarray:
        """Flat out-neighbour array of length ``indptr[-1]``."""
        return self._adj

    @property
    def weights(self) -> Optional[np.ndarray]:
        """Flat weight array aligned with :attr:`adjacency`, or ``None``."""
        return self._weights

    @property
    def rev_indptr(self) -> np.ndarray:
        """CSR row-pointer array for in-neighbours (same as out for undirected)."""
        return self._rev_indptr

    @property
    def rev_adjacency(self) -> np.ndarray:
        """Flat in-neighbour array (same as :attr:`adjacency` for undirected)."""
        return self._rev_adj

    @property
    def rev_weights(self) -> Optional[np.ndarray]:
        """Flat weight array aligned with :attr:`rev_adjacency`, or ``None``."""
        return self._rev_weights

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "directed" if self._directed else "undirected"
        weighted = "weighted" if self.weighted else "unweighted"
        return (
            f"Graph(n={self._n}, m={self._m}, {kind}, {weighted})"
        )

    # ------------------------------------------------------------------ #
    # Vertex / edge access
    # ------------------------------------------------------------------ #

    def _check_vertex(self, v: int) -> int:
        v = int(v)
        if v < 0 or v >= self._n:
            raise VertexError(v, self._n)
        return v

    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbours of ``v`` as a read-only numpy view, sorted by id."""
        v = self._check_vertex(v)
        return self._adj[self._indptr[v]: self._indptr[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """In-neighbours of ``v`` (identical to :meth:`neighbors` if undirected)."""
        v = self._check_vertex(v)
        return self._rev_adj[self._rev_indptr[v]: self._rev_indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Weights parallel to :meth:`neighbors`; all ones for unweighted graphs."""
        v = self._check_vertex(v)
        if self._weights is None:
            return np.ones(self.out_degree(v), dtype=np.float64)
        return self._weights[self._indptr[v]: self._indptr[v + 1]]

    def in_neighbor_weights(self, v: int) -> np.ndarray:
        """Weights parallel to :meth:`in_neighbors`."""
        v = self._check_vertex(v)
        if self._rev_weights is None:
            return np.ones(self.in_degree(v), dtype=np.float64)
        return self._rev_weights[self._rev_indptr[v]: self._rev_indptr[v + 1]]

    def degree(self, v: int) -> int:
        """Degree of ``v``; for directed graphs this is the out-degree."""
        return self.out_degree(v)

    def out_degree(self, v: int) -> int:
        """Number of out-neighbours of ``v``."""
        v = self._check_vertex(v)
        return int(self._indptr[v + 1] - self._indptr[v])

    def in_degree(self, v: int) -> int:
        """Number of in-neighbours of ``v``."""
        v = self._check_vertex(v)
        return int(self._rev_indptr[v + 1] - self._rev_indptr[v])

    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex as an int64 array."""
        return np.diff(self._indptr)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex as an int64 array."""
        return np.diff(self._rev_indptr)

    def total_degrees(self) -> np.ndarray:
        """In-degree plus out-degree (equals ``2 * degree`` for undirected)."""
        if not self._directed:
            return self.degrees()
        return self.degrees() + self.in_degrees()

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``u -> v`` exists (symmetric for undirected graphs)."""
        u = self._check_vertex(u)
        v = self._check_vertex(v)
        row = self.neighbors(u)
        pos = np.searchsorted(row, v)
        return bool(pos < row.shape[0] and row[pos] == v)

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``u -> v``; ``1.0`` for unweighted graphs.

        Raises
        ------
        EdgeError
            If the edge does not exist.
        """
        u = self._check_vertex(u)
        v = self._check_vertex(v)
        row = self.neighbors(u)
        pos = np.searchsorted(row, v)
        if pos >= row.shape[0] or row[pos] != v:
            raise EdgeError(f"edge ({u}, {v}) does not exist")
        if self._weights is None:
            return 1.0
        return float(self._weights[self._indptr[u] + pos])

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges.

        For undirected graphs each edge is yielded once with ``u <= v``; for
        directed graphs every arc ``(u, v)`` is yielded.
        """
        for u in range(self._n):
            for v in self.neighbors(u):
                v = int(v)
                if self._directed or u <= v:
                    yield (u, v)

    def edge_array(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` array (one row per undirected edge)."""
        result = np.empty((self._m, 2), dtype=np.int64)
        i = 0
        for u, v in self.edges():
            result[i, 0] = u
            result[i, 1] = v
            i += 1
        return result

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #

    def to_undirected(self) -> "Graph":
        """Return an undirected copy (no-op copy of an undirected graph)."""
        edges = [(u, v) for u, v in self.edges()]
        weights = (
            [self.edge_weight(u, v) for u, v in edges] if self.weighted else None
        )
        return Graph(self._n, edges, directed=False, weights=weights)

    def reverse(self) -> "Graph":
        """Return the graph with every arc reversed (self for undirected)."""
        if not self._directed:
            return self
        edges = [(v, u) for u, v in self.edges()]
        weights = (
            [self.edge_weight(u, v) for u, v in self.edges()]
            if self.weighted
            else None
        )
        return Graph(self._n, edges, directed=True, weights=weights)

    def subgraph(self, vertices: Sequence[int]) -> Tuple["Graph", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns
        -------
        (graph, mapping):
            ``graph`` has vertices relabelled ``0 .. len(vertices) - 1`` in the
            order given; ``mapping[i]`` is the original id of new vertex ``i``.
        """
        mapping = np.asarray(vertices, dtype=np.int64)
        if mapping.size and (mapping.min() < 0 or mapping.max() >= self._n):
            bad = int(mapping.min() if mapping.min() < 0 else mapping.max())
            raise VertexError(bad, self._n)
        if np.unique(mapping).shape[0] != mapping.shape[0]:
            raise GraphError("subgraph vertex list contains duplicates")
        inverse = np.full(self._n, -1, dtype=np.int64)
        inverse[mapping] = np.arange(mapping.shape[0])

        edges = []
        weights = [] if self.weighted else None
        for new_u, old_u in enumerate(mapping):
            for idx, old_v in enumerate(self.neighbors(int(old_u))):
                new_v = inverse[old_v]
                if new_v < 0:
                    continue
                if not self._directed and new_u > new_v:
                    continue
                edges.append((new_u, int(new_v)))
                if weights is not None:
                    weights.append(
                        float(self._weights[self._indptr[old_u] + idx])
                    )
        return (
            Graph(
                mapping.shape[0],
                edges,
                directed=self._directed,
                weights=weights,
            ),
            mapping,
        )

    def relabel(self, new_ids: Sequence[int]) -> "Graph":
        """Return a copy where old vertex ``v`` becomes ``new_ids[v]``.

        ``new_ids`` must be a permutation of ``0 .. n - 1``.
        """
        perm = np.asarray(new_ids, dtype=np.int64)
        if perm.shape[0] != self._n or np.any(np.sort(perm) != np.arange(self._n)):
            raise GraphError("relabel requires a permutation of all vertex ids")
        edges = []
        weights = [] if self.weighted else None
        for u, v in self.edges():
            edges.append((int(perm[u]), int(perm[v])))
            if weights is not None:
                weights.append(self.edge_weight(u, v))
        return Graph(self._n, edges, directed=self._directed, weights=weights)

    # ------------------------------------------------------------------ #
    # Structural equality
    # ------------------------------------------------------------------ #

    def structurally_equal(self, other: "Graph") -> bool:
        """Whether two graphs have identical vertex count, edges, and weights."""
        if not isinstance(other, Graph):
            return False
        if (
            self._n != other._n
            or self._directed != other._directed
            or self.weighted != other.weighted
        ):
            return False
        if not np.array_equal(self._indptr, other._indptr):
            return False
        if not np.array_equal(self._adj, other._adj):
            return False
        if self.weighted and not np.allclose(self._weights, other._weights):
            return False
        return True

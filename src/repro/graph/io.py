"""Reading and writing graphs as edge lists.

The paper's datasets (SNAP / LAW collections) ship as whitespace- or
tab-separated edge lists with optional comment lines.  This module provides a
tolerant reader for that format, a writer, and helpers for gzip-compressed
files, so that users can plug their own networks into the library and the
experiment harness.
"""

from __future__ import annotations

import gzip
import io
import os
from pathlib import Path
from typing import Hashable, Optional, Tuple, Union

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder, VertexLabeling
from repro.graph.csr import Graph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_graph",
    "write_graph",
]

PathLike = Union[str, os.PathLike]

_COMMENT_PREFIXES = ("#", "%", "//")


def _open_text(path: PathLike, mode: str) -> io.TextIOBase:
    """Open a possibly gzip-compressed text file."""
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")  # type: ignore[return-value]
    return open(path, mode, encoding="utf-8")


def _parse_vertex(token: str, as_int: bool) -> Hashable:
    if not as_int:
        return token
    try:
        return int(token)
    except ValueError:
        return token


def read_edge_list(
    path: PathLike,
    *,
    directed: bool = False,
    weighted: bool = False,
    integer_ids: bool = True,
) -> Tuple[Graph, VertexLabeling]:
    """Read a graph from a whitespace-separated edge list.

    Lines starting with ``#``, ``%`` or ``//`` are ignored, as are blank
    lines.  Each remaining line must contain two vertex tokens and, when
    ``weighted`` is true, a third numeric weight token.

    Parameters
    ----------
    path:
        File to read.  Files ending in ``.gz`` are transparently decompressed.
    directed, weighted:
        Interpretation of the edge list.
    integer_ids:
        If true (default) and every vertex token is a non-negative integer,
        the numeric ids are used verbatim as vertex ids (the usual SNAP
        convention), so writing and re-reading a graph round-trips exactly.
        Otherwise dense ids are assigned in order of first appearance and the
        returned labeling maps tokens to ids.

    Returns
    -------
    (graph, labeling):
        The CSR graph and the mapping from file tokens to dense vertex ids.
    """
    expected = 3 if weighted else 2
    raw_edges = []
    weights = [] if weighted else None
    with _open_text(path, "r") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith(_COMMENT_PREFIXES):
                continue
            parts = line.split()
            if len(parts) < expected:
                raise GraphError(
                    f"{path}:{line_number}: expected at least {expected} fields, "
                    f"got {len(parts)}: {line!r}"
                )
            u = _parse_vertex(parts[0], integer_ids)
            v = _parse_vertex(parts[1], integer_ids)
            raw_edges.append((u, v))
            if weighted:
                try:
                    weights.append(float(parts[2]))
                except ValueError as exc:
                    raise GraphError(
                        f"{path}:{line_number}: bad weight {parts[2]!r}"
                    ) from exc

    numeric = integer_ids and all(
        isinstance(u, int) and isinstance(v, int) and u >= 0 and v >= 0
        for u, v in raw_edges
    )
    if numeric and raw_edges:
        # Preserve the numeric ids verbatim (SNAP convention): the labeling is
        # the identity over 0 .. max_id.
        num_vertices = max(max(u, v) for u, v in raw_edges) + 1
        labeling = VertexLabeling()
        for vertex in range(num_vertices):
            labeling.add(vertex)
        graph = Graph(
            num_vertices, raw_edges, directed=directed, weights=weights
        )
        return graph, labeling

    builder = GraphBuilder(directed=directed, weighted=weighted)
    if weighted:
        builder.add_edges(raw_edges, weights)
    else:
        builder.add_edges(raw_edges)
    return builder.build()


def write_edge_list(
    graph: Graph,
    path: PathLike,
    *,
    labeling: Optional[VertexLabeling] = None,
    header: Optional[str] = None,
) -> None:
    """Write a graph as an edge list (one ``u v [w]`` line per edge).

    Parameters
    ----------
    graph:
        The graph to serialise.
    path:
        Output file; ``.gz`` suffixes enable compression.
    labeling:
        Optional mapping used to emit the original external labels instead of
        dense integer ids.
    header:
        Optional comment emitted as the first line (prefixed with ``#``).
    """
    with _open_text(path, "w") as handle:
        if header:
            handle.write(f"# {header}\n")
        handle.write(
            f"# vertices={graph.num_vertices} edges={graph.num_edges} "
            f"directed={graph.directed} weighted={graph.weighted}\n"
        )
        for u, v in graph.edges():
            if labeling is not None:
                u_out, v_out = labeling.label_of(u), labeling.label_of(v)
            else:
                u_out, v_out = u, v
            if graph.weighted:
                handle.write(f"{u_out}\t{v_out}\t{graph.edge_weight(u, v):g}\n")
            else:
                handle.write(f"{u_out}\t{v_out}\n")


def read_graph(path: PathLike, **kwargs) -> Graph:
    """Convenience wrapper around :func:`read_edge_list` that drops the labeling."""
    graph, _ = read_edge_list(path, **kwargs)
    return graph


def write_graph(graph: Graph, path: PathLike, **kwargs) -> None:
    """Alias of :func:`write_edge_list` for symmetry with :func:`read_graph`."""
    write_edge_list(graph, path, **kwargs)

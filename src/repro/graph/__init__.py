"""Graph substrate: CSR graphs, construction, IO, traversal, statistics, ordering."""

from repro.graph.builder import GraphBuilder, VertexLabeling
from repro.graph.components import (
    component_sizes,
    connected_components,
    is_connected,
    largest_connected_component,
)
from repro.graph.csr import Graph
from repro.graph.io import read_edge_list, read_graph, write_edge_list, write_graph
from repro.graph.ordering import (
    ORDERING_STRATEGIES,
    closeness_order,
    compute_order,
    degree_order,
    random_order,
    rank_from_order,
)
from repro.graph.statistics import (
    GraphSummary,
    degree_ccdf,
    degree_histogram,
    distance_distribution,
    sample_pair_distances,
    summarize_graph,
)
from repro.graph.traversal import (
    UNREACHABLE,
    bfs_distance,
    bfs_distances,
    bfs_tree,
    bidirectional_bfs_distance,
    dijkstra_distances,
    dijkstra_tree,
    eccentricity,
    multi_source_bfs,
)

__all__ = [
    "Graph",
    "GraphBuilder",
    "VertexLabeling",
    "read_edge_list",
    "read_graph",
    "write_edge_list",
    "write_graph",
    "connected_components",
    "component_sizes",
    "is_connected",
    "largest_connected_component",
    "ORDERING_STRATEGIES",
    "compute_order",
    "degree_order",
    "closeness_order",
    "random_order",
    "rank_from_order",
    "UNREACHABLE",
    "bfs_distance",
    "bfs_distances",
    "bfs_tree",
    "bidirectional_bfs_distance",
    "dijkstra_distances",
    "dijkstra_tree",
    "multi_source_bfs",
    "eccentricity",
    "GraphSummary",
    "degree_histogram",
    "degree_ccdf",
    "distance_distribution",
    "sample_pair_distances",
    "summarize_graph",
]

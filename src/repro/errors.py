"""Exception hierarchy for the ``repro`` package.

All exceptions raised on purpose by this library derive from :class:`ReproError`
so that callers can catch library failures without accidentally swallowing
programming errors (``TypeError``, ``KeyError`` from unrelated code, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised when a graph is malformed or an operation is not applicable.

    Examples: negative vertex ids in an edge list, querying a vertex that does
    not exist, asking for an unweighted traversal on a weighted-only API.
    """


class VertexError(GraphError, IndexError):
    """Raised when a vertex id is out of range for a graph or an index.

    Inherits from :class:`IndexError` so that code treating vertex ids as
    indices behaves naturally under ``try/except IndexError``.
    """

    def __init__(self, vertex: int, num_vertices: int) -> None:
        super().__init__(
            f"vertex {vertex} is out of range for a graph with "
            f"{num_vertices} vertices"
        )
        self.vertex = vertex
        self.num_vertices = num_vertices


class EdgeError(GraphError):
    """Raised when an edge specification is invalid (bad endpoints or weight)."""


class IndexBuildError(ReproError):
    """Raised when a distance index cannot be constructed.

    Typical causes: a distance overflowing the 8-bit representation used for
    label distances, or inconsistent options (e.g. bit-parallel labels
    requested on a weighted graph, which the paper explicitly rules out).
    """


class IndexStateError(ReproError):
    """Raised when an index is used before it is built, or after invalidation."""


class SerializationError(ReproError):
    """Raised when an index cannot be saved to or loaded from disk."""


class DatasetError(ReproError):
    """Raised when a named dataset is unknown or cannot be materialised."""


class ExperimentError(ReproError):
    """Raised when an experiment driver is configured inconsistently."""


class ServingError(ReproError):
    """Raised when the query-serving subsystem is misused or misconfigured.

    Examples: publishing a snapshot from a manager with no writable shadow
    index, or submitting requests to a server that has been stopped.
    """


class AdmissionError(ServingError):
    """Raised when a request is rejected by the server's admission control.

    The server bounds its pending-request queue; when the queue is full new
    work is rejected immediately (fail fast) rather than queued into an
    ever-growing backlog — callers should back off and retry.
    """

"""Pruned landmark labeling: the pruned-BFS indexing phase (Section 4).

The construction performs one (pruned) BFS per vertex, in a priority order
supplied by the caller (Degree order by default, see
:mod:`repro.graph.ordering`).  While visiting vertex ``u`` at distance ``d``
from the current root, the BFS first asks whether the *existing* index already
certifies ``dist(root, u) <= d``; if so, ``u`` is pruned — it receives no new
label entry and none of its edges are traversed.  Theorem 4.1 of the paper
shows the surviving entries still form an exact 2-hop cover.

Implementation notes (paper Section 4.5, adapted to Python/numpy):

* The BFS is level synchronous.  The prune test only consults the index state
  from *before* the current BFS, so evaluating a whole level at once is
  equivalent to the paper's queue formulation.
* The prune test against normal labels uses the "targeted" evaluator
  (:class:`~repro.core.query.RootedQueryEvaluator`): the root's label is
  loaded into a rank-indexed array once per BFS, making each test
  ``O(|L(u)|)`` with early exit.
* The prune test against bit-parallel labels is evaluated for the whole
  frontier with a few vectorised operations
  (:func:`~repro.core.bitparallel.query_upper_bounds_for_root`).
* Frontier expansion is the same vectorised gather used by
  :mod:`repro.graph.traversal`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.bitparallel import BitParallelLabels, query_upper_bounds_for_root
from repro.core.labels import LabelAccumulator, LabelSet
from repro.core.query import RootedQueryEvaluator
from repro.errors import IndexBuildError
from repro.graph.csr import Graph

__all__ = ["ConstructionStats", "build_pruned_labels", "build_naive_labels"]


@dataclass
class ConstructionStats:
    """Per-BFS counters collected during index construction.

    These drive Figure 3 (labels added per pruned BFS) and the pruning
    ablations.  Index ``k`` of each array refers to the BFS performed from the
    vertex of rank ``k``.
    """

    #: Number of vertices that received a label in the k-th BFS.
    labeled_per_bfs: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    #: Number of vertices visited (labelled or pruned) in the k-th BFS.
    visited_per_bfs: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    #: Number of vertices visited but pruned in the k-th BFS.
    pruned_per_bfs: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    #: Wall-clock seconds spent in the pruned-BFS phase.
    elapsed_seconds: float = 0.0

    def cumulative_labeled_fraction(self) -> np.ndarray:
        """Cumulative share of final label entries created by each BFS (Fig. 3b)."""
        total = self.labeled_per_bfs.sum()
        if total == 0:
            return np.zeros_like(self.labeled_per_bfs, dtype=np.float64)
        return np.cumsum(self.labeled_per_bfs) / float(total)


def build_pruned_labels(
    graph: Graph,
    order: np.ndarray,
    *,
    bit_parallel: Optional[BitParallelLabels] = None,
    collect_stats: bool = False,
) -> Tuple[LabelSet, ConstructionStats]:
    """Run pruned BFSs from every vertex in ``order`` and return the labels.

    Parameters
    ----------
    graph:
        Undirected, unweighted graph.
    order:
        Vertex processing order (rank ``k`` processes ``order[k]``); must be a
        permutation of all vertices.
    bit_parallel:
        Optional bit-parallel labels built beforehand; they both participate in
        pruning and remain part of the final index.
    collect_stats:
        Whether to fill :class:`ConstructionStats` (small overhead).

    Returns
    -------
    (labels, stats):
        The frozen normal labels and the construction statistics (empty arrays
        unless ``collect_stats``).
    """
    n = graph.num_vertices
    order = np.asarray(order, dtype=np.int64)
    if order.shape[0] != n or np.any(np.sort(order) != np.arange(n)):
        raise IndexBuildError("order must be a permutation of all vertices")
    if graph.directed:
        raise IndexBuildError(
            "build_pruned_labels handles undirected graphs; use the directed "
            "index for directed graphs"
        )

    bp = bit_parallel if bit_parallel is not None else BitParallelLabels.make_empty(n)
    use_bp = not bp.empty()

    labels = LabelAccumulator(n)
    evaluator = RootedQueryEvaluator(n)
    indptr, adj = graph.indptr, graph.adjacency

    labeled_counter = np.zeros(n, dtype=np.int64)
    visited_counter = np.zeros(n, dtype=np.int64)
    pruned_counter = np.zeros(n, dtype=np.int64)

    start_time = time.perf_counter()

    for k in range(n):
        root = int(order[k])
        evaluator.attach(labels, root)

        dist = np.full(n, -1, dtype=np.int32)
        dist[root] = 0
        frontier = np.array([root], dtype=np.int64)
        depth = 0
        labeled_this_bfs = 0
        visited_this_bfs = 0

        while frontier.size:
            visited_this_bfs += int(frontier.size)

            if use_bp:
                bp_bounds = query_upper_bounds_for_root(bp, root, frontier).tolist()
            else:
                bp_bounds = None
            frontier_list = frontier.tolist()

            survivors: List[int] = []
            for idx, u in enumerate(frontier_list):
                if bp_bounds is not None and bp_bounds[idx] <= depth:
                    continue
                if evaluator.query_upper_bound_with_cutoff(labels, u, depth):
                    continue
                labels.append(u, k, depth)
                survivors.append(u)
            labeled_this_bfs += len(survivors)

            if not survivors:
                break
            survivor_array = np.asarray(survivors, dtype=np.int64)
            starts = indptr[survivor_array]
            counts = indptr[survivor_array + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            base = np.repeat(starts, counts)
            within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
            neighbors = adj[base + within]
            fresh = neighbors[dist[neighbors] < 0]
            if fresh.size == 0:
                break
            frontier = np.unique(fresh).astype(np.int64)
            dist[frontier] = depth + 1
            depth += 1

        evaluator.detach()
        if collect_stats:
            labeled_counter[k] = labeled_this_bfs
            visited_counter[k] = visited_this_bfs
            pruned_counter[k] = visited_this_bfs - labeled_this_bfs

    elapsed = time.perf_counter() - start_time
    stats = ConstructionStats(
        labeled_per_bfs=labeled_counter if collect_stats else np.zeros(0, np.int64),
        visited_per_bfs=visited_counter if collect_stats else np.zeros(0, np.int64),
        pruned_per_bfs=pruned_counter if collect_stats else np.zeros(0, np.int64),
        elapsed_seconds=elapsed,
    )
    return labels.freeze(order), stats


def build_naive_labels(
    graph: Graph,
    order: np.ndarray,
    *,
    collect_stats: bool = False,
) -> Tuple[LabelSet, ConstructionStats]:
    """Naive landmark labeling (Section 4.1): full BFSs, no pruning.

    Included as the ablation baseline showing why pruning matters: the index
    it produces has ``Θ(n)`` entries per vertex and quadratic total size, so it
    is only usable on small graphs.
    """
    n = graph.num_vertices
    order = np.asarray(order, dtype=np.int64)
    if order.shape[0] != n or np.any(np.sort(order) != np.arange(n)):
        raise IndexBuildError("order must be a permutation of all vertices")
    if graph.directed:
        raise IndexBuildError("build_naive_labels handles undirected graphs only")

    labels = LabelAccumulator(n)
    indptr, adj = graph.indptr, graph.adjacency
    labeled_counter = np.zeros(n, dtype=np.int64)
    start_time = time.perf_counter()

    for k in range(n):
        root = int(order[k])
        dist = np.full(n, -1, dtype=np.int32)
        dist[root] = 0
        frontier = np.array([root], dtype=np.int64)
        depth = 0
        labeled_this_bfs = 0
        while frontier.size:
            for u in frontier:
                labels.append(int(u), k, depth)
            labeled_this_bfs += int(frontier.size)
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            base = np.repeat(starts, counts)
            within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
            neighbors = adj[base + within]
            fresh = neighbors[dist[neighbors] < 0]
            if fresh.size == 0:
                break
            frontier = np.unique(fresh).astype(np.int64)
            dist[frontier] = depth + 1
            depth += 1
        if collect_stats:
            labeled_counter[k] = labeled_this_bfs

    elapsed = time.perf_counter() - start_time
    stats = ConstructionStats(
        labeled_per_bfs=labeled_counter if collect_stats else np.zeros(0, np.int64),
        visited_per_bfs=labeled_counter.copy() if collect_stats else np.zeros(0, np.int64),
        pruned_per_bfs=np.zeros(n if collect_stats else 0, dtype=np.int64),
        elapsed_seconds=elapsed,
    )
    return labels.freeze(order), stats

"""Incremental (insert-only) maintenance of a pruned-landmark-labeling index.

The paper's conclusion lists dynamic updates as future work; the authors later
published the incremental algorithm used here (resume pruned BFSs from the
endpoints of a new edge).  We include it as the library's "extension" feature:

When an edge ``(a, b)`` is inserted, shortest paths can only *shrink*, so the
existing label entries remain valid upper bounds and the index only needs new
or improved entries.  For every hub ``r`` (of rank ``k``) appearing in the
label of ``a`` with distance ``d``, distances from ``r`` through the new edge
are at most ``d + 1`` at ``b`` and grow by one per hop beyond it, so a pruned
BFS *resumed* from ``b`` at depth ``d + 1`` (pruning against hubs of rank at
most ``k``) discovers every improvement attributable to ``r``; the symmetric
pass handles hubs of ``b``.  Label minimality is not preserved — removed-edge
(decremental) updates are out of scope, as in the original work.

The dynamic index keeps labels in per-vertex sorted Python lists so that
entries can be updated in place; query time is therefore a constant factor
slower than the frozen :class:`~repro.core.labels.LabelSet`, which is the
usual trade-off for updatability.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.core.index import PrunedLandmarkLabeling
from repro.errors import IndexBuildError, IndexStateError
from repro.graph.csr import Graph
from repro.graph.ordering import compute_order

__all__ = ["DynamicPrunedLandmarkLabeling"]


class DynamicPrunedLandmarkLabeling:
    """Pruned-landmark-labeling oracle supporting online edge insertions.

    Parameters
    ----------
    ordering:
        Vertex ordering strategy used for the initial build.  The rank of a
        vertex is fixed at build time; newly important vertices are not
        re-ranked (matching the original incremental algorithm).
    seed:
        Seed for randomised orderings.

    Examples
    --------
    >>> from repro.graph import Graph
    >>> graph = Graph(4, [(0, 1), (2, 3)])
    >>> oracle = DynamicPrunedLandmarkLabeling().build(graph)
    >>> oracle.distance(0, 3)
    inf
    >>> oracle.insert_edge(1, 2)
    >>> oracle.distance(0, 3)
    3.0
    """

    def __init__(self, *, ordering: str = "degree", seed: int = 0) -> None:
        self.ordering = ordering
        self.seed = seed
        self._adjacency: Optional[List[Set[int]]] = None
        self._order: Optional[np.ndarray] = None
        self._rank: Optional[np.ndarray] = None
        # Per-vertex parallel sorted lists: hub ranks and distances.
        self._hubs: Optional[List[List[int]]] = None
        self._dists: Optional[List[List[int]]] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def build(self, graph: Graph) -> "DynamicPrunedLandmarkLabeling":
        """Build the initial index from a static graph."""
        if graph.directed:
            raise IndexBuildError(
                "DynamicPrunedLandmarkLabeling expects an undirected graph"
            )
        static = PrunedLandmarkLabeling(
            ordering=self.ordering, num_bit_parallel_roots=0, seed=self.seed
        ).build(graph)
        labels = static.label_set

        n = graph.num_vertices
        self._adjacency = [set(int(v) for v in graph.neighbors(u)) for u in range(n)]
        self._order = labels.order.copy()
        self._rank = labels.rank.copy()
        self._hubs = []
        self._dists = []
        for v in range(n):
            hubs, dists = labels.vertex_label(v)
            self._hubs.append([int(h) for h in hubs])
            self._dists.append([int(d) for d in dists])
        return self

    @property
    def built(self) -> bool:
        """Whether the initial index has been built."""
        return self._hubs is not None

    def _require_built(self) -> None:
        if not self.built:
            raise IndexStateError("the index has not been built yet; call build()")

    @property
    def num_vertices(self) -> int:
        """Number of vertices covered by the index."""
        self._require_built()
        return len(self._hubs)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def _query_prefix(self, s: int, t: int, max_rank: int) -> float:
        """Minimum label distance using only hubs of rank ``<= max_rank``."""
        s_hubs, s_dists = self._hubs[s], self._dists[s]
        t_hubs, t_dists = self._hubs[t], self._dists[t]
        best = float("inf")
        i, j = 0, 0
        while i < len(s_hubs) and j < len(t_hubs):
            hub_s, hub_t = s_hubs[i], t_hubs[j]
            if hub_s > max_rank or hub_t > max_rank:
                break
            if hub_s == hub_t:
                candidate = s_dists[i] + t_dists[j]
                if candidate < best:
                    best = candidate
                i += 1
                j += 1
            elif hub_s < hub_t:
                i += 1
            else:
                j += 1
        return best

    def distance(self, s: int, t: int) -> float:
        """Exact shortest-path distance in the current (inserted-into) graph."""
        self._require_built()
        if s == t:
            return 0.0
        return self._query_prefix(s, t, max_rank=len(self._hubs))

    def distances(self, pairs: Iterable[Tuple[int, int]]) -> np.ndarray:
        """Distances for a batch of ``(s, t)`` pairs."""
        self._require_built()
        pairs = list(pairs)
        result = np.empty(len(pairs), dtype=np.float64)
        for i, (s, t) in enumerate(pairs):
            result[i] = self.distance(int(s), int(t))
        return result

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def _upsert(self, vertex: int, hub_rank: int, distance: int) -> bool:
        """Insert or improve the entry ``(hub_rank, distance)``; return whether changed."""
        hubs = self._hubs[vertex]
        dists = self._dists[vertex]
        position = bisect.bisect_left(hubs, hub_rank)
        if position < len(hubs) and hubs[position] == hub_rank:
            if dists[position] <= distance:
                return False
            dists[position] = distance
            return True
        hubs.insert(position, hub_rank)
        dists.insert(position, distance)
        return True

    def _resume_pruned_bfs(self, hub_rank: int, start: int, start_depth: int) -> None:
        """Resume a pruned BFS for hub ``hub_rank`` from ``start`` at ``start_depth``."""
        root = int(self._order[hub_rank])
        queue = deque([(start, start_depth)])
        seen: Dict[int, int] = {start: start_depth}
        while queue:
            vertex, depth = queue.popleft()
            # Prune when hubs of rank <= hub_rank already certify the distance.
            if self._query_prefix(root, vertex, hub_rank) <= depth:
                continue
            if not self._upsert(vertex, hub_rank, depth):
                continue
            for neighbor in self._adjacency[vertex]:
                if neighbor not in seen or seen[neighbor] > depth + 1:
                    seen[neighbor] = depth + 1
                    queue.append((neighbor, depth + 1))

    def insert_edge(self, a: int, b: int) -> None:
        """Insert the undirected edge ``(a, b)`` and repair the index.

        Inserting an edge that already exists (or a self loop) is a no-op.
        """
        self._require_built()
        n = self.num_vertices
        if not (0 <= a < n and 0 <= b < n):
            raise IndexBuildError(f"edge endpoints ({a}, {b}) out of range")
        if a == b or b in self._adjacency[a]:
            return
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)

        # Propagate improvements from every hub of a through b, and vice versa.
        for hub_rank, dist in list(zip(self._hubs[a], self._dists[a])):
            self._resume_pruned_bfs(hub_rank, b, dist + 1)
        for hub_rank, dist in list(zip(self._hubs[b], self._dists[b])):
            self._resume_pruned_bfs(hub_rank, a, dist + 1)

    def insert_edges(self, edges: Iterable[Tuple[int, int]]) -> None:
        """Insert a stream of edges one by one."""
        for a, b in edges:
            self.insert_edge(int(a), int(b))

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #

    def freeze(self) -> PrunedLandmarkLabeling:
        """Snapshot the current labels into an immutable static oracle.

        The returned :class:`~repro.core.index.PrunedLandmarkLabeling` owns
        frozen numpy copies of the labels, so later :meth:`insert_edge` calls
        on this dynamic oracle do not affect it.  This is the bridge between
        the writable index and the lock-free read path of the serving
        subsystem: updates are applied here, then :meth:`freeze` publishes an
        immutable view (see :class:`repro.serving.snapshot.SnapshotManager`).
        """
        self._require_built()
        from repro.core.bitparallel import BitParallelLabels
        from repro.core.labels import LabelSet

        n = len(self._hubs)
        labels = LabelSet.from_lists(self._hubs, self._dists, self._order.copy())

        static = PrunedLandmarkLabeling(
            ordering=self.ordering, num_bit_parallel_roots=0, seed=self.seed
        )
        static._labels = labels
        static._bit_parallel = BitParallelLabels.make_empty(n)
        static._order = labels.order
        static._graph = None
        return static

    def graph_snapshot(self) -> Graph:
        """The current (inserted-into) graph as an immutable CSR :class:`Graph`."""
        self._require_built()
        edges = [
            (u, v)
            for u in range(len(self._adjacency))
            for v in self._adjacency[u]
            if u < v
        ]
        return Graph(len(self._adjacency), edges)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def average_label_size(self) -> float:
        """Average number of label entries per vertex."""
        self._require_built()
        n = len(self._hubs)
        if n == 0:
            return 0.0
        return sum(len(h) for h in self._hubs) / n

    def label_of(self, vertex: int) -> List[Tuple[int, int]]:
        """Label entries of one vertex as ``(hub_vertex, distance)`` pairs."""
        self._require_built()
        return [
            (int(self._order[h]), int(d))
            for h, d in zip(self._hubs[vertex], self._dists[vertex])
        ]

"""Fully dynamic maintenance of a pruned-landmark-labeling index.

The paper's conclusion lists dynamic updates as future work; the authors later
published the incremental algorithm used here (resume pruned BFSs from the
endpoints of a new edge), and this module extends the index with a decremental
counterpart so the oracle tracks genuinely evolving graphs:

*Insertions.*  When an edge ``(a, b)`` is inserted, shortest paths can only
*shrink*, so the existing label entries remain valid upper bounds and the
index only needs new or improved entries.  For every hub ``r`` (of rank ``k``)
appearing in the label of ``a`` with distance ``d``, distances from ``r``
through the new edge are at most ``d + 1`` at ``b`` and grow by one per hop
beyond it, so a pruned BFS *resumed* from ``b`` at depth ``d + 1`` (pruning
against hubs of rank at most ``k``) discovers every improvement attributable
to ``r``; the symmetric pass handles hubs of ``b``.

*Deletions.*  When ``(a, b)`` is removed, shortest paths can only *grow*, so
some label entries become stale (they certify paths through the removed
edge).  :meth:`DynamicPrunedLandmarkLabeling.remove_edge` identifies the
*affected hubs* — roots whose BFS tree used the edge, recognisable by
``|d(root, a) - d(root, b)| == 1`` in the pre-removal graph — and, per
affected hub, the superset of vertices some shortest root-path of which went
through the edge (the shortest-path-DAG descendants of the far endpoint).
Stale entries at those vertices are dropped, then each hub is repaired in
increasing rank order with a pruned BFS *resumed from the surviving
frontier*: the unaffected neighbours of the affected region seed a
multi-source BFS whose exact new distances are re-inserted unless hubs of
lower rank already cover them.  Repairing in rank order keeps the prune test
sound (it only consults labels that are already exact for the new graph),
which also heals covers broken by the deletion — a vertex pruned at build
time because a lower-rank hub covered it is revisited whenever that cover
stretched.  Label minimality is not preserved by either direction of update.

The dynamic index keeps labels in per-vertex sorted Python lists so that
entries can be updated in place; query time is therefore a constant factor
slower than the frozen :class:`~repro.core.labels.LabelSet`, which is the
usual trade-off for updatability.  Every mutated vertex is tracked in a dirty
set, so :meth:`DynamicPrunedLandmarkLabeling.freeze` can publish snapshots by
*patching* only the changed per-vertex labels into the previously frozen
label set instead of re-materialising all of them.
"""

from __future__ import annotations

import bisect
import heapq
from collections import deque
from itertools import chain
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.index import PrunedLandmarkLabeling
from repro.core.kernels import select_kernel
from repro.core.labels import LabelSet
from repro.core.query import BatchQueryKernel
from repro.core.storage import ArrayBackend
from repro.errors import IndexBuildError, IndexStateError, VertexError
from repro.graph.csr import Graph

__all__ = ["DynamicPrunedLandmarkLabeling"]

#: Internal "unreachable" sentinel for the rooted temp array; far above any
#: real distance sum but safe to add to one without overflow.
_TEMP_INF = 1 << 40


class DynamicPrunedLandmarkLabeling:
    """Pruned-landmark-labeling oracle supporting online edge insertions and removals.

    Parameters
    ----------
    ordering:
        Vertex ordering strategy used for the initial build.  The rank of a
        vertex is fixed at build time; newly important vertices are not
        re-ranked (matching the original incremental algorithm).
    seed:
        Seed for randomised orderings.

    Examples
    --------
    >>> from repro.graph import Graph
    >>> graph = Graph(4, [(0, 1), (2, 3)])
    >>> oracle = DynamicPrunedLandmarkLabeling().build(graph)
    >>> oracle.distance(0, 3)
    inf
    >>> oracle.insert_edge(1, 2)
    >>> oracle.distance(0, 3)
    3.0
    >>> oracle.remove_edge(1, 2)
    >>> oracle.distance(0, 3)
    inf
    """

    def __init__(self, *, ordering: str = "degree", seed: int = 0) -> None:
        self.ordering = ordering
        self.seed = seed
        self._adjacency: Optional[List[Set[int]]] = None
        self._order: Optional[np.ndarray] = None
        self._rank: Optional[np.ndarray] = None
        # Per-vertex parallel sorted lists: hub ranks and distances.
        self._hubs: Optional[List[List[int]]] = None
        self._dists: Optional[List[List[int]]] = None
        # Vertices whose label changed since the last freeze, the label set
        # that freeze produced (the base the next diff-freeze patches), and
        # the index it went into — whose lazily built batch kernel the next
        # diff-freeze also patches instead of rebuilding.
        self._dirty: Set[int] = set()
        self._frozen_labels: Optional[LabelSet] = None
        self._frozen_index: Optional[PrunedLandmarkLabeling] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def build(self, graph: Graph) -> "DynamicPrunedLandmarkLabeling":
        """Build the initial index from a static graph."""
        if graph.directed:
            raise IndexBuildError(
                "DynamicPrunedLandmarkLabeling expects an undirected graph"
            )
        static = PrunedLandmarkLabeling(
            ordering=self.ordering, num_bit_parallel_roots=0, seed=self.seed
        ).build(graph)
        labels = static.label_set

        n = graph.num_vertices
        self._adjacency = [set(int(v) for v in graph.neighbors(u)) for u in range(n)]
        self._order = labels.order.copy()
        self._rank = labels.rank.copy()
        self._hubs = []
        self._dists = []
        for v in range(n):
            hubs, dists = labels.vertex_label(v)
            self._hubs.append([int(h) for h in hubs])
            self._dists.append([int(d) for d in dists])
        self._dirty = set()
        self._frozen_labels = labels
        self._frozen_index = static
        # Rank-indexed scratch array for fixed-root queries (Section 4.5.1's
        # temp-array trick): attach a root's label once, then each query
        # costs O(|L(v)|) list lookups instead of a full two-label merge.
        # A numpy twin backs the vectorised batch evaluator; it is scattered
        # lazily, on the first batch evaluation under an attach, so scalar
        # -only attaches (every insert-path prune test, tiny deletion
        # regions) never pay for it.
        self._temp = [_TEMP_INF] * n
        self._temp_np = np.full(n, _TEMP_INF, dtype=np.int64)
        self._attached_root: Optional[int] = None
        self._np_touched: Optional[np.ndarray] = None
        # Kernel backend class for the batched rooted probes of the repair
        # path; re-selected per build so the process preference (``--kernel``
        # / ``REPRO_KERNEL``) applies to mutations too.
        self._probe_kernel = select_kernel()
        return self

    @property
    def built(self) -> bool:
        """Whether the initial index has been built."""
        return self._hubs is not None

    def _require_built(self) -> None:
        if not self.built:
            raise IndexStateError("the index has not been built yet; call build()")

    @property
    def num_vertices(self) -> int:
        """Number of vertices covered by the index."""
        self._require_built()
        return len(self._hubs)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def _validate_vertex(self, vertex: int) -> None:
        """Reject ids outside ``[0, n)`` — negative ids would silently hit
        Python's end-relative list indexing and answer for vertex ``n + id``."""
        if not (0 <= vertex < len(self._hubs)):
            raise VertexError(vertex, len(self._hubs))

    def _attach_root(self, root: int) -> List[int]:
        """Scatter ``root``'s label into the temp array; returns the touched ranks."""
        temp = self._temp
        touched = self._hubs[root]
        for hub_rank, distance in zip(touched, self._dists[root]):
            temp[hub_rank] = distance
        self._attached_root = root
        return touched

    def _detach_root(self, touched: List[int]) -> None:
        """Clear exactly the temp entries written by the last :meth:`_attach_root`."""
        temp = self._temp
        for hub_rank in touched:
            temp[hub_rank] = _TEMP_INF
        if self._np_touched is not None:
            self._temp_np[self._np_touched] = _TEMP_INF
            self._np_touched = None
        self._attached_root = None

    def _rooted_query(self, vertex: int, max_rank: int) -> int:
        """Minimum attached-root label distance via hubs of rank ``<= max_rank``.

        Equivalent to ``_query_prefix(root, vertex, max_rank)`` for the
        currently attached root, in ``O(|L(vertex)|)`` instead of a two-label
        merge; returns a value ``>= _TEMP_INF`` when no common hub qualifies.
        """
        temp = self._temp
        best = _TEMP_INF
        dists = self._dists[vertex]
        for i, hub_rank in enumerate(self._hubs[vertex]):
            if hub_rank > max_rank:
                break
            candidate = dists[i] + temp[hub_rank]
            if candidate < best:
                best = candidate
        return best

    #: Below this many probed label entries the scalar evaluator beats the
    #: vectorised one (per-call numpy overhead exceeds the interpreted loop;
    #: the breakeven sits at a few hundred entries).
    _BATCH_EVAL_MIN_ENTRIES = 256

    def _rooted_query_many(
        self, vertices: List[int], max_rank: int
    ) -> "Sequence[int]":
        """Batched rooted evaluator over the *attached* root (Section 4.5.1).

        The vectorised counterpart of :meth:`_rooted_query`: with a root's
        label scattered into the temp arrays by :meth:`_attach_root`, the
        contribution of every label entry of every queried vertex —
        restricted to hubs of rank ``<= max_rank`` — is evaluated with flat
        numpy operations.  This replaces the per-affected-hub Python probe
        loops that dominated :meth:`remove_edge`; tiny batches (most
        low-impact deletions) keep the scalar path, whose per-entry cost is
        lower than numpy's per-call overhead.

        Returns a sequence aligned with ``vertices`` (a plain list on the
        scalar fast path, an ``int64`` array on the vectorised one); entries
        are exactly :data:`_TEMP_INF` when no qualifying common hub exists
        (matching the scalar evaluator's sentinel).
        """
        count = len(vertices)
        if count == 0:
            return []
        hub_lists = [self._hubs[v] for v in vertices]
        total = 0
        for hubs in hub_lists:
            total += len(hubs)
        if total < self._BATCH_EVAL_MIN_ENTRIES:
            # Stay off numpy entirely: for the tiny batches that dominate
            # low-impact deletions, even the result-array allocation costs
            # more than the whole interpreted probe loop.
            rooted_query = self._rooted_query
            return [rooted_query(vertex, max_rank) for vertex in vertices]
        sizes = np.fromiter(map(len, hub_lists), dtype=np.int64, count=count)
        if self._np_touched is None:
            # First batch evaluation under this attach: mirror the root's
            # label into the numpy temp (one C-speed scatter).
            root_hubs = np.asarray(
                self._hubs[self._attached_root], dtype=np.int64
            )
            self._temp_np[root_hubs] = self._dists[self._attached_root]
            self._np_touched = root_hubs
        # Flatten through chain.from_iterable + fromiter: both stay in C, so
        # the cost per label entry is a few machine operations whatever the
        # per-vertex label sizes are (a per-entry Python generator or a
        # per-vertex asarray would put the interpreter back on the hot path).
        flat_hubs = np.fromiter(
            chain.from_iterable(hub_lists), dtype=np.int64, count=total
        )
        flat_dists = np.fromiter(
            chain.from_iterable(self._dists[v] for v in vertices),
            dtype=np.int64,
            count=total,
        )
        starts = np.zeros(count, dtype=np.int64)
        np.cumsum(sizes[:-1], out=starts[1:])
        # The segmented minimum itself runs on the selected kernel backend
        # (numpy baseline, or the compiled loop when numba is available);
        # every backend returns exactly _TEMP_INF where no hub qualifies.
        return self._probe_kernel.rooted_probe(
            flat_hubs, flat_dists, starts, sizes, self._temp_np, max_rank, _TEMP_INF
        )

    def _query_prefix(self, s: int, t: int, max_rank: int) -> float:
        """Minimum label distance using only hubs of rank ``<= max_rank``."""
        s_hubs, s_dists = self._hubs[s], self._dists[s]
        t_hubs, t_dists = self._hubs[t], self._dists[t]
        best = float("inf")
        i, j = 0, 0
        while i < len(s_hubs) and j < len(t_hubs):
            hub_s, hub_t = s_hubs[i], t_hubs[j]
            if hub_s > max_rank or hub_t > max_rank:
                break
            if hub_s == hub_t:
                candidate = s_dists[i] + t_dists[j]
                if candidate < best:
                    best = candidate
                i += 1
                j += 1
            elif hub_s < hub_t:
                i += 1
            else:
                j += 1
        return best

    def distance(self, s: int, t: int) -> float:
        """Exact shortest-path distance in the current (mutated) graph.

        Raises
        ------
        VertexError
            If either id is out of ``[0, n)`` (negative ids included).
        """
        self._require_built()
        self._validate_vertex(s)
        self._validate_vertex(t)
        if s == t:
            return 0.0
        return self._query_prefix(s, t, max_rank=len(self._hubs))

    def distances(self, pairs: Iterable[Tuple[int, int]]) -> np.ndarray:
        """Distances for a batch of ``(s, t)`` pairs."""
        self._require_built()
        pairs = list(pairs)
        result = np.empty(len(pairs), dtype=np.float64)
        for i, (s, t) in enumerate(pairs):
            result[i] = self.distance(int(s), int(t))
        return result

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def _upsert(self, vertex: int, hub_rank: int, distance: int) -> bool:
        """Insert or improve the entry ``(hub_rank, distance)``; return whether changed."""
        hubs = self._hubs[vertex]
        dists = self._dists[vertex]
        position = bisect.bisect_left(hubs, hub_rank)
        if position < len(hubs) and hubs[position] == hub_rank:
            if dists[position] <= distance:
                return False
            dists[position] = distance
            self._dirty.add(vertex)
            return True
        hubs.insert(position, hub_rank)
        dists.insert(position, distance)
        self._dirty.add(vertex)
        return True

    def _pop_entry(self, vertex: int, hub_rank: int) -> Optional[int]:
        """Drop the entry for ``hub_rank`` from ``vertex``; return its old distance.

        Does not touch the dirty set: deletion repair pops entries wholesale
        and frequently re-inserts them unchanged, so it accounts for dirtiness
        itself by comparing old and new values (see :meth:`_repair_hub`).
        """
        hubs = self._hubs[vertex]
        position = bisect.bisect_left(hubs, hub_rank)
        if position >= len(hubs) or hubs[position] != hub_rank:
            return None
        distance = self._dists[vertex][position]
        del hubs[position]
        del self._dists[vertex][position]
        return distance

    def _resume_pruned_bfs(self, hub_rank: int, start: int, start_depth: int) -> None:
        """Resume a pruned BFS for hub ``hub_rank`` from ``start`` at ``start_depth``."""
        root = int(self._order[hub_rank])
        touched = self._attach_root(root)
        try:
            queue = deque([(start, start_depth)])
            seen: Dict[int, int] = {start: start_depth}
            while queue:
                vertex, depth = queue.popleft()
                # Prune when hubs of rank <= hub_rank already certify the distance.
                if self._rooted_query(vertex, hub_rank) <= depth:
                    continue
                if not self._upsert(vertex, hub_rank, depth):
                    continue
                for neighbor in self._adjacency[vertex]:
                    if neighbor not in seen or seen[neighbor] > depth + 1:
                        seen[neighbor] = depth + 1
                        queue.append((neighbor, depth + 1))
        finally:
            self._detach_root(touched)

    def insert_edge(self, a: int, b: int) -> None:
        """Insert the undirected edge ``(a, b)`` and repair the index.

        Inserting an edge that already exists (or a self loop) is a no-op.
        """
        self._require_built()
        n = self.num_vertices
        if not (0 <= a < n and 0 <= b < n):
            raise IndexBuildError(f"edge endpoints ({a}, {b}) out of range")
        if a == b or b in self._adjacency[a]:
            return
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)

        # Propagate improvements from every hub of a through b, and vice versa.
        for hub_rank, dist in list(zip(self._hubs[a], self._dists[a])):
            self._resume_pruned_bfs(hub_rank, b, dist + 1)
        for hub_rank, dist in list(zip(self._hubs[b], self._dists[b])):
            self._resume_pruned_bfs(hub_rank, a, dist + 1)

    def insert_edges(self, edges: Iterable[Tuple[int, int]]) -> None:
        """Insert a stream of edges one by one."""
        for a, b in edges:
            self.insert_edge(int(a), int(b))

    def _bfs_distances(self, start: int) -> np.ndarray:
        """Hop distances from ``start`` over the current adjacency (-1 = unreachable)."""
        n = len(self._adjacency)
        dist = np.full(n, -1, dtype=np.int64)
        dist[start] = 0
        queue = deque([start])
        while queue:
            vertex = queue.popleft()
            next_depth = dist[vertex] + 1
            for neighbor in self._adjacency[vertex]:
                if dist[neighbor] < 0:
                    dist[neighbor] = next_depth
                    queue.append(neighbor)
        return dist

    def _collect_affected(
        self, root: int, far: int, far_distance: int
    ) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Affected region of ``root`` for a deletion whose far endpoint is ``far``.

        Returns ``(affected, boundary)``: ``affected`` maps each vertex some
        old shortest ``root``-path of which went through the removed edge
        (the shortest-path-DAG descendants of ``far``) to its *old* distance;
        ``boundary`` maps their unaffected neighbours to old distances, which
        the deletion leaves intact — the surviving frontier the repair BFS
        resumes from.  Must run on pre-removal labels (old distances are read
        with label queries) but post-removal adjacency.
        """
        max_rank = len(self._hubs)
        old_dist: Dict[int, int] = {far: far_distance}
        affected: Dict[int, int] = {far: far_distance}
        # The affected region grows level-synchronously in old-distance
        # levels (DAG edges increase the old distance by exactly one), so
        # each level's unknown old distances are probed in one call to the
        # batched rooted evaluator instead of per-neighbour scalar loops.
        frontier = [far]
        depth = far_distance
        touched = self._attach_root(root)
        try:
            while frontier:
                candidates = dict.fromkeys(
                    neighbor
                    for vertex in frontier
                    for neighbor in self._adjacency[vertex]
                    if neighbor not in affected
                )
                unknown = [v for v in candidates if v not in old_dist]
                for vertex, value in zip(
                    unknown, self._rooted_query_many(unknown, max_rank)
                ):
                    old_dist[vertex] = int(value)
                frontier = []
                for neighbor in candidates:
                    if old_dist[neighbor] == depth + 1:
                        affected[neighbor] = depth + 1
                        frontier.append(neighbor)
                depth += 1
        finally:
            self._detach_root(touched)
        boundary: Dict[int, int] = {}
        for vertex in affected:
            for neighbor in self._adjacency[vertex]:
                if neighbor not in affected:
                    distance = old_dist[neighbor]
                    if distance < _TEMP_INF:
                        boundary[neighbor] = distance
        return affected, boundary

    def _repair_hub(
        self,
        hub_rank: int,
        affected: Dict[int, int],
        boundary: Dict[int, int],
        removed: Dict[int, int],
    ) -> None:
        """Resume a pruned BFS for ``hub_rank`` from the surviving frontier.

        Exact new distances for the affected region are computed by a
        multi-source BFS seeded with ``boundary`` distances (which the
        deletion did not change); each affected vertex then re-enters the
        label unless hubs of rank ``<= hub_rank`` — already repaired, since
        hubs are processed in increasing rank order — cover it.  ``removed``
        holds the entries phase 2 popped; a vertex is marked dirty only when
        its final entry differs from the one it had, so the conservative
        affected superset does not inflate the diff-freeze patch set.
        """
        root = int(self._order[hub_rank])
        heap: List[Tuple[int, int]] = []
        for vertex in affected:
            best = None
            for neighbor in self._adjacency[vertex]:
                if neighbor not in affected:
                    candidate = boundary[neighbor] + 1
                    if best is None or candidate < best:
                        best = candidate
            if best is not None:
                heapq.heappush(heap, (best, vertex))
        new_dist: Dict[int, int] = {}
        while heap:
            depth, vertex = heapq.heappop(heap)
            if vertex in new_dist:
                continue
            new_dist[vertex] = depth
            for neighbor in self._adjacency[vertex]:
                if neighbor in affected and neighbor not in new_dist:
                    heapq.heappush(heap, (depth + 1, neighbor))
        # One batched pass answers every keep-probe: the probes only read
        # labels (this hub's stale entries were all popped in phase 2), so
        # the later insertions cannot influence them.
        vertices = list(affected)
        touched = self._attach_root(root)
        try:
            bounds = self._rooted_query_many(vertices, hub_rank)
        finally:
            self._detach_root(touched)
        for vertex, bound in zip(vertices, bounds):
            depth = new_dist.get(vertex)
            keep = depth is not None and int(bound) > depth
            if keep:
                hubs = self._hubs[vertex]
                position = bisect.bisect_left(hubs, hub_rank)
                hubs.insert(position, hub_rank)
                self._dists[vertex].insert(position, depth)
            final = depth if keep else None
            if removed.get(vertex) != final:
                self._dirty.add(vertex)

    def remove_edge(self, a: int, b: int) -> None:
        """Remove the undirected edge ``(a, b)`` and repair the index.

        Removing an absent edge (or a self loop) is a no-op.  Stale label
        entries — those certifying shortest paths through the removed edge —
        are dropped, and every affected hub is repaired with a pruned BFS
        resumed from the surviving frontier of its affected region, in
        increasing rank order so prune tests only consult labels that are
        already exact for the new graph.
        """
        self._require_built()
        n = self.num_vertices
        if not (0 <= a < n and 0 <= b < n):
            raise IndexBuildError(f"edge endpoints ({a}, {b}) out of range")
        if a == b or b not in self._adjacency[a]:
            return

        # Old distances from both endpoints identify the hubs whose BFS tree
        # may have used the edge: those with |d(root, a) - d(root, b)| == 1.
        dist_a = self._bfs_distances(a)
        dist_b = self._bfs_distances(b)
        self._adjacency[a].remove(b)
        self._adjacency[b].remove(a)
        reach = (dist_a >= 0) & (dist_b >= 0)
        delta = dist_b - dist_a
        candidates = np.flatnonzero(reach & (np.abs(delta) == 1))
        if candidates.shape[0] == 0:
            return

        # Phase 1 (pre-removal labels): collect every hub's affected region
        # and surviving frontier before any entry is touched.
        plans: List[Tuple[int, Dict[int, int], Dict[int, int]]] = []
        for root in candidates:
            root = int(root)
            far = b if delta[root] == 1 else a
            affected, boundary = self._collect_affected(
                root, far, int(dist_b[root] if far == b else dist_a[root])
            )
            plans.append((int(self._rank[root]), affected, boundary))
        plans.sort(key=lambda plan: plan[0])

        # Phase 2: drop every stale entry, so no repair can consult one.
        removed_per_hub: List[Dict[int, int]] = []
        for hub_rank, affected, _ in plans:
            removed: Dict[int, int] = {}
            for vertex in affected:
                old = self._pop_entry(vertex, hub_rank)
                if old is not None:
                    removed[vertex] = old
            removed_per_hub.append(removed)

        # Phase 3: repair hubs in increasing rank order.
        for (hub_rank, affected, boundary), removed in zip(plans, removed_per_hub):
            self._repair_hub(hub_rank, affected, boundary, removed)

    def remove_edges(self, edges: Iterable[Tuple[int, int]]) -> None:
        """Remove a stream of edges one by one."""
        for a, b in edges:
            self.remove_edge(int(a), int(b))

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #

    @property
    def dirty_vertices(self) -> FrozenSet[int]:
        """Vertices whose label changed since the last :meth:`freeze` (or build)."""
        self._require_built()
        return frozenset(self._dirty)

    def freeze(
        self, *, diff: bool = True, backend: Optional[ArrayBackend] = None
    ) -> PrunedLandmarkLabeling:
        """Snapshot the current labels into an immutable static oracle.

        The returned :class:`~repro.core.index.PrunedLandmarkLabeling` owns
        frozen numpy copies of the labels, so later :meth:`insert_edge` /
        :meth:`remove_edge` calls on this dynamic oracle do not affect it.
        This is the bridge between the writable index and the lock-free read
        path of the serving subsystem: updates are applied here, then
        :meth:`freeze` publishes an immutable view (see
        :class:`repro.serving.snapshot.SnapshotManager`).

        With ``diff`` (the default), only the labels of vertices dirtied
        since the previous freeze are patched into the previously frozen
        label set (:meth:`~repro.core.labels.LabelSet.patched`) — cost
        proportional to the changed labels plus a few block copies, instead
        of the O(total label entries) re-materialisation of a full freeze.
        ``diff=False`` forces the full path (the benchmark baseline).

        With ``backend`` (e.g. a shared-memory generation for the
        multi-process serving path), the frozen label arrays — and the batch
        kernel's key array, which is then always derived — are allocated
        from it: the diff path patches the dirty segments *directly into*
        the new region, never materialising an intermediate heap copy.
        """
        self._require_built()
        from repro.core.bitparallel import BitParallelLabels

        n = len(self._hubs)
        kernel = None
        # Patching costs more per vertex than bulk re-materialisation; when a
        # mutation burst has dirtied a large share of the graph, the full
        # path is the faster one.
        if diff and len(self._dirty) > n // 4:
            diff = False
        if diff and self._frozen_labels is not None:
            labels = self._frozen_labels.patched(
                {
                    vertex: (self._hubs[vertex], self._dists[vertex])
                    for vertex in self._dirty
                },
                backend=backend,
            )
            # The previous snapshot's batch kernel (if the serving layer
            # built it) is patched the same way, not rebuilt from scratch.
            base_kernel = (
                self._frozen_index._batch_kernel
                if self._frozen_index is not None
                else None
            )
            if base_kernel is not None:
                if labels is self._frozen_labels:
                    kernel = base_kernel
                else:
                    kernel = base_kernel.patched(
                        labels, self._dirty, backend=backend
                    )
        else:
            labels = LabelSet.from_lists(
                self._hubs, self._dists, self._order.copy(), backend=backend
            )
        if backend is not None and kernel is None:
            # A shared snapshot always carries its kernel, so attaching
            # worker processes never pay the O(total entries) derivation.
            kernel = BatchQueryKernel(labels, backend=backend)
        self._frozen_labels = labels
        self._dirty = set()

        static = PrunedLandmarkLabeling(
            ordering=self.ordering, num_bit_parallel_roots=0, seed=self.seed
        )
        static._labels = labels
        static._bit_parallel = BitParallelLabels.make_empty(n)
        static._order = labels.order
        static._graph = None
        static._batch_kernel = kernel
        self._frozen_index = static
        return static

    def graph_snapshot(self) -> Graph:
        """The current (inserted-into) graph as an immutable CSR :class:`Graph`."""
        self._require_built()
        edges = [
            (u, v)
            for u in range(len(self._adjacency))
            for v in self._adjacency[u]
            if u < v
        ]
        return Graph(len(self._adjacency), edges)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def average_label_size(self) -> float:
        """Average number of label entries per vertex."""
        self._require_built()
        n = len(self._hubs)
        if n == 0:
            return 0.0
        return sum(len(h) for h in self._hubs) / n

    def label_of(self, vertex: int) -> List[Tuple[int, int]]:
        """Label entries of one vertex as ``(hub_vertex, distance)`` pairs."""
        self._require_built()
        self._validate_vertex(vertex)
        return [
            (int(self._order[h]), int(d))
            for h, d in zip(self._hubs[vertex], self._dists[vertex])
        ]

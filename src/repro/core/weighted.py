"""Weighted graphs: pruned landmark labeling via pruned Dijkstra (Section 6).

The only change relative to the unweighted construction is that each labeling
pass runs Dijkstra's algorithm instead of a BFS, pruning a vertex when it is
*settled* (popped from the priority queue with its final distance) and the
existing index already certifies a distance no larger than the settled one.
Bit-parallel labels are not applicable to weighted graphs (the mask trick
relies on distances differing by at most one between a root and its
neighbours), exactly as the paper notes.

Distances here are ``float64`` throughout; the class also works on unweighted
graphs, where it degenerates to the BFS-based index with slightly more
overhead.
"""

from __future__ import annotations

import heapq
import time
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import IndexBuildError, IndexStateError
from repro.graph.csr import Graph
from repro.graph.ordering import compute_order

__all__ = ["WeightedLabelSet", "WeightedPrunedLandmarkLabeling"]


class WeightedLabelSet:
    """Frozen 2-hop labels with real-valued distances."""

    __slots__ = ("_indptr", "_hubs", "_dists", "_order")

    def __init__(
        self,
        indptr: np.ndarray,
        hubs: np.ndarray,
        dists: np.ndarray,
        order: np.ndarray,
    ) -> None:
        self._indptr = np.asarray(indptr, dtype=np.int64)
        self._hubs = np.asarray(hubs, dtype=np.int32)
        self._dists = np.asarray(dists, dtype=np.float64)
        self._order = np.asarray(order, dtype=np.int64)

    @property
    def num_vertices(self) -> int:
        """Number of vertices covered."""
        return self._indptr.shape[0] - 1

    @property
    def order(self) -> np.ndarray:
        """Vertex processing order (rank -> vertex id)."""
        return self._order

    def label_sizes(self) -> np.ndarray:
        """Number of label entries per vertex."""
        return np.diff(self._indptr)

    def average_label_size(self) -> float:
        """Average label entries per vertex."""
        if self.num_vertices == 0:
            return 0.0
        return float(self._hubs.shape[0]) / self.num_vertices

    def nbytes(self) -> int:
        """Approximate in-memory size in bytes."""
        return int(self._indptr.nbytes + self._hubs.nbytes + self._dists.nbytes)

    def vertex_label(self, vertex: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(hub_ranks, distances)`` views for one vertex."""
        start, end = self._indptr[vertex], self._indptr[vertex + 1]
        return self._hubs[start:end], self._dists[start:end]

    def query(self, s: int, t: int) -> float:
        """Minimum ``d(s, w) + d(w, t)`` over common hubs (``inf`` if disjoint)."""
        s_hubs, s_dists = self.vertex_label(s)
        t_hubs, t_dists = self.vertex_label(t)
        if s_hubs.shape[0] == 0 or t_hubs.shape[0] == 0:
            return float("inf")
        _, s_idx, t_idx = np.intersect1d(
            s_hubs, t_hubs, assume_unique=True, return_indices=True
        )
        if s_idx.shape[0] == 0:
            return float("inf")
        return float((s_dists[s_idx] + t_dists[t_idx]).min())


class WeightedPrunedLandmarkLabeling:
    """Exact distance oracle for weighted (or unweighted) undirected graphs.

    Parameters
    ----------
    ordering:
        Vertex ordering strategy name; Degree remains a good default because
        hub quality depends mostly on topology, not on edge weights.
    seed:
        Seed for randomised orderings.

    Examples
    --------
    >>> from repro.generators import grid_graph
    >>> graph = grid_graph(8, 8, weighted=True, seed=3)
    >>> oracle = WeightedPrunedLandmarkLabeling().build(graph)
    >>> round(oracle.distance(0, 63), 6) > 0
    True
    """

    def __init__(self, *, ordering: str = "degree", seed: int = 0) -> None:
        self.ordering = ordering
        self.seed = seed
        self._labels: Optional[WeightedLabelSet] = None
        self._graph: Optional[Graph] = None
        self._build_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def build(
        self, graph: Graph, *, order: Optional[Sequence[int]] = None
    ) -> "WeightedPrunedLandmarkLabeling":
        """Run a pruned Dijkstra from every vertex and freeze the labels."""
        if graph.directed:
            raise IndexBuildError(
                "WeightedPrunedLandmarkLabeling expects an undirected graph; "
                "use DirectedPrunedLandmarkLabeling for directed graphs"
            )
        n = graph.num_vertices
        if order is not None:
            order_array = np.asarray(order, dtype=np.int64)
            if order_array.shape[0] != n or np.any(
                np.sort(order_array) != np.arange(n)
            ):
                raise IndexBuildError("order must be a permutation of all vertices")
        else:
            order_array = compute_order(graph, self.ordering, seed=self.seed)

        start_time = time.perf_counter()
        label_hubs: List[List[int]] = [[] for _ in range(n)]
        label_dists: List[List[float]] = [[] for _ in range(n)]

        indptr, adj = graph.indptr, graph.adjacency
        weights = graph.weights
        if weights is None:
            weights = np.ones(adj.shape[0], dtype=np.float64)

        # Temporary root-label array indexed by hub rank (the "T" array of
        # Section 4.5.1), reset entry-by-entry after every Dijkstra run.
        temp = np.full(n, np.inf, dtype=np.float64)

        for k in range(n):
            root = int(order_array[k])

            touched: List[int] = []
            for hub, dist in zip(label_hubs[root], label_dists[root]):
                temp[hub] = dist
                touched.append(hub)

            settled_dist = {}
            heap: List[Tuple[float, int]] = [(0.0, root)]
            while heap:
                d, u = heapq.heappop(heap)
                if u in settled_dist:
                    continue
                settled_dist[u] = d

                # Prune test against the current index (hubs of rank < k).
                hubs_u = label_hubs[u]
                dists_u = label_dists[u]
                pruned = False
                for i in range(len(hubs_u)):
                    if dists_u[i] + temp[hubs_u[i]] <= d + 1e-12:
                        pruned = True
                        break
                if pruned:
                    continue

                label_hubs[u].append(k)
                label_dists[u].append(d)

                start, end = indptr[u], indptr[u + 1]
                for idx in range(start, end):
                    v = int(adj[idx])
                    if v in settled_dist:
                        continue
                    heapq.heappush(heap, (d + float(weights[idx]), v))

            for hub in touched:
                temp[hub] = np.inf

        sizes = np.array([len(h) for h in label_hubs], dtype=np.int64)
        label_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(sizes, out=label_indptr[1:])
        flat_hubs = np.empty(int(label_indptr[-1]), dtype=np.int32)
        flat_dists = np.empty(int(label_indptr[-1]), dtype=np.float64)
        for v in range(n):
            start, end = label_indptr[v], label_indptr[v + 1]
            flat_hubs[start:end] = label_hubs[v]
            flat_dists[start:end] = label_dists[v]

        self._labels = WeightedLabelSet(
            label_indptr, flat_hubs, flat_dists, order_array
        )
        self._graph = graph
        self._build_seconds = time.perf_counter() - start_time
        return self

    # ------------------------------------------------------------------ #
    # Queries and introspection
    # ------------------------------------------------------------------ #

    @property
    def built(self) -> bool:
        """Whether the index has been built."""
        return self._labels is not None

    def _require_built(self) -> None:
        if not self.built:
            raise IndexStateError("the index has not been built yet; call build()")

    def distance(self, s: int, t: int) -> float:
        """Exact weighted shortest-path distance (``inf`` if disconnected)."""
        self._require_built()
        if s == t:
            return 0.0
        return self._labels.query(s, t)

    def distances(self, pairs: Iterable[Tuple[int, int]]) -> np.ndarray:
        """Distances for a batch of ``(s, t)`` pairs."""
        self._require_built()
        pairs = list(pairs)
        result = np.empty(len(pairs), dtype=np.float64)
        for i, (s, t) in enumerate(pairs):
            result[i] = self.distance(int(s), int(t))
        return result

    @property
    def label_set(self) -> WeightedLabelSet:
        """The frozen weighted labels."""
        self._require_built()
        return self._labels

    def average_label_size(self) -> float:
        """Average number of label entries per vertex."""
        self._require_built()
        return self._labels.average_label_size()

    def index_size_bytes(self) -> int:
        """Approximate in-memory index size in bytes."""
        self._require_built()
        return self._labels.nbytes()

    @property
    def build_seconds(self) -> float:
        """Wall-clock seconds spent in :meth:`build`."""
        return self._build_seconds

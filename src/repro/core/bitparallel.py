"""Bit-parallel labeling (Section 5 of the paper).

A *bit-parallel BFS* covers a root ``r`` together with up to ``b`` of its
neighbours ``S_r`` in a single traversal: along with the distance from ``r``
it propagates, for every vertex ``v``, two ``b``-bit masks encoding which
members of ``S_r`` are one step *closer* than ``r`` (``S_r^{-1}(v)``) and
which are at the *same* distance (``S_r^0(v)``).  A single label entry then
answers the minimum distance through any of the ``b + 1`` vertices
``{r} ∪ S_r`` in O(1) time with two bitwise ANDs (Section 5.3).

The paper uses the machine word (``b = 64``); we store the masks in numpy
``uint64`` arrays, so the same bound applies, and all mask updates are
performed with vectorised ``bitwise_or`` scatter operations so that the
traversal cost is paid per BFS level rather than per edge in the interpreter.

The pruned-labeling driver (:mod:`repro.core.pruned`) consumes two things from
this module: the frozen :class:`BitParallelLabels` container (part of the
final index, used at query time) and :func:`query_upper_bounds_for_root`,
which evaluates the bit-parallel distance bound for a whole BFS frontier at
once during the prune test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import IndexBuildError
from repro.graph.csr import Graph

__all__ = [
    "BP_INF",
    "WORD_BITS",
    "BitParallelLabels",
    "bit_parallel_bfs",
    "select_bit_parallel_roots",
    "build_bit_parallel_labels",
    "query_upper_bounds_for_root",
]

#: Number of bits per mask word (the paper's ``b``).
WORD_BITS = 64

#: Sentinel distance meaning "unreachable" in bit-parallel distance arrays.
BP_INF = np.iinfo(np.uint16).max


@dataclass
class BitParallelLabels:
    """Frozen bit-parallel labels for ``t`` roots over ``n`` vertices.

    Attributes
    ----------
    roots:
        The ``t`` root vertices, in the order their BFSs were performed.
    root_sets:
        For each root, the list of neighbour vertices forming ``S_r`` (at most
        :data:`WORD_BITS` of them); bit ``i`` of the masks refers to
        ``root_sets[k][i]``.
    dist:
        ``(t, n)`` ``uint16`` array of distances from each root
        (:data:`BP_INF` when unreachable).
    s_minus:
        ``(t, n)`` ``uint64`` masks of ``S_r`` members one step closer than the
        root.
    s_zero:
        ``(t, n)`` ``uint64`` masks of ``S_r`` members at the same distance as
        the root.
    """

    roots: np.ndarray
    root_sets: List[List[int]]
    dist: np.ndarray
    s_minus: np.ndarray
    s_zero: np.ndarray

    @property
    def num_roots(self) -> int:
        """Number of bit-parallel BFSs stored."""
        return int(self.roots.shape[0])

    @property
    def num_vertices(self) -> int:
        """Number of vertices covered."""
        return int(self.dist.shape[1]) if self.dist.ndim == 2 else 0

    def covered_vertices(self) -> np.ndarray:
        """All vertices used as a root or a set member (they need no normal BFS)."""
        members = [int(r) for r in self.roots]
        for group in self.root_sets:
            members.extend(int(v) for v in group)
        return np.unique(np.asarray(members, dtype=np.int64))

    def nbytes(self) -> int:
        """Approximate in-memory size of the label arrays in bytes."""
        return int(self.dist.nbytes + self.s_minus.nbytes + self.s_zero.nbytes)

    def query(self, s: int, t: int) -> float:
        """Minimum distance between ``s`` and ``t`` through any covered hub.

        Implements the O(1)-per-root test of Section 5.3, vectorised over all
        roots.  Returns ``inf`` when no root reaches both endpoints.
        """
        if self.num_roots == 0:
            return float("inf")
        d_s = self.dist[:, s].astype(np.int64)
        d_t = self.dist[:, t].astype(np.int64)
        candidate = d_s + d_t
        unreachable = (d_s == BP_INF) | (d_t == BP_INF)

        minus_and_minus = (self.s_minus[:, s] & self.s_minus[:, t]) != 0
        cross = (
            (self.s_minus[:, s] & self.s_zero[:, t]) != 0
        ) | ((self.s_zero[:, s] & self.s_minus[:, t]) != 0)

        candidate = candidate - np.where(minus_and_minus, 2, np.where(cross, 1, 0))
        candidate = np.where(unreachable, np.iinfo(np.int64).max, candidate)
        best = int(candidate.min())
        return float("inf") if best >= BP_INF else float(best)

    def query_pairs(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Distance bounds for aligned ``sources[i], targets[i]`` pairs.

        The batched counterpart of :meth:`query`: the per-root O(1) test of
        Section 5.3 is evaluated for every pair of the batch with a handful of
        fancy-indexing operations (shape ``(num_roots, batch)``), so the cost
        per pair is a few machine operations per root.  Returns ``inf`` where
        no root reaches both endpoints.
        """
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.shape != targets.shape:
            raise ValueError("sources and targets must have the same length")
        if self.num_roots == 0 or sources.shape[0] == 0:
            return np.full(sources.shape[0], np.inf, dtype=np.float64)

        d_s = self.dist[:, sources].astype(np.int64)
        d_t = self.dist[:, targets].astype(np.int64)
        candidate = d_s + d_t
        unreachable = (d_s == BP_INF) | (d_t == BP_INF)

        minus_and_minus = (self.s_minus[:, sources] & self.s_minus[:, targets]) != 0
        cross = (
            (self.s_minus[:, sources] & self.s_zero[:, targets]) != 0
        ) | ((self.s_zero[:, sources] & self.s_minus[:, targets]) != 0)

        candidate = candidate - np.where(minus_and_minus, 2, np.where(cross, 1, 0))
        candidate = np.where(unreachable, np.iinfo(np.int64).max // 4, candidate)
        best = candidate.min(axis=0)
        result = best.astype(np.float64)
        result[best >= BP_INF] = np.inf
        return result

    def query_one_to_many(
        self, source: int, targets: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Distance bounds from ``source`` to many targets in one vectorised pass.

        Companion of :meth:`repro.core.labels.LabelSet.query_one_to_many` for
        the bit-parallel part of an index.  Returns ``inf`` entries when there
        are no bit-parallel labels.
        """
        if targets is None:
            target_array = np.arange(self.num_vertices, dtype=np.int64)
        else:
            target_array = np.asarray(targets, dtype=np.int64)
        if self.num_roots == 0:
            return np.full(target_array.shape[0], np.inf, dtype=np.float64)
        bounds = query_upper_bounds_for_root(self, source, target_array)
        result = bounds.astype(np.float64)
        result[bounds >= BP_INF] = np.inf
        return result

    def empty(self) -> bool:
        """Whether there are no bit-parallel labels at all."""
        return self.num_roots == 0

    @staticmethod
    def make_empty(num_vertices: int) -> "BitParallelLabels":
        """A zero-root container for indexes built without bit-parallel labels."""
        return BitParallelLabels(
            roots=np.zeros(0, dtype=np.int64),
            root_sets=[],
            dist=np.zeros((0, num_vertices), dtype=np.uint16),
            s_minus=np.zeros((0, num_vertices), dtype=np.uint64),
            s_zero=np.zeros((0, num_vertices), dtype=np.uint64),
        )


def _frontier_edges(
    indptr: np.ndarray, adj: np.ndarray, frontier: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """All (origin, target) pairs with origin in the frontier."""
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=adj.dtype),
        )
    base = np.repeat(starts, counts)
    within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    origins = np.repeat(frontier, counts)
    return origins, adj[base + within]


def bit_parallel_bfs(
    graph: Graph,
    root: int,
    sub_roots: Sequence[int],
    *,
    reverse: bool = False,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One bit-parallel BFS (Algorithm 3 of the paper).

    Parameters
    ----------
    graph:
        The (unweighted) graph.
    root:
        The root vertex ``r``.
    sub_roots:
        Up to :data:`WORD_BITS` *neighbours* of the root forming ``S_r``.
        Bit ``i`` of the returned masks refers to ``sub_roots[i]``.
    reverse:
        Traverse incoming edges (used by the directed variant).

    Returns
    -------
    (dist, s_minus, s_zero):
        Arrays of length ``n``: ``uint16`` distances from the root
        (:data:`BP_INF` when unreachable) and the two ``uint64`` masks.
    """
    n = graph.num_vertices
    sub_roots = [int(v) for v in sub_roots]
    if len(sub_roots) > WORD_BITS:
        raise IndexBuildError(
            f"at most {WORD_BITS} sub-roots per bit-parallel BFS, got {len(sub_roots)}"
        )
    neighbor_set = set(int(v) for v in graph.neighbors(root))
    for v in sub_roots:
        if v not in neighbor_set:
            raise IndexBuildError(
                f"sub-root {v} is not a neighbour of bit-parallel root {root}"
            )
    if len(set(sub_roots)) != len(sub_roots):
        raise IndexBuildError("sub-roots must be distinct")

    indptr = graph.rev_indptr if reverse else graph.indptr
    adj = graph.rev_adjacency if reverse else graph.adjacency

    dist = np.full(n, BP_INF, dtype=np.uint16)
    s_minus = np.zeros(n, dtype=np.uint64)
    s_zero = np.zeros(n, dtype=np.uint64)

    dist[root] = 0
    for bit, v in enumerate(sub_roots):
        dist[v] = 1
        s_minus[v] |= np.uint64(1) << np.uint64(bit)

    frontier = np.array([root], dtype=np.int64)
    level = 0
    # Vertices already at distance 1 (the sub-roots) join the next frontier.
    pending_next = np.array(sorted(set(sub_roots)), dtype=np.int64)

    while frontier.size:
        origins, targets = _frontier_edges(indptr, adj, frontier)
        if origins.size:
            target_dist = dist[targets]

            # Discover new vertices at distance level + 1.
            undiscovered = target_dist == BP_INF
            fresh = np.unique(targets[undiscovered]) if undiscovered.any() else None
            if fresh is not None and fresh.size:
                dist[fresh] = level + 1

            # E0: edges within the current level; applied before E1 so that the
            # same-level contributions are visible to the next level (the order
            # Algorithm 3 prescribes).
            same_level = target_dist == level
            if same_level.any():
                np.bitwise_or.at(
                    s_zero, targets[same_level], s_minus[origins[same_level]]
                )

            # E1: edges into the next level (both newly discovered targets and
            # targets discovered earlier in this very level by another origin).
            next_level = dist[targets] == level + 1
            if next_level.any():
                e1_targets = targets[next_level]
                e1_origins = origins[next_level]
                np.bitwise_or.at(s_minus, e1_targets, s_minus[e1_origins])
                np.bitwise_or.at(s_zero, e1_targets, s_zero[e1_origins])

            next_frontier = np.unique(targets[dist[targets] == level + 1])
        else:
            next_frontier = np.empty(0, dtype=np.int64)

        if pending_next.size:
            next_frontier = np.unique(np.concatenate([next_frontier, pending_next]))
            pending_next = np.empty(0, dtype=np.int64)
        frontier = next_frontier.astype(np.int64)
        level += 1

    # The level-synchronous DP can place a sub-root in S^0(v) when it actually
    # belongs to S^{-1}(v) (the paper's recurrence has the same slack, and the
    # query remains correct because the S^{-1} test takes priority).  Normalise
    # to the exact set definition so the masks are disjoint, as in Section 5.1.
    s_zero &= ~s_minus
    return dist, s_minus, s_zero


def select_bit_parallel_roots(
    graph: Graph,
    order: np.ndarray,
    num_roots: int,
    *,
    max_bits: int = WORD_BITS,
) -> List[Tuple[int, List[int]]]:
    """Greedy root/sub-root selection for the bit-parallel phase (Section 5.4).

    Walking the vertex order (highest priority first), each still-unused vertex
    becomes a root and grabs up to ``max_bits`` of its still-unused neighbours
    (again in priority order) as its ``S_r``.  Both the root and the grabbed
    neighbours are marked used so later bit-parallel BFSs pick fresh hubs.

    Returns fewer than ``num_roots`` pairs when the graph runs out of unused
    vertices.
    """
    if max_bits > WORD_BITS:
        raise IndexBuildError(f"max_bits cannot exceed {WORD_BITS}")
    n = graph.num_vertices
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n)
    used = np.zeros(n, dtype=bool)
    selections: List[Tuple[int, List[int]]] = []

    for vertex in order:
        if len(selections) >= num_roots:
            break
        vertex = int(vertex)
        if used[vertex]:
            continue
        used[vertex] = True
        neighbors = graph.neighbors(vertex)
        candidates = neighbors[~used[neighbors]]
        if candidates.size:
            # Highest priority (lowest rank) neighbours first.
            priority = np.argsort(rank[candidates], kind="stable")
            chosen = candidates[priority][:max_bits]
        else:
            chosen = np.empty(0, dtype=np.int64)
        chosen_list = [int(v) for v in chosen]
        used[chosen] = True
        selections.append((vertex, chosen_list))
    return selections


def build_bit_parallel_labels(
    graph: Graph,
    order: np.ndarray,
    num_roots: int,
    *,
    max_bits: int = WORD_BITS,
) -> BitParallelLabels:
    """Run ``num_roots`` bit-parallel BFSs with greedy root selection."""
    n = graph.num_vertices
    if num_roots <= 0:
        return BitParallelLabels.make_empty(n)
    selections = select_bit_parallel_roots(
        graph, order, num_roots, max_bits=max_bits
    )
    t = len(selections)
    dist = np.full((t, n), BP_INF, dtype=np.uint16)
    s_minus = np.zeros((t, n), dtype=np.uint64)
    s_zero = np.zeros((t, n), dtype=np.uint64)
    roots = np.zeros(t, dtype=np.int64)
    root_sets: List[List[int]] = []
    for i, (root, sub_roots) in enumerate(selections):
        roots[i] = root
        root_sets.append(sub_roots)
        dist[i], s_minus[i], s_zero[i] = bit_parallel_bfs(graph, root, sub_roots)
    return BitParallelLabels(
        roots=roots, root_sets=root_sets, dist=dist, s_minus=s_minus, s_zero=s_zero
    )


def query_upper_bounds_for_root(
    bp: BitParallelLabels, root: int, vertices: np.ndarray
) -> np.ndarray:
    """Bit-parallel distance bounds between ``root`` and each of ``vertices``.

    Used for the prune test of the pruned-BFS phase: the whole frontier is
    evaluated with a handful of vectorised operations.  Returns an ``int64``
    array where unreachable combinations hold a value ``>= BP_INF``.
    """
    if bp.num_roots == 0 or vertices.size == 0:
        return np.full(vertices.shape[0], np.iinfo(np.int64).max // 4, dtype=np.int64)

    d_root = bp.dist[:, root].astype(np.int64)[:, None]          # (t, 1)
    m_root = bp.s_minus[:, root][:, None]                        # (t, 1)
    z_root = bp.s_zero[:, root][:, None]                         # (t, 1)

    d_vs = bp.dist[:, vertices].astype(np.int64)                 # (t, k)
    candidate = d_root + d_vs
    unreachable = (d_root == BP_INF) | (d_vs == BP_INF)

    minus_minus = (m_root & bp.s_minus[:, vertices]) != 0
    cross = ((m_root & bp.s_zero[:, vertices]) != 0) | (
        (z_root & bp.s_minus[:, vertices]) != 0
    )
    candidate = candidate - np.where(minus_minus, 2, np.where(cross, 1, 0))
    candidate = np.where(unreachable, np.iinfo(np.int64).max // 4, candidate)
    return candidate.min(axis=0)

"""The always-available numpy baseline kernel.

This is the exact code that lived in ``BatchQueryKernel.query_pairs``,
``LabelSet.query_one_to_many`` and the dynamic oracle's vectorised rooted
probe before the kernel seam existed, extracted verbatim so that every other
backend has a byte-identical reference to match.  Nothing here may change
behaviour: the whole kernel layer's correctness story is "identical to the
numpy baseline, which is identical to the pre-kernel code".
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.kernels.base import (
    CAP_ONE_TO_MANY,
    CAP_QUERY_PAIRS,
    CAP_ROOTED_PROBE,
    KernelBackend,
)

__all__ = ["NumpyKernel", "NO_HUB"]

#: Sentinel for "no common hub" in pair sums; far above any reachable label
#: sum (which is bounded by ``2 * INF_DISTANCE``).
NO_HUB = np.int64(np.iinfo(np.int64).max // 4)


class NumpyKernel(KernelBackend):
    """Pure-numpy batch kernel: the portable baseline every backend must match."""

    name = "numpy"
    capabilities = frozenset({CAP_QUERY_PAIRS, CAP_ONE_TO_MANY, CAP_ROOTED_PROBE})
    priority = 0

    def query_pairs(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Label distances for aligned ``sources[i], targets[i]`` pairs.

        Returns a ``float64`` array (``inf`` where no common hub exists).
        Inputs must be in-range vertex ids; callers validate.
        """
        data = self._data
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.shape != targets.shape:
            raise ValueError("sources and targets must have the same length")
        num_pairs = sources.shape[0]
        result = np.full(num_pairs, np.inf, dtype=np.float64)
        if num_pairs == 0:
            return result

        # Enumerate the smaller label of each pair, probe the larger one.
        swap = data.sizes[targets] < data.sizes[sources]
        probe_side = np.where(swap, sources, targets)
        enum_side = np.where(swap, targets, sources)
        enum_sizes = data.sizes[enum_side]
        total = int(enum_sizes.sum())
        if total == 0:
            return result

        # Ragged gather of every label entry of the enumerated endpoints.
        group_starts = np.concatenate(([0], np.cumsum(enum_sizes)[:-1]))
        offsets = np.arange(total, dtype=np.int64) - np.repeat(group_starts, enum_sizes)
        flat = np.repeat(data.indptr[enum_side], enum_sizes) + offsets
        # Upcast here so the uint16 label distances cannot wrap when summed.
        enum_dists = data.dists[flat].astype(np.int64)

        # One binary search per entry against the probe endpoint's label.
        probe_keys = (
            np.repeat(probe_side, enum_sizes) * data.stride + data.hub_ranks[flat]
        )
        positions = np.searchsorted(data.keys, probe_keys)
        positions = np.minimum(positions, data.keys.shape[0] - 1)
        matched = data.keys[positions] == probe_keys
        sums = np.where(matched, enum_dists + data.dists[positions], NO_HUB)

        # Per-pair minima.  Empty groups are excluded from the reduceat index
        # list entirely: clipping them into range would silently truncate the
        # preceding group's reduce window (reduceat windows end at the next
        # index, whatever group it belongs to).
        nonempty = enum_sizes > 0
        minima = np.minimum.reduceat(sums, group_starts[nonempty])
        found = minima < NO_HUB
        targets_of = np.flatnonzero(nonempty)[found]
        result[targets_of] = minima[found].astype(np.float64)
        return result

    def query_one_to_many(
        self, source: int, targets: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Distances from one source to many targets in one vectorised pass.

        The query-time analogue of the construction-time "targeted" evaluator
        (paper Section 4.5.1): the source's label is scattered into a
        rank-indexed array once, after which every label entry of every
        target contributes via flat numpy operations.  Matches
        :meth:`LabelSet.query_one_to_many` numerics exactly; the
        ``source == target`` zeroing is the caller's business.
        """
        data = self._data
        s0, s1 = data.indptr[source], data.indptr[source + 1]
        source_hubs = data.hub_ranks[s0:s1]
        source_dists = data.dists[s0:s1]
        num_ranks = data.num_vertices
        temp = np.full(num_ranks, np.inf, dtype=np.float64)
        temp[source_hubs] = source_dists

        if targets is None:
            flat_hubs = data.hub_ranks
            flat_dists = data.dists
            sizes = data.sizes
            starts = data.indptr[:-1]
        else:
            target_array = np.asarray(list(targets), dtype=np.int64)
            sizes = data.sizes[target_array]
            total = int(sizes.sum())
            # Ragged gather of the target labels (same construction as the
            # pair kernel; elementwise identical to a per-target copy loop).
            starts = np.zeros(sizes.shape[0], dtype=np.int64)
            np.cumsum(sizes[:-1], out=starts[1:])
            offsets = np.arange(total, dtype=np.int64) - np.repeat(starts, sizes)
            flat = np.repeat(data.indptr[target_array], sizes) + offsets
            flat_hubs = data.hub_ranks[flat]
            flat_dists = data.dists[flat]

        if flat_hubs.shape[0] == 0:
            return np.full(sizes.shape[0], np.inf, dtype=np.float64)

        contributions = flat_dists.astype(np.float64) + temp[flat_hubs]
        # Per-target minimum via reduceat.  Empty label segments are excluded
        # from the index list entirely: clipping their starts into range would
        # truncate the reduce window of the last non-empty segment (reduceat
        # windows end at the next index, whatever segment it belongs to).
        nonempty = sizes > 0
        minima = np.minimum.reduceat(contributions, starts[nonempty])
        result = np.full(sizes.shape[0], np.inf, dtype=np.float64)
        result[np.flatnonzero(nonempty)] = minima
        return result

    @classmethod
    def rooted_probe(
        cls,
        flat_hubs: np.ndarray,
        flat_dists: np.ndarray,
        starts: np.ndarray,
        sizes: np.ndarray,
        temp: np.ndarray,
        max_rank: int,
        sentinel: int,
    ) -> np.ndarray:
        """Batched rooted evaluator over an attached root (Section 4.5.1)."""
        count = sizes.shape[0]
        result = np.full(count, sentinel, dtype=np.int64)
        if flat_hubs.shape[0] == 0:
            return result
        contributions = flat_dists + temp[flat_hubs]
        # Out-of-rank hubs and missing common hubs both collapse onto the
        # sentinel so reduceat minima read "no qualifying hub" directly.
        contributions = np.minimum(contributions, sentinel)
        contributions[flat_hubs > max_rank] = sentinel
        # Empty label segments are excluded from the reduceat index list
        # entirely (clipping would truncate the preceding window).
        nonempty = sizes > 0
        minima = np.minimum.reduceat(contributions, starts[nonempty])
        result[np.flatnonzero(nonempty)] = minima
        return result

"""Cache-friendly narrow-dtype kernel (uint32 keys, uint8 distances).

The baseline kernel's memory traffic is dominated by the ``int64`` key array
it binary-searches and the ``float64``-width temporaries it sums into.  When
the frozen index is small enough — ``n**2`` keys fit ``uint32`` and the
diameter fits ``uint8`` (:data:`~repro.core.kernels.base.NARROW_MAX_DISTANCE`)
— the same merge-join runs over arrays a quarter the width, which roughly
quadruples the useful work per cache line.  The decision is made once per
generation at ``freeze()`` time (:func:`~repro.core.kernels.base.plan_dtypes`)
and recorded in the layout metadata, so attaching workers reuse the stored
narrow arrays instead of re-deriving them.

Two derived layouts are kept alongside the wide label arrays:

* vertex-major: ``kernel_keys32`` / ``kernel_dists8`` — the narrow twins of
  the ``int64`` key array and ``uint16`` distance array, used by the
  pair merge-join (searchsorted) and the subset one-to-many evaluator.
* hub-major: ``kernel_hub_indptr`` / ``kernel_hub_owners`` /
  ``kernel_hub_dists8`` — every label entry regrouped by hub rank, so the
  full one-to-many scan walks one contiguous block per source hub instead
  of scattering through a rank-indexed temporary per target entry.

All results are byte-identical to :class:`~repro.core.kernels.numpy_kernel.
NumpyKernel`: the narrow sums are exact small integers, converted to the
same ``float64`` values at the end.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.kernels.base import (
    CAP_NARROW_LAYOUT,
    CAP_ONE_TO_MANY,
    CAP_QUERY_PAIRS,
    CAP_ROOTED_PROBE,
    KernelData,
    KernelUnavailableError,
)
from repro.core.kernels.numpy_kernel import NumpyKernel

__all__ = [
    "NarrowKernel",
    "derive_narrow_fields",
    "derive_hub_major_fields",
    "FIELD_KERNEL_KEYS32",
    "FIELD_KERNEL_DISTS8",
    "FIELD_KERNEL_HUB_INDPTR",
    "FIELD_KERNEL_HUB_OWNERS",
    "FIELD_KERNEL_HUB_DISTS8",
    "NARROW_FIELDS",
]

#: Backend field names of the narrow-layout arrays (shared with the raw and
#: shared-memory snapshot exports; see :mod:`repro.core.storage`).
FIELD_KERNEL_KEYS32 = "kernel_keys32"
FIELD_KERNEL_DISTS8 = "kernel_dists8"
FIELD_KERNEL_HUB_INDPTR = "kernel_hub_indptr"
FIELD_KERNEL_HUB_OWNERS = "kernel_hub_owners"
FIELD_KERNEL_HUB_DISTS8 = "kernel_hub_dists8"

#: All narrow-layout field names, in storage order.
NARROW_FIELDS = (
    FIELD_KERNEL_KEYS32,
    FIELD_KERNEL_DISTS8,
    FIELD_KERNEL_HUB_INDPTR,
    FIELD_KERNEL_HUB_OWNERS,
    FIELD_KERNEL_HUB_DISTS8,
)

#: "No common hub" sentinel for narrow uint16 sums; real sums are bounded by
#: ``2 * NARROW_MAX_DISTANCE = 508``.
_NO_HUB_16 = np.uint16(np.iinfo(np.uint16).max)

#: "Hub absent from the source label" sentinel for the uint16 scatter
#: temporary: large enough to dominate every real sum, small enough that
#: ``sentinel + NARROW_MAX_DISTANCE`` cannot wrap uint16 (0xFE00 + 254 < 2**16).
_TEMP_SENTINEL_16 = np.uint16(0xFE00)


def derive_vertex_major_fields(
    keys: np.ndarray, dists: np.ndarray
) -> Dict[str, np.ndarray]:
    """Narrow twins of the vertex-major key/distance arrays (cheap astype)."""
    return {
        FIELD_KERNEL_KEYS32: keys.astype(np.uint32),
        FIELD_KERNEL_DISTS8: dists.astype(np.uint8),
    }


def derive_hub_major_fields(
    keys: np.ndarray,
    hub_ranks: np.ndarray,
    dists: np.ndarray,
    stride: int,
    num_vertices: int,
) -> Dict[str, np.ndarray]:
    """Regroup every label entry by hub rank into contiguous blocks.

    A stable argsort on hub rank keeps owners ascending within each hub
    block (entries are vertex-major on input), which makes the per-hub
    scatter in :meth:`NarrowKernel.query_one_to_many` a gather over an
    increasing index — the cache-friendly direction.
    """
    perm = np.argsort(hub_ranks, kind="stable")
    hub_owners = (keys[perm] // np.int64(max(stride, 1))).astype(np.uint32)
    hub_dists8 = dists.astype(np.uint8)[perm]
    counts = np.bincount(hub_ranks, minlength=num_vertices)
    hub_indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=hub_indptr[1:])
    return {
        FIELD_KERNEL_HUB_INDPTR: hub_indptr,
        FIELD_KERNEL_HUB_OWNERS: hub_owners,
        FIELD_KERNEL_HUB_DISTS8: hub_dists8,
    }


def derive_narrow_fields(
    keys: np.ndarray,
    hub_ranks: np.ndarray,
    dists: np.ndarray,
    stride: int,
    num_vertices: int,
) -> Dict[str, np.ndarray]:
    """All five narrow-layout arrays, ready to store alongside a generation."""
    fields = derive_vertex_major_fields(keys, dists)
    fields.update(
        derive_hub_major_fields(keys, hub_ranks, dists, stride, num_vertices)
    )
    return fields


class NarrowKernel(NumpyKernel):
    """Narrow-dtype numpy kernel (inherits the baseline rooted probe)."""

    name = "narrow"
    capabilities = frozenset(
        {CAP_QUERY_PAIRS, CAP_ONE_TO_MANY, CAP_ROOTED_PROBE, CAP_NARROW_LAYOUT}
    )
    priority = 10

    @classmethod
    def supports(cls, data: KernelData) -> bool:
        """Narrow layout requires the per-generation dtype plan to allow it."""
        return data.plan.narrow

    def __init__(self, data: KernelData) -> None:
        if not data.plan.narrow:
            raise KernelUnavailableError(
                "kernel 'narrow' requires a narrow dtype plan "
                f"(max label distance {data.plan.max_distance} with "
                f"{data.num_vertices} vertices does not fit uint8/uint32)"
            )
        super().__init__(data)
        # Stored generations carry the narrow arrays (they are part of the
        # per-generation layout); heap-built kernels derive the cheap
        # vertex-major twins eagerly and the hub-major regrouping lazily on
        # first full one-to-many scan (it costs an O(E log E) argsort).
        if FIELD_KERNEL_KEYS32 not in data.narrow:
            data.narrow.update(derive_vertex_major_fields(data.keys, data.dists))
        self._keys32 = data.narrow[FIELD_KERNEL_KEYS32]
        self._dists8 = data.narrow[FIELD_KERNEL_DISTS8]

    def _hub_major(self) -> Dict[str, np.ndarray]:
        """The hub-major arrays, deriving (idempotently) on first use."""
        data = self._data
        if FIELD_KERNEL_HUB_INDPTR not in data.narrow:
            data.narrow.update(
                derive_hub_major_fields(
                    data.keys,
                    data.hub_ranks,
                    data.dists,
                    int(data.stride),
                    data.num_vertices,
                )
            )
        return data.narrow

    def query_pairs(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Same merge-join as the baseline, over quarter-width arrays."""
        data = self._data
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.shape != targets.shape:
            raise ValueError("sources and targets must have the same length")
        num_pairs = sources.shape[0]
        result = np.full(num_pairs, np.inf, dtype=np.float64)
        if num_pairs == 0:
            return result

        swap = data.sizes[targets] < data.sizes[sources]
        probe_side = np.where(swap, sources, targets)
        enum_side = np.where(swap, targets, sources)
        enum_sizes = data.sizes[enum_side]
        total = int(enum_sizes.sum())
        if total == 0:
            return result

        group_starts = np.concatenate(([0], np.cumsum(enum_sizes)[:-1]))
        offsets = np.arange(total, dtype=np.int64) - np.repeat(group_starts, enum_sizes)
        flat = np.repeat(data.indptr[enum_side], enum_sizes) + offsets
        # uint16 sums cannot wrap: the narrow plan bounds each distance by
        # NARROW_MAX_DISTANCE, so sums stay <= 508.
        enum_dists = self._dists8[flat].astype(np.uint16)

        # uint32 key arithmetic cannot wrap either: the plan guarantees
        # owner * stride + hub_rank <= n**2 - 1 <= 2**32 - 1.
        probe_keys = np.repeat(probe_side.astype(np.uint32), enum_sizes) * np.uint32(
            data.stride
        ) + data.hub_ranks[flat].astype(np.uint32)
        positions = np.searchsorted(self._keys32, probe_keys)
        positions = np.minimum(positions, self._keys32.shape[0] - 1)
        matched = self._keys32[positions] == probe_keys
        sums = np.where(matched, enum_dists + self._dists8[positions], _NO_HUB_16)

        nonempty = enum_sizes > 0
        minima = np.minimum.reduceat(sums, group_starts[nonempty])
        found = minima < _NO_HUB_16
        targets_of = np.flatnonzero(nonempty)[found]
        result[targets_of] = minima[found].astype(np.float64)
        return result

    def query_one_to_many(
        self, source: int, targets: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Hub-major scan for full fan-out; narrow scatter for target subsets."""
        data = self._data
        s0, s1 = data.indptr[source], data.indptr[source + 1]
        source_hubs = data.hub_ranks[s0:s1]
        source_dists8 = self._dists8[s0:s1]

        if targets is None:
            # One contiguous block per source hub: every vertex whose label
            # contains that hub is updated with a single gather/scatter over
            # ascending owner ids.  Total work is sum over source hubs of the
            # hub's block size — the same entry count the baseline touches,
            # but sequentially instead of through a rank-indexed temporary.
            narrow = self._hub_major()
            hub_indptr = narrow[FIELD_KERNEL_HUB_INDPTR]
            hub_owners = narrow[FIELD_KERNEL_HUB_OWNERS]
            hub_dists8 = narrow[FIELD_KERNEL_HUB_DISTS8]
            best16 = np.full(data.num_vertices, _NO_HUB_16, dtype=np.uint16)
            for hub_rank, source_dist in zip(source_hubs, source_dists8):
                b0, b1 = hub_indptr[hub_rank], hub_indptr[hub_rank + 1]
                owners = hub_owners[b0:b1]
                # Owners are unique within one hub block, so the fancy-index
                # minimum cannot lose concurrent updates.
                best16[owners] = np.minimum(
                    best16[owners], hub_dists8[b0:b1] + np.uint16(source_dist)
                )
            result = np.full(data.num_vertices, np.inf, dtype=np.float64)
            found = best16 < _NO_HUB_16
            result[found] = best16[found].astype(np.float64)
            return result

        # Subset path: the baseline's scatter-and-gather with a uint16
        # temporary instead of float64 — same exact integer minima.
        temp16 = np.full(data.num_vertices, _TEMP_SENTINEL_16, dtype=np.uint16)
        temp16[source_hubs] = source_dists8
        target_array = np.asarray(list(targets), dtype=np.int64)
        sizes = data.sizes[target_array]
        total = int(sizes.sum())
        starts = np.zeros(sizes.shape[0], dtype=np.int64)
        np.cumsum(sizes[:-1], out=starts[1:])
        offsets = np.arange(total, dtype=np.int64) - np.repeat(starts, sizes)
        flat = np.repeat(data.indptr[target_array], sizes) + offsets
        flat_hubs = data.hub_ranks[flat]

        if flat_hubs.shape[0] == 0:
            return np.full(sizes.shape[0], np.inf, dtype=np.float64)

        contributions = self._dists8[flat].astype(np.uint16) + temp16[flat_hubs]
        nonempty = sizes > 0
        minima = np.minimum.reduceat(contributions, starts[nonempty])
        result = np.full(sizes.shape[0], np.inf, dtype=np.float64)
        found = minima < _TEMP_SENTINEL_16
        positions_of = np.flatnonzero(nonempty)[found]
        result[positions_of] = minima[found].astype(np.float64)
        return result

"""Optional numba-JIT kernel (guarded import, publish-time warm-up compile).

numba is an optional dependency (``pip install repro-pll[accel]``); this
module must import cleanly without it, so the import is guarded and
:meth:`NumbaKernel.available` reports the outcome.  The compiled loops are
plain nopython-compatible Python functions: without numba the undecorated
functions still run (slowly) under the interpreter, which is how the loop
*logic* stays unit-testable in numba-free CI.

Compilation happens in :meth:`NumbaKernel.__init__` via a warm-up pass over
tiny synthetic batches, i.e. at publish/build time — first request batches
never pay JIT latency.  Any compile failure raises out of the constructor,
which the selector catches and converts into a logged numpy fallback.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.kernels.base import (
    CAP_JIT,
    CAP_ONE_TO_MANY,
    CAP_QUERY_PAIRS,
    CAP_ROOTED_PROBE,
    KernelData,
    KernelUnavailableError,
)
from repro.core.kernels.numpy_kernel import NumpyKernel

__all__ = ["NumbaKernel", "numba_installed"]

try:  # pragma: no cover - exercised only on the numba CI leg
    from numba import njit as _njit

    _HAVE_NUMBA = True
except Exception:  # pragma: no cover - ImportError in the common case
    _HAVE_NUMBA = False

    def _njit(*args, **kwargs) -> Callable:
        """No-op stand-in so the loop functions below stay importable."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn: Callable) -> Callable:
            return fn

        return wrap


def numba_installed() -> bool:
    """Whether the numba import succeeded in this process."""
    return _HAVE_NUMBA


#: "No common hub" sentinel for the compiled loops; far above any reachable
#: label sum, far below int64 overflow even after adding two distances.
_JIT_NO_HUB = np.int64(1) << np.int64(40)


@_njit(cache=False)
def _query_pairs_loop(indptr, hubs, dists, sources, targets, out):
    """Two-pointer merge join per pair (the paper's Section 4.5 scan)."""
    sentinel = np.int64(1) << np.int64(40)
    for p in range(sources.shape[0]):
        s = sources[p]
        t = targets[p]
        i = indptr[s]
        i_end = indptr[s + 1]
        j = indptr[t]
        j_end = indptr[t + 1]
        best = sentinel
        while i < i_end and j < j_end:
            hub_s = hubs[i]
            hub_t = hubs[j]
            if hub_s == hub_t:
                candidate = np.int64(dists[i]) + np.int64(dists[j])
                if candidate < best:
                    best = candidate
                i += 1
                j += 1
            elif hub_s < hub_t:
                i += 1
            else:
                j += 1
        out[p] = best


@_njit(cache=False)
def _one_to_many_loop(indptr, hubs, dists, temp, target_ids, out):
    """Per-target label scan against a rank-indexed source-label temporary."""
    sentinel = np.int64(1) << np.int64(40)
    for p in range(target_ids.shape[0]):
        t = target_ids[p]
        best = sentinel
        for k in range(indptr[t], indptr[t + 1]):
            candidate = np.int64(dists[k]) + temp[hubs[k]]
            if candidate < best:
                best = candidate
        out[p] = best


@_njit(cache=False)
def _rooted_probe_loop(flat_hubs, flat_dists, starts, sizes, temp, max_rank, sentinel, out):
    """Segmented rooted evaluator with rank cutoff (early break: labels are
    rank-sorted within each vertex, so the first out-of-rank hub ends the
    segment's qualifying prefix)."""
    for p in range(sizes.shape[0]):
        best = sentinel
        for k in range(starts[p], starts[p] + sizes[p]):
            hub = flat_hubs[k]
            if hub > max_rank:
                break
            candidate = flat_dists[k] + temp[hub]
            if candidate < best:
                best = candidate
        out[p] = best


#: Set after the first rooted-probe JIT failure so subsequent repair BFSs go
#: straight to the numpy fallback instead of re-raising per batch.
_probe_broken = False


class NumbaKernel(NumpyKernel):
    """JIT-compiled merge-join kernel; byte-identical to the numpy baseline."""

    name = "numba"
    capabilities = frozenset(
        {CAP_QUERY_PAIRS, CAP_ONE_TO_MANY, CAP_ROOTED_PROBE, CAP_JIT}
    )
    priority = 20

    @classmethod
    def available(cls) -> bool:
        return _HAVE_NUMBA

    def __init__(self, data: KernelData) -> None:
        if not _HAVE_NUMBA:
            raise KernelUnavailableError(
                "kernel 'numba' requires the numba package "
                "(pip install repro-pll[accel])"
            )
        super().__init__(data)
        self._warm_up()

    def _warm_up(self) -> None:
        """Force-compile every loop at construction (publish) time.

        Calls each compiled function once with the exact dtypes the serving
        path uses, so the specialisations exist before the first request
        batch.  A compile failure propagates out of ``__init__`` and turns
        into a selector fallback.
        """
        data = self._data
        if data.num_vertices == 0:
            return
        one = np.zeros(1, dtype=np.int64)
        out = np.empty(1, dtype=np.int64)
        _query_pairs_loop(data.indptr, data.hub_ranks, data.dists, one, one, out)
        temp = np.full(data.num_vertices, _JIT_NO_HUB, dtype=np.int64)
        _one_to_many_loop(data.indptr, data.hub_ranks, data.dists, temp, one, out)
        _rooted_probe_loop(
            np.zeros(1, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            one,
            np.ones(1, dtype=np.int64),
            np.full(1, _JIT_NO_HUB, dtype=np.int64),
            0,
            _JIT_NO_HUB,
            out,
        )

    def query_pairs(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        data = self._data
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.shape != targets.shape:
            raise ValueError("sources and targets must have the same length")
        out = np.empty(sources.shape[0], dtype=np.int64)
        _query_pairs_loop(data.indptr, data.hub_ranks, data.dists, sources, targets, out)
        result = np.full(out.shape[0], np.inf, dtype=np.float64)
        found = out < _JIT_NO_HUB
        result[found] = out[found].astype(np.float64)
        return result

    def query_one_to_many(
        self, source: int, targets: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        data = self._data
        s0, s1 = data.indptr[source], data.indptr[source + 1]
        temp = np.full(data.num_vertices, _JIT_NO_HUB, dtype=np.int64)
        temp[data.hub_ranks[s0:s1]] = data.dists[s0:s1]
        if targets is None:
            target_ids = np.arange(data.num_vertices, dtype=np.int64)
        else:
            target_ids = np.asarray(list(targets), dtype=np.int64)
        out = np.empty(target_ids.shape[0], dtype=np.int64)
        _one_to_many_loop(data.indptr, data.hub_ranks, data.dists, temp, target_ids, out)
        result = np.full(out.shape[0], np.inf, dtype=np.float64)
        found = out < _JIT_NO_HUB
        result[found] = out[found].astype(np.float64)
        return result

    @classmethod
    def rooted_probe(
        cls,
        flat_hubs: np.ndarray,
        flat_dists: np.ndarray,
        starts: np.ndarray,
        sizes: np.ndarray,
        temp: np.ndarray,
        max_rank: int,
        sentinel: int,
    ) -> np.ndarray:
        global _probe_broken
        if not _HAVE_NUMBA or _probe_broken:
            return NumpyKernel.rooted_probe(
                flat_hubs, flat_dists, starts, sizes, temp, max_rank, sentinel
            )
        out = np.empty(sizes.shape[0], dtype=np.int64)
        try:
            _rooted_probe_loop(
                flat_hubs, flat_dists, starts, sizes, temp, max_rank, sentinel, out
            )
        except Exception:
            _probe_broken = True
            return NumpyKernel.rooted_probe(
                flat_hubs, flat_dists, starts, sizes, temp, max_rank, sentinel
            )
        return out

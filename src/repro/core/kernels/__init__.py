"""Pluggable compiled-kernel layer behind the storage-backend seam.

The registry holds every :class:`~repro.core.kernels.base.KernelBackend`
implementation; :func:`create_kernel` picks the best one for a concrete
index (honouring the process-wide preference set by ``repro-pll serve
--kernel`` or the ``REPRO_KERNEL`` environment variable) and records the
outcome as a :class:`~repro.core.kernels.base.KernelSelection` — surfaced
as a structured log event on the ``repro.kernels`` logger, and by the
serving layer as a ``/metrics`` info gauge.

Selection rules:

* ``auto`` (the default): the available, layout-compatible backend with the
  highest priority wins (numba > narrow > numpy).  Backends that are simply
  not installed or whose layout requirements the index does not meet are
  skipped silently — that is normal operation, not a fallback.
* An explicit backend name: that backend is tried first; if it cannot serve
  (not installed, layout unsupported, or its constructor — e.g. a JIT
  warm-up compile — fails), selection *falls back* to the numpy baseline
  and the selection is flagged ``fallback=True`` with the reason, so a
  degraded process is visible in logs and metrics rather than silent.
* A constructor failure under ``auto`` is likewise a flagged fallback: the
  next candidate is tried, ending at numpy, which always constructs.

The numpy baseline is byte-identical to the pre-kernel code and always
available, so every selection terminates successfully.
"""

from __future__ import annotations

import logging
import os
from typing import Dict, List, Optional, Tuple, Type

from repro.core.kernels.base import (
    NARROW_MAX_DISTANCE,
    DtypePlan,
    KernelBackend,
    KernelData,
    KernelSelection,
    KernelUnavailableError,
    plan_dtypes,
)

__all__ = [
    "KernelBackend",
    "KernelData",
    "KernelSelection",
    "KernelUnavailableError",
    "DtypePlan",
    "plan_dtypes",
    "NARROW_MAX_DISTANCE",
    "KERNEL_CHOICES",
    "register_kernel",
    "registered_kernels",
    "available_kernels",
    "kernel_preference",
    "set_default_kernel",
    "select_kernel",
    "create_kernel",
]

#: Structured selection events ("kernel selected" / "kernel fallback") are
#: emitted here; tests and the serving layer's log plumbing both hook it.
_logger = logging.getLogger("repro.kernels")

#: Environment variable consulted when no explicit preference is set.
_ENV_VAR = "REPRO_KERNEL"

_REGISTRY: Dict[str, Type[KernelBackend]] = {}

#: Process-wide preference installed by ``set_default_kernel`` (the CLI
#: ``--kernel`` flag); ``None`` means "consult the environment".
_default_preference: Optional[str] = None


def register_kernel(cls: Type[KernelBackend]) -> Type[KernelBackend]:
    """Class decorator: add a backend to the registry (last wins per name)."""
    _REGISTRY[cls.name] = cls
    return cls


def registered_kernels() -> Dict[str, Type[KernelBackend]]:
    """Snapshot of the registry, name -> backend class."""
    return dict(_REGISTRY)


def _by_priority() -> List[Type[KernelBackend]]:
    return sorted(_REGISTRY.values(), key=lambda cls: -cls.priority)


def available_kernels() -> List[str]:
    """Names of the backends that can run in this process, best first."""
    return [cls.name for cls in _by_priority() if cls.available()]


def kernel_preference() -> str:
    """The effective preference: explicit setting, else env var, else auto."""
    if _default_preference is not None:
        return _default_preference
    env = os.environ.get(_ENV_VAR, "").strip().lower()
    if env and (env == "auto" or env in _REGISTRY):
        return env
    return "auto"


def set_default_kernel(
    preference: Optional[str], *, strict: bool = False
) -> Optional[str]:
    """Install the process-wide kernel preference; returns the previous one.

    ``None`` clears the explicit preference (the ``REPRO_KERNEL`` environment
    variable applies again).  With ``strict``, an explicitly named backend
    that cannot run in this process raises :class:`KernelUnavailableError`
    instead of silently arming a fallback — the CLI uses this so ``--kernel
    numba`` without numba fails fast with a clean error.
    """
    global _default_preference
    previous = _default_preference
    if preference is None:
        _default_preference = None
        return previous
    name = preference.strip().lower()
    if name != "auto" and name not in _REGISTRY:
        raise KernelUnavailableError(f"unknown kernel {preference!r}")
    if strict and name != "auto":
        cls = _REGISTRY[name]
        if not cls.available():
            raise KernelUnavailableError(
                f"kernel '{name}' is not available in this environment "
                "(install the 'accel' extra for the numba backend: "
                "pip install repro-pll[accel])"
            )
    _default_preference = name
    return previous


def _candidates(preference: str) -> List[Type[KernelBackend]]:
    if preference == "auto":
        return _by_priority()
    chosen = _REGISTRY.get(preference)
    fallback = _REGISTRY["numpy"]
    if chosen is None or chosen is fallback:
        return [fallback]
    return [chosen, fallback]


def select_kernel(preference: Optional[str] = None) -> Type[KernelBackend]:
    """The backend *class* the current preference resolves to.

    Used where there is no persistent index to bind (the dynamic oracle's
    rooted repair probes): only ``available()`` is consulted, and the numpy
    baseline is the terminal candidate.
    """
    effective = preference if preference is not None else kernel_preference()
    for cls in _candidates(effective):
        if cls.available():
            return cls
    return _REGISTRY["numpy"]


def create_kernel(
    data: KernelData, preference: Optional[str] = None
) -> Tuple[KernelBackend, KernelSelection]:
    """Construct the best kernel for ``data`` and report what happened.

    Never raises for backend trouble: any candidate that is unavailable,
    rejects the layout, or fails to construct is skipped (flagged as a
    fallback when it was explicitly requested or actually attempted), and
    the numpy baseline terminates the chain.
    """
    requested = preference if preference is not None else kernel_preference()
    reasons: List[str] = []
    impl: Optional[KernelBackend] = None
    for cls in _candidates(requested):
        if not cls.available():
            if cls.name == requested:
                reasons.append(f"kernel '{cls.name}' is not available")
            continue
        if not cls.supports(data):
            if cls.name == requested:
                reasons.append(
                    f"kernel '{cls.name}' does not support this index layout"
                )
            continue
        try:
            impl = cls(data)
        except Exception as exc:
            reasons.append(f"kernel '{cls.name}' failed to initialise: {exc}")
            continue
        break
    if impl is None:
        # Unreachable in practice: the numpy baseline has no failure modes.
        raise KernelUnavailableError(
            "no kernel backend could be constructed: " + "; ".join(reasons)
        )
    selection = KernelSelection(
        requested=requested,
        selected=impl.name,
        fallback=bool(reasons),
        reason="; ".join(reasons),
    )
    if selection.fallback:
        _logger.warning(
            "kernel fallback: requested=%s selected=%s reason=%s",
            selection.requested,
            selection.selected,
            selection.reason,
        )
    else:
        _logger.info(
            "kernel selected: %s (requested=%s)",
            selection.selected,
            selection.requested,
        )
    return impl, selection


# Import for registration side effects (each module registers its backend).
from repro.core.kernels.narrow import NarrowKernel  # noqa: E402
from repro.core.kernels.numba_kernel import NumbaKernel  # noqa: E402
from repro.core.kernels.numpy_kernel import NumpyKernel  # noqa: E402

register_kernel(NumpyKernel)
register_kernel(NarrowKernel)
register_kernel(NumbaKernel)

#: Valid ``--kernel`` / ``REPRO_KERNEL`` values, in CLI display order.
KERNEL_CHOICES = ("auto", "numpy", "narrow", "numba")

"""Kernel-backend protocol: the contract every batch-query kernel implements.

The serving hot loops — the label-merge intersection behind
:meth:`BatchQueryKernel.query_pairs`, the one-to-many scatter evaluator, and
the repair-BFS rooted probe of the dynamic oracle — all reduce to a handful of
array-level operations over the frozen label layout.  This module defines the
seam those operations sit behind:

* :class:`DtypePlan` — the per-generation dtype-narrowing decision, made once
  at ``freeze()`` time and recorded in the raw/shared-memory layout metadata
  so every attaching process agrees on the layout without re-deriving it.
* :class:`KernelData` — the flat, immutable array bundle a kernel operates
  on (the same arrays the :class:`~repro.core.labels.LabelSet` and
  :class:`~repro.core.query.BatchQueryKernel` share, plus the optional
  narrow-layout companions).
* :class:`KernelBackend` — the abstract backend: capability flags, an
  ``available()`` runtime-detection hook, and the three batch entry points.
* :class:`KernelSelection` — the record of which backend was chosen, what was
  requested, and whether the choice was a fallback (surfaced as a structured
  log event and a ``/metrics`` info gauge).

Concrete backends live in sibling modules (``numpy_kernel``, ``narrow``,
``numba_kernel``) and register themselves with the package registry; see
:func:`repro.core.kernels.create_kernel` for the selection rules.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = [
    "KernelUnavailableError",
    "DtypePlan",
    "KernelData",
    "KernelSelection",
    "KernelBackend",
    "plan_dtypes",
    "NARROW_MAX_DISTANCE",
    "CAP_QUERY_PAIRS",
    "CAP_ONE_TO_MANY",
    "CAP_ROOTED_PROBE",
    "CAP_NARROW_LAYOUT",
    "CAP_JIT",
]

#: Capability flags advertised by a backend (``KernelBackend.capabilities``).
CAP_QUERY_PAIRS = "query_pairs"
CAP_ONE_TO_MANY = "one_to_many"
CAP_ROOTED_PROBE = "rooted_probe"
CAP_NARROW_LAYOUT = "narrow_layout"
CAP_JIT = "jit"

#: Largest label distance the narrow (uint8) distance encoding can carry.
#: A frozen index whose diameter reaches 255 keeps the wide uint16 layout.
NARROW_MAX_DISTANCE = 254

#: Largest ``owner * stride + hub_rank`` key value the uint32 key encoding
#: can carry; with ``stride = n`` the maximum key is ``n**2 - 1``.
_NARROW_MAX_KEY = 2**32 - 1


class KernelUnavailableError(RuntimeError):
    """A requested kernel backend cannot run in this process/environment."""


@dataclass(frozen=True)
class DtypePlan:
    """The per-generation dtype-narrowing decision (made at freeze time).

    ``narrow`` is true when both the key space fits ``uint32`` and every
    label distance fits ``uint8`` — the cache-friendly layout the narrow
    kernel runs on.  The plan is serialised into the raw/shared-memory
    layout metadata (``kernel_plan``), so attaching workers adopt the
    publishing process's decision instead of re-measuring the index.
    """

    narrow: bool
    key_dtype: str
    dist_dtype: str
    max_distance: int

    def to_meta(self) -> Dict[str, object]:
        """JSON-able form stored in the layout metadata."""
        return {
            "narrow": self.narrow,
            "key_dtype": self.key_dtype,
            "dist_dtype": self.dist_dtype,
            "max_distance": self.max_distance,
        }

    @classmethod
    def from_meta(cls, meta: Dict[str, object]) -> "DtypePlan":
        """Rehydrate a plan recorded by :meth:`to_meta`."""
        return cls(
            narrow=bool(meta.get("narrow", False)),
            key_dtype=str(meta.get("key_dtype", "int64")),
            dist_dtype=str(meta.get("dist_dtype", "uint16")),
            max_distance=int(meta.get("max_distance", 0)),
        )


def plan_dtypes(num_vertices: int, distances: np.ndarray) -> DtypePlan:
    """Decide the dtype plan for an index with ``distances`` label entries.

    O(total label entries) — one vectorised max — so it is computed at
    ``freeze()``/kernel-construction time and then carried in the layout
    metadata, never on the per-query path.
    """
    max_distance = int(distances.max()) if distances.shape[0] else 0
    keys_fit = num_vertices * num_vertices - 1 <= _NARROW_MAX_KEY
    dists_fit = max_distance <= NARROW_MAX_DISTANCE
    narrow = keys_fit and dists_fit
    return DtypePlan(
        narrow=narrow,
        key_dtype="uint32" if narrow else "int64",
        dist_dtype="uint8" if narrow else "uint16",
        max_distance=max_distance,
    )


@dataclass
class KernelData:
    """The immutable flat-array bundle a kernel backend evaluates against.

    The base arrays are shared with (never copied from) the owning
    :class:`~repro.core.labels.LabelSet` / ``BatchQueryKernel``; ``narrow``
    holds the optional narrow-layout companion arrays (uint32 keys, uint8
    distances, hub-major blocks) keyed by their storage field names — empty
    when the plan is wide or the arrays were neither stored nor derived yet.
    """

    indptr: np.ndarray
    hub_ranks: np.ndarray
    dists: np.ndarray
    keys: np.ndarray
    sizes: np.ndarray
    stride: np.int64
    plan: DtypePlan
    narrow: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def num_vertices(self) -> int:
        """Number of vertices covered by the label arrays."""
        return self.sizes.shape[0]


@dataclass(frozen=True)
class KernelSelection:
    """Outcome of one kernel selection (what ran vs. what was asked for)."""

    requested: str
    selected: str
    fallback: bool = False
    reason: str = ""

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary for log events and the metrics endpoint."""
        return {
            "requested": self.requested,
            "selected": self.selected,
            "fallback": self.fallback,
            "reason": self.reason,
        }


class KernelBackend(abc.ABC):
    """One batch-query execution strategy over a :class:`KernelData` bundle.

    Subclasses are registered with the package registry and chosen by
    :func:`repro.core.kernels.create_kernel`.  A backend must be safe to
    construct eagerly at publish time (expensive one-off work — JIT warm-up,
    derived layouts — belongs in ``__init__`` so the first request batch
    never pays for it) and must produce results byte-identical to the
    always-available numpy baseline.
    """

    #: Registry/selection name (also the ``--kernel`` / ``REPRO_KERNEL`` value).
    name: str = ""
    #: Capability flags (see the ``CAP_*`` constants).
    capabilities: frozenset = frozenset()
    #: Selection order under ``auto``: higher wins among available backends.
    priority: int = 0

    def __init__(self, data: KernelData) -> None:
        self._data = data

    @property
    def data(self) -> KernelData:
        """The array bundle this backend evaluates against."""
        return self._data

    @classmethod
    def available(cls) -> bool:
        """Whether this backend can run in the current process at all."""
        return True

    @classmethod
    def supports(cls, data: KernelData) -> bool:
        """Whether this backend can serve this particular index layout."""
        return True

    @abc.abstractmethod
    def query_pairs(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Label distances for aligned ``sources[i], targets[i]`` pairs.

        Returns ``float64`` (``inf`` where the labels share no hub); the
        ``s == t`` short-circuit and the bit-parallel minimum are the
        caller's business, exactly as for the scalar kernels.
        """

    @abc.abstractmethod
    def query_one_to_many(
        self, source: int, targets: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Label distances from ``source`` to ``targets`` (all vertices if ``None``).

        Returns ``float64`` aligned with ``targets`` (``inf`` where no common
        hub exists).  No ``source == target`` zeroing — the index facade
        applies it after the bit-parallel minimum.
        """

    @classmethod
    def rooted_probe(
        cls,
        flat_hubs: np.ndarray,
        flat_dists: np.ndarray,
        starts: np.ndarray,
        sizes: np.ndarray,
        temp: np.ndarray,
        max_rank: int,
        sentinel: int,
    ) -> np.ndarray:
        """Batched rooted evaluator for the dynamic oracle's repair BFSs.

        With the current root's label scattered into ``temp`` (rank-indexed
        ``int64``, ``sentinel`` where absent), evaluates the minimum
        ``temp[hub] + dist`` over each vertex's label entries restricted to
        hubs of rank ``<= max_rank``; ``flat_hubs`` / ``flat_dists`` are the
        concatenated per-vertex entries with ``starts`` / ``sizes`` segment
        bounds.  Returns ``int64`` minima aligned with the segments,
        exactly ``sentinel`` where no qualifying common hub exists.

        A classmethod: the dynamic oracle's labels are Python lists, so
        there is no persistent :class:`KernelData` to bind to.
        """
        raise NotImplementedError

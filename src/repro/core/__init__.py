"""Core contribution: pruned landmark labeling and its variants."""

from repro.core.bitparallel import (
    BP_INF,
    WORD_BITS,
    BitParallelLabels,
    bit_parallel_bfs,
    build_bit_parallel_labels,
    select_bit_parallel_roots,
)
from repro.core.directed import DirectedPrunedLandmarkLabeling
from repro.core.dynamic import DynamicPrunedLandmarkLabeling
from repro.core.index import PrunedLandmarkLabeling, build_index
from repro.core.labels import INF_DISTANCE, LabelAccumulator, LabelSet
from repro.core.paths import PathPrunedLandmarkLabeling
from repro.core.pruned import (
    ConstructionStats,
    build_naive_labels,
    build_pruned_labels,
)
from repro.core.query import (
    BatchQueryKernel,
    RootedQueryEvaluator,
    intersect_query,
    merge_join_query,
)
from repro.core.serialization import load_index, load_index_metadata, save_index
from repro.core.stats import IndexStats, collect_index_stats, label_size_percentiles
from repro.core.storage import (
    ArrayBackend,
    HeapBackend,
    MmapBackend,
    SharedGeneration,
    SharedMemoryBackend,
)
from repro.core.verification import (
    VerificationIssue,
    VerificationReport,
    verify_against_bfs,
    verify_index,
    verify_label_invariants,
)
from repro.core.weighted import WeightedLabelSet, WeightedPrunedLandmarkLabeling

__all__ = [
    "PrunedLandmarkLabeling",
    "build_index",
    "WeightedPrunedLandmarkLabeling",
    "WeightedLabelSet",
    "DirectedPrunedLandmarkLabeling",
    "PathPrunedLandmarkLabeling",
    "DynamicPrunedLandmarkLabeling",
    "LabelSet",
    "LabelAccumulator",
    "INF_DISTANCE",
    "BitParallelLabels",
    "BP_INF",
    "WORD_BITS",
    "bit_parallel_bfs",
    "build_bit_parallel_labels",
    "select_bit_parallel_roots",
    "ConstructionStats",
    "build_pruned_labels",
    "build_naive_labels",
    "merge_join_query",
    "intersect_query",
    "RootedQueryEvaluator",
    "BatchQueryKernel",
    "save_index",
    "load_index",
    "load_index_metadata",
    "ArrayBackend",
    "HeapBackend",
    "SharedMemoryBackend",
    "MmapBackend",
    "SharedGeneration",
    "IndexStats",
    "collect_index_stats",
    "label_size_percentiles",
    "VerificationIssue",
    "VerificationReport",
    "verify_against_bfs",
    "verify_label_invariants",
    "verify_index",
]

"""Directed graphs: pruned landmark labeling with IN/OUT labels (Section 6).

For a directed graph the oracle stores two labels per vertex:

* ``L_OUT(v)`` — pairs ``(u, d(v, u))``: hubs reachable *from* ``v``.
* ``L_IN(v)``  — pairs ``(u, d(u, v))``: hubs that can reach ``v``.

The distance from ``s`` to ``t`` is the minimum of ``d(s, u) + d(u, t)`` over
hubs ``u`` common to ``L_OUT(s)`` and ``L_IN(t)``.  Each root performs two
pruned BFSs, one along out-edges (filling ``L_IN`` of reached vertices) and
one along in-edges (filling ``L_OUT``), with the prune test of each direction
using the opposite label side — mirroring Algorithm 1 exactly.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.labels import INF_DISTANCE, LabelAccumulator, LabelSet
from repro.errors import IndexBuildError, IndexStateError
from repro.graph.csr import Graph
from repro.graph.ordering import compute_order

__all__ = ["DirectedPrunedLandmarkLabeling"]


class DirectedPrunedLandmarkLabeling:
    """Exact distance oracle for directed, unweighted graphs.

    Examples
    --------
    >>> from repro.graph import Graph
    >>> graph = Graph(3, [(0, 1), (1, 2)], directed=True)
    >>> oracle = DirectedPrunedLandmarkLabeling().build(graph)
    >>> oracle.distance(0, 2)
    2.0
    >>> oracle.distance(2, 0)
    inf
    """

    def __init__(self, *, ordering: str = "degree", seed: int = 0) -> None:
        self.ordering = ordering
        self.seed = seed
        self._labels_out: Optional[LabelSet] = None
        self._labels_in: Optional[LabelSet] = None
        self._graph: Optional[Graph] = None
        self._order: Optional[np.ndarray] = None
        self._build_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def build(
        self, graph: Graph, *, order: Optional[Sequence[int]] = None
    ) -> "DirectedPrunedLandmarkLabeling":
        """Build IN and OUT labels with one pair of pruned BFSs per vertex."""
        if not graph.directed:
            raise IndexBuildError(
                "DirectedPrunedLandmarkLabeling expects a directed graph; use "
                "PrunedLandmarkLabeling for undirected graphs"
            )
        n = graph.num_vertices
        if order is not None:
            order_array = np.asarray(order, dtype=np.int64)
            if order_array.shape[0] != n or np.any(
                np.sort(order_array) != np.arange(n)
            ):
                raise IndexBuildError("order must be a permutation of all vertices")
        else:
            order_array = compute_order(graph, self.ordering, seed=self.seed)

        start_time = time.perf_counter()
        # labels_out[v]: hubs u with d(v, u); labels_in[v]: hubs u with d(u, v).
        labels_out = LabelAccumulator(n)
        labels_in = LabelAccumulator(n)
        temp = np.full(n, int(INF_DISTANCE), dtype=np.int64)

        for k in range(n):
            root = int(order_array[k])
            # Forward pruned BFS: computes d(root, u), extends L_IN(u).
            # Prune test: min over w in L_OUT(root) ∩ L_IN(u) of
            # d(root, w) + d(w, u) <= depth.
            self._pruned_bfs_one_direction(
                graph,
                root,
                k,
                source_labels=labels_out,
                target_labels=labels_in,
                temp=temp,
                reverse=False,
            )
            # Backward pruned BFS: computes d(u, root), extends L_OUT(u).
            self._pruned_bfs_one_direction(
                graph,
                root,
                k,
                source_labels=labels_in,
                target_labels=labels_out,
                temp=temp,
                reverse=True,
            )

        self._labels_out = labels_out.freeze(order_array)
        self._labels_in = labels_in.freeze(order_array)
        self._graph = graph
        self._order = order_array
        self._build_seconds = time.perf_counter() - start_time
        return self

    @staticmethod
    def _pruned_bfs_one_direction(
        graph: Graph,
        root: int,
        rank: int,
        *,
        source_labels: LabelAccumulator,
        target_labels: LabelAccumulator,
        temp: np.ndarray,
        reverse: bool,
    ) -> None:
        """One pruned BFS from ``root`` along out-edges (or in-edges if ``reverse``).

        ``source_labels`` is the label side of the root used in the prune test
        (``L_OUT(root)`` for a forward BFS); ``target_labels`` is the side that
        reached vertices are appended to (``L_IN`` for a forward BFS).
        """
        n = graph.num_vertices
        indptr = graph.rev_indptr if reverse else graph.indptr
        adj = graph.rev_adjacency if reverse else graph.adjacency

        touched: List[int] = []
        for hub, dist in source_labels.entries(root):
            temp[hub] = dist
            touched.append(hub)

        visited = np.full(n, -1, dtype=np.int32)
        visited[root] = 0
        frontier = np.array([root], dtype=np.int64)
        depth = 0
        while frontier.size:
            survivors: List[int] = []
            for u in frontier:
                u = int(u)
                hubs_u = target_labels.hub_ranks(u)
                dists_u = target_labels.distances(u)
                pruned = False
                for i in range(len(hubs_u)):
                    if dists_u[i] + temp[hubs_u[i]] <= depth:
                        pruned = True
                        break
                if pruned:
                    continue
                target_labels.append(u, rank, depth)
                survivors.append(u)
            if not survivors:
                break
            survivor_array = np.asarray(survivors, dtype=np.int64)
            starts = indptr[survivor_array]
            counts = indptr[survivor_array + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            base = np.repeat(starts, counts)
            within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
            neighbors = adj[base + within]
            fresh = neighbors[visited[neighbors] < 0]
            if fresh.size == 0:
                break
            frontier = np.unique(fresh).astype(np.int64)
            visited[frontier] = depth + 1
            depth += 1

        for hub in touched:
            temp[hub] = int(INF_DISTANCE)

    # ------------------------------------------------------------------ #
    # Queries and introspection
    # ------------------------------------------------------------------ #

    @property
    def built(self) -> bool:
        """Whether the index has been built."""
        return self._labels_out is not None

    def _require_built(self) -> None:
        if not self.built:
            raise IndexStateError("the index has not been built yet; call build()")

    def distance(self, s: int, t: int) -> float:
        """Exact directed distance from ``s`` to ``t`` (``inf`` if unreachable)."""
        self._require_built()
        if s == t:
            return 0.0
        s_hubs, s_dists = self._labels_out.vertex_label(s)
        t_hubs, t_dists = self._labels_in.vertex_label(t)
        if s_hubs.shape[0] == 0 or t_hubs.shape[0] == 0:
            return float("inf")
        _, s_idx, t_idx = np.intersect1d(
            s_hubs, t_hubs, assume_unique=True, return_indices=True
        )
        if s_idx.shape[0] == 0:
            return float("inf")
        sums = s_dists[s_idx].astype(np.int64) + t_dists[t_idx].astype(np.int64)
        return float(sums.min())

    def distances(self, pairs: Iterable[Tuple[int, int]]) -> np.ndarray:
        """Distances for a batch of ``(s, t)`` pairs."""
        self._require_built()
        pairs = list(pairs)
        result = np.empty(len(pairs), dtype=np.float64)
        for i, (s, t) in enumerate(pairs):
            result[i] = self.distance(int(s), int(t))
        return result

    @property
    def out_labels(self) -> LabelSet:
        """``L_OUT`` labels (hubs reachable from each vertex)."""
        self._require_built()
        return self._labels_out

    @property
    def in_labels(self) -> LabelSet:
        """``L_IN`` labels (hubs that reach each vertex)."""
        self._require_built()
        return self._labels_in

    def average_label_size(self) -> float:
        """Average number of label entries per vertex (IN plus OUT)."""
        self._require_built()
        return (
            self._labels_out.average_label_size()
            + self._labels_in.average_label_size()
        )

    def index_size_bytes(self) -> int:
        """Approximate in-memory index size in bytes."""
        self._require_built()
        return self._labels_out.nbytes() + self._labels_in.nbytes()

    @property
    def build_seconds(self) -> float:
        """Wall-clock seconds spent in :meth:`build`."""
        return self._build_seconds

"""Backend-agnostic storage for the columnar index arrays.

Every frozen representation in this library — the 2-hop labels of
:class:`~repro.core.labels.LabelSet`, the precomputed keys of
:class:`~repro.core.query.BatchQueryKernel`, the mask matrices of
:class:`~repro.core.bitparallel.BitParallelLabels` — is a handful of flat
numpy arrays.  Historically those arrays always lived on the private process
heap, which rules out two serving configurations the paper's
"disk-based query answering" discussion (Section 6) and the multi-core
follow-ons both need:

* **Shared memory** — several worker *processes* answering query batches
  against the same label arrays without copying them per request (the GIL
  bypass for multi-core serving).
* **Memory mapping** — opening a saved index without materialising a heap
  copy of every array (zero-copy load; the OS pages label regions in on
  demand, which is exactly the two-seeks-per-query access pattern of the
  paper's disk discussion).

This module abstracts the *allocation* of those arrays behind the
:class:`ArrayBackend` protocol with three implementations:

* :class:`HeapBackend` — plain ``np.empty`` allocation; the default, with
  zero overhead over the historical behaviour.
* :class:`SharedMemoryBackend` — one POSIX shared-memory segment per array
  (plus a small sealed metadata segment), named under a common prefix so a
  cooperating process can attach the whole array group by name.
* :class:`MmapBackend` — read-only views into the single-file raw layout
  written by :func:`write_raw` (used by ``load_index(mmap=True)``).

Array *field names* (``"label_hubs"``, ``"kernel_keys"``, ...) are shared
across layers: the allocating layer registers an array under its field name,
and :mod:`repro.core.serialization` re-assembles a whole index from a
backend's field directory.  Backends own segment lifetime only; refcounted
*generation* retirement for the serving layer is layered on top by
:class:`SharedGeneration`.
"""

from __future__ import annotations

import json
import os
import secrets
import threading
from multiprocessing import shared_memory
from pathlib import Path
from typing import Dict, Mapping, Optional, Protocol, Sequence, Tuple, Union

import numpy as np

from repro.errors import SerializationError, ServingError

__all__ = [
    "ArrayBackend",
    "HeapBackend",
    "SharedMemoryBackend",
    "MmapBackend",
    "SharedGeneration",
    "RAW_MAGIC",
    "write_raw",
    "read_raw_meta",
    "new_shared_prefix",
]

PathLike = Union[str, os.PathLike]

#: Magic bytes opening the single-file raw (mmap-able) index layout.
RAW_MAGIC = b"PLLRAW01"

#: Alignment of every array blob inside a raw file (cache-line / SIMD safe).
_RAW_ALIGN = 64


class ArrayBackend(Protocol):
    """Allocation + lookup protocol for one group of named numpy arrays.

    A backend hands out numpy arrays whose *buffers* it owns (heap, shared
    memory or a mapped file) and remembers them under caller-chosen field
    names so that the whole group can be re-assembled later — by the same
    process (:meth:`get`) or, for the shared-memory backend, by a different
    one (:meth:`SharedMemoryBackend.attach`).
    """

    @property
    def writable(self) -> bool:
        """Whether :meth:`empty` / :meth:`put` are available."""
        ...

    def empty(
        self, field: str, shape: Sequence[int], dtype: np.dtype
    ) -> np.ndarray:
        """Allocate an uninitialised array for ``field`` and register it."""
        ...

    def put(self, field: str, array: np.ndarray) -> np.ndarray:
        """Place ``array``'s contents into the backend under ``field``."""
        ...

    def get(self, field: str) -> np.ndarray:
        """The array registered under ``field``."""
        ...

    def fields(self) -> Tuple[str, ...]:
        """Names of every registered array."""
        ...


class HeapBackend:
    """The default backend: private in-process heap arrays.

    ``put`` stores the array *by reference* (no copy): heap callers treat
    registered arrays as immutable, and copying would reintroduce exactly the
    overhead this backend exists to avoid.
    """

    writable = True

    def __init__(self) -> None:
        self._arrays: Dict[str, np.ndarray] = {}

    def empty(
        self, field: str, shape: Sequence[int], dtype: np.dtype
    ) -> np.ndarray:
        array = np.empty(tuple(shape), dtype=dtype)
        self._arrays[field] = array
        return array

    def put(self, field: str, array: np.ndarray) -> np.ndarray:
        array = np.asarray(array)
        self._arrays[field] = array
        return array

    def get(self, field: str) -> np.ndarray:
        return self._arrays[field]

    def fields(self) -> Tuple[str, ...]:
        return tuple(self._arrays)


def new_shared_prefix(tag: str = "pll") -> str:
    """A collision-resistant prefix for one group of shared-memory segments."""
    return f"{tag}-{os.getpid():x}-{secrets.token_hex(3)}"


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without registering it with the resource tracker.

    CPython < 3.13 registers *attaching* processes with the resource tracker
    too (gh-82300), which makes the tracker clean up segments the attaching
    process does not own — exactly wrong for the worker processes here, where
    the creating process owns unlink.  Suppress the registration for the
    duration of the attach (``unregister`` afterwards would be worse: forked
    workers share the creator's tracker, so it would erase the *creator's*
    registration).  On 3.13+ ``track=False`` does this natively.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


class SharedMemoryBackend:
    """Array group in named POSIX shared memory, attachable across processes.

    Each array occupies one segment named ``{prefix}.{field}``; a final
    ``{prefix}.meta`` segment, written by :meth:`seal`, holds a JSON
    directory of every field's dtype and shape plus caller metadata.  Only
    sealed groups can be attached, so an attaching process can never observe
    a half-exported index.

    Use :meth:`create` in the exporting process and :meth:`attach` (arrays
    come back read-only) in workers.  ``close`` releases this process's
    mappings; ``unlink`` removes the segments system-wide (creator only).
    """

    #: Field directory segment suffix.
    _META = "meta"

    def __init__(
        self,
        prefix: str,
        *,
        _writable: bool,
    ) -> None:
        self.prefix = prefix
        self._writable = _writable
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._arrays: Dict[str, np.ndarray] = {}
        self._sealed = False
        self.meta: Dict = {}

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def create(cls, prefix: Optional[str] = None) -> "SharedMemoryBackend":
        """Start a new (writable, unsealed) segment group."""
        return cls(prefix if prefix is not None else new_shared_prefix(), _writable=True)

    @classmethod
    def attach(cls, prefix: str) -> "SharedMemoryBackend":
        """Attach a sealed group by prefix; arrays are read-only views."""
        backend = cls(prefix, _writable=False)
        try:
            meta_segment = _attach_segment(f"{prefix}.{cls._META}")
        except FileNotFoundError:
            raise ServingError(
                f"shared-memory index group {prefix!r} does not exist (never "
                f"sealed, or already retired)"
            ) from None
        backend._segments[cls._META] = meta_segment
        header = json.loads(bytes(meta_segment.buf).rstrip(b"\x00").decode("utf-8"))
        backend.meta = header["meta"]
        for field, spec in header["fields"].items():
            segment = _attach_segment(f"{prefix}.{field}")
            backend._segments[field] = segment
            array = np.ndarray(
                tuple(spec["shape"]), dtype=np.dtype(spec["dtype"]), buffer=segment.buf
            )
            array.flags.writeable = False
            backend._arrays[field] = array
        backend._sealed = True
        return backend

    # ------------------------------------------------------------------ #
    # ArrayBackend protocol
    # ------------------------------------------------------------------ #

    @property
    def writable(self) -> bool:
        return self._writable and not self._sealed

    def _segment_name(self, field: str) -> str:
        if "." in field or "/" in field:
            raise ValueError(f"invalid shared-memory field name {field!r}")
        return f"{self.prefix}.{field}"

    def empty(
        self, field: str, shape: Sequence[int], dtype: np.dtype
    ) -> np.ndarray:
        if not self.writable:
            raise ServingError(
                f"shared-memory group {self.prefix!r} is sealed or attached "
                f"read-only; cannot allocate {field!r}"
            )
        if field == self._META or field in self._arrays:
            raise ValueError(f"field {field!r} is reserved or already allocated")
        dtype = np.dtype(dtype)
        shape = tuple(int(s) for s in shape)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        segment = shared_memory.SharedMemory(
            name=self._segment_name(field), create=True, size=max(nbytes, 1)
        )
        array = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
        self._segments[field] = segment
        self._arrays[field] = array
        return array

    def put(self, field: str, array: np.ndarray) -> np.ndarray:
        array = np.asarray(array)
        destination = self.empty(field, array.shape, array.dtype)
        if array.size:
            destination[...] = array
        return destination

    def get(self, field: str) -> np.ndarray:
        return self._arrays[field]

    def fields(self) -> Tuple[str, ...]:
        return tuple(self._arrays)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def seal(self, meta: Optional[Mapping] = None) -> None:
        """Write the field directory; the group becomes attachable and frozen."""
        if self._sealed:
            raise ServingError(f"shared-memory group {self.prefix!r} already sealed")
        self.meta = dict(meta) if meta else {}
        header = json.dumps(
            {
                "meta": self.meta,
                "fields": {
                    field: {
                        "dtype": array.dtype.str,
                        "shape": list(array.shape),
                    }
                    for field, array in self._arrays.items()
                },
            }
        ).encode("utf-8")
        segment = shared_memory.SharedMemory(
            name=self._segment_name(self._META), create=True, size=max(len(header), 1)
        )
        segment.buf[: len(header)] = header
        self._segments[self._META] = segment
        self._sealed = True

    def nbytes(self) -> int:
        """Total bytes held in the group's segments."""
        return sum(segment.size for segment in self._segments.values())

    def close(self) -> None:
        """Release this process's mappings (arrays become invalid).

        Mappings with live numpy views cannot be released (the OS keeps the
        memory alive anyway); those are left to the garbage collector.
        """
        self._arrays.clear()
        for segment in self._segments.values():
            try:
                segment.close()
            except BufferError:  # view still referenced somewhere
                pass

    def unlink(self) -> None:
        """Remove every segment system-wide (names disappear from ``/dev/shm``).

        Existing mappings — this process's arrays, workers mid-batch — stay
        valid until their holders drop them; only the *names* go away, so no
        new attach can start.
        """
        for segment in self._segments.values():
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink race
                pass


class SharedGeneration:
    """One published shared-memory index generation with refcounted retirement.

    The serving layer publishes each snapshot as a sealed
    :class:`SharedMemoryBackend` group.  Readers (the sharded engine, on
    behalf of its in-flight worker batches) bracket their use with
    :meth:`acquire` / :meth:`release`; when the publisher supersedes the
    generation it calls :meth:`retire`, and the segments are unlinked as soon
    as the last reader releases — in-flight batches always finish on the
    generation they started on, and ``/dev/shm`` never accumulates retired
    generations.
    """

    def __init__(self, backend: SharedMemoryBackend) -> None:
        self._backend = backend
        self._lock = threading.Lock()
        self._readers = 0
        self._retired = False
        self._unlinked = False

    @property
    def name(self) -> str:
        """The generation's shared-memory prefix (what workers attach)."""
        return self._backend.prefix

    @property
    def backend(self) -> SharedMemoryBackend:
        """The underlying sealed segment group."""
        return self._backend

    @property
    def retired(self) -> bool:
        """Whether the publisher has superseded this generation."""
        with self._lock:
            return self._retired

    @property
    def unlinked(self) -> bool:
        """Whether the segments have been removed system-wide."""
        with self._lock:
            return self._unlinked

    def acquire(self) -> bool:
        """Register a reader; ``False`` when the generation is already gone
        (the caller should re-read the current snapshot and retry)."""
        with self._lock:
            if self._unlinked:
                return False
            self._readers += 1
            return True

    def release(self) -> None:
        """Drop one reader; unlinks immediately if retired and now unread."""
        with self._lock:
            self._readers -= 1
            if self._readers < 0:  # pragma: no cover - caller bug guard
                raise RuntimeError("SharedGeneration.release without acquire")
            self._maybe_unlink_locked()

    def retire(self) -> None:
        """Mark superseded; unlinks now or when the last reader releases."""
        with self._lock:
            self._retired = True
            self._maybe_unlink_locked()

    def _maybe_unlink_locked(self) -> None:
        if self._retired and self._readers == 0 and not self._unlinked:
            self._backend.unlink()
            self._unlinked = True


# ---------------------------------------------------------------------- #
# Raw single-file layout (the mmap-able on-disk format)
# ---------------------------------------------------------------------- #


def _raw_directory(fields: Mapping[str, np.ndarray]) -> Dict[str, Dict]:
    """Field directory with 64-byte-aligned data-relative offsets."""
    directory = {}
    offset = 0
    for field, array in fields.items():
        offset = (offset + _RAW_ALIGN - 1) // _RAW_ALIGN * _RAW_ALIGN
        directory[field] = {
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": offset,
        }
        offset += array.nbytes
    return directory


def write_raw(path: PathLike, fields: Mapping[str, np.ndarray], meta: Mapping) -> None:
    """Write an array group to the single-file raw layout.

    The layout is ``RAW_MAGIC``, a little-endian ``uint64`` header length,
    the JSON header (field directory + metadata), then each array's raw bytes
    at 64-byte-aligned offsets relative to the (also aligned) data section.
    Arrays are written uncompressed precisely so that :class:`MmapBackend`
    can hand out zero-copy views of them.
    """
    directory = _raw_directory(fields)
    header = json.dumps({"meta": dict(meta), "fields": directory}).encode("utf-8")
    data_start = _aligned_data_start(len(header))
    with open(Path(path), "wb") as handle:
        handle.write(RAW_MAGIC)
        handle.write(np.uint64(len(header)).tobytes())
        handle.write(header)
        handle.write(b"\x00" * (data_start - 16 - len(header)))
        # Blobs land at exactly the offsets the directory advertises — one
        # source of truth, so header and data can never disagree.
        position = 0
        for field, array in fields.items():
            offset = directory[field]["offset"]
            handle.write(b"\x00" * (offset - position))
            contiguous = np.ascontiguousarray(array)
            handle.write(contiguous.tobytes())
            position = offset + contiguous.nbytes


def _aligned_data_start(header_len: int) -> int:
    return (16 + header_len + _RAW_ALIGN - 1) // _RAW_ALIGN * _RAW_ALIGN


def _read_raw_header(path: Path) -> Tuple[Dict, int]:
    """Parse a raw file's header; returns ``(header_dict, data_start)``."""
    with open(path, "rb") as handle:
        magic = handle.read(8)
        if magic != RAW_MAGIC:
            raise SerializationError(f"{path} is not a raw-layout index file")
        (header_len,) = np.frombuffer(handle.read(8), dtype=np.uint64)
        header = json.loads(handle.read(int(header_len)).decode("utf-8"))
    return header, _aligned_data_start(int(header_len))


def read_raw_meta(path: PathLike) -> Dict:
    """Read only the metadata record of a raw-layout file (no array access)."""
    header, _ = _read_raw_header(Path(path))
    return header["meta"]


class MmapBackend:
    """Read-only zero-copy views over a raw-layout file.

    Arrays are ``np.memmap`` views: nothing is read from disk until a query
    touches the corresponding pages, and nothing is ever copied onto the
    heap.  All arrays are read-only — the file is the source of truth.
    """

    writable = False

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        header, data_start = _read_raw_header(self.path)
        self.meta: Dict = header["meta"]
        self._arrays: Dict[str, np.ndarray] = {}
        for field, spec in header["fields"].items():
            self._arrays[field] = np.memmap(
                self.path,
                dtype=np.dtype(spec["dtype"]),
                mode="r",
                offset=data_start + int(spec["offset"]),
                shape=tuple(spec["shape"]),
            )

    def empty(self, field: str, shape, dtype) -> np.ndarray:
        raise SerializationError("MmapBackend is read-only")

    def put(self, field: str, array: np.ndarray) -> np.ndarray:
        raise SerializationError("MmapBackend is read-only")

    def get(self, field: str) -> np.ndarray:
        return self._arrays[field]

    def fields(self) -> Tuple[str, ...]:
        return tuple(self._arrays)

    def close(self) -> None:
        """Drop the mapped views (the OS unmaps once no view remains)."""
        self._arrays.clear()

"""Saving and loading pruned-landmark-labeling indexes.

The paper points out (Section 6, "Disk-based Query Answering") that because a
query touches only the two contiguous label regions of its endpoints, the
index can live on disk and still answer queries with two seeks.  This module
provides the on-disk format: a single ``.npz`` archive holding the flat label
arrays, the bit-parallel arrays and a small metadata record.  A loaded index
answers queries without access to the original graph.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union

import numpy as np

from repro._version import __version__
from repro.core.bitparallel import BitParallelLabels
from repro.core.index import PrunedLandmarkLabeling
from repro.core.labels import LabelSet
from repro.errors import SerializationError

__all__ = ["save_index", "load_index", "load_index_metadata", "FORMAT_VERSION"]

PathLike = Union[str, os.PathLike]

#: Version tag embedded in every archive; bumped on incompatible layout changes.
FORMAT_VERSION = 1


def save_index(index: PrunedLandmarkLabeling, path: PathLike) -> None:
    """Serialise a built index to ``path`` (a ``.npz`` archive).

    Raises
    ------
    SerializationError
        If the index has not been built yet.
    """
    if not index.built:
        raise SerializationError("cannot save an index that has not been built")
    labels = index.label_set
    bit_parallel = index.bit_parallel_labels

    # Bit-parallel root sets are ragged; store them flattened with offsets.
    set_sizes = np.array([len(s) for s in bit_parallel.root_sets], dtype=np.int64)
    set_indptr = np.zeros(set_sizes.shape[0] + 1, dtype=np.int64)
    np.cumsum(set_sizes, out=set_indptr[1:])
    set_members = np.array(
        [v for group in bit_parallel.root_sets for v in group], dtype=np.int64
    )

    metadata = {
        "format_version": FORMAT_VERSION,
        "library_version": __version__,
        "num_vertices": labels.num_vertices,
        "num_bit_parallel_roots": bit_parallel.num_roots,
        "ordering": index.ordering,
    }
    np.savez_compressed(
        Path(path),
        metadata=np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8),
        label_indptr=labels.indptr,
        label_hubs=labels.hub_ranks,
        label_dists=labels.distances,
        order=labels.order,
        bp_roots=bit_parallel.roots,
        bp_dist=bit_parallel.dist,
        bp_s_minus=bit_parallel.s_minus,
        bp_s_zero=bit_parallel.s_zero,
        bp_set_indptr=set_indptr,
        bp_set_members=set_members,
    )


def _decode_metadata(archive) -> dict:
    """Decode and format-check the metadata record of an open archive."""
    metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
    if metadata.get("format_version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported index format version {metadata.get('format_version')}"
        )
    return metadata


def load_index_metadata(path: PathLike) -> dict:
    """Read only the metadata record of a saved index.

    Cheap relative to :func:`load_index` (the label arrays are not
    decompressed), which makes it suitable for the serving layer's snapshot
    reload path: a server can inspect an archive — vertex count, format
    version, bit-parallel configuration — before deciding to hot-swap it in.
    """
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"index file {path} does not exist")
    try:
        with np.load(path, allow_pickle=False) as archive:
            return _decode_metadata(archive)
    except SerializationError:
        raise
    except Exception as exc:
        raise SerializationError(f"failed to read metadata from {path}: {exc}") from exc


def load_index(path: PathLike) -> PrunedLandmarkLabeling:
    """Load an index previously written by :func:`save_index`.

    The returned oracle answers :meth:`~PrunedLandmarkLabeling.distance`
    queries immediately; its ``graph`` attribute is ``None`` because the graph
    itself is not part of the archive.
    """
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"index file {path} does not exist")
    try:
        with np.load(path, allow_pickle=False) as archive:
            metadata = _decode_metadata(archive)
            labels = LabelSet(
                archive["label_indptr"],
                archive["label_hubs"],
                archive["label_dists"],
                archive["order"],
            )
            set_indptr = archive["bp_set_indptr"]
            set_members = archive["bp_set_members"]
            root_sets = [
                [int(v) for v in set_members[set_indptr[i]: set_indptr[i + 1]]]
                for i in range(set_indptr.shape[0] - 1)
            ]
            bit_parallel = BitParallelLabels(
                roots=archive["bp_roots"],
                root_sets=root_sets,
                dist=archive["bp_dist"],
                s_minus=archive["bp_s_minus"],
                s_zero=archive["bp_s_zero"],
            )
    except SerializationError:
        raise
    except Exception as exc:  # malformed archive, wrong keys, bad JSON, ...
        raise SerializationError(f"failed to load index from {path}: {exc}") from exc

    index = PrunedLandmarkLabeling(
        ordering=metadata.get("ordering", "degree"),
        num_bit_parallel_roots=int(metadata.get("num_bit_parallel_roots", 0)),
    )
    index._labels = labels
    index._bit_parallel = bit_parallel
    index._order = labels.order
    index._graph = None
    return index

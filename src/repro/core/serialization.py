"""Saving and loading pruned-landmark-labeling indexes.

The paper points out (Section 6, "Disk-based Query Answering") that because a
query touches only the two contiguous label regions of its endpoints, the
index can live on disk and still answer queries with two seeks.  This module
provides two on-disk formats and the in-memory array-group plumbing they
share with the shared-memory snapshot export:

* ``.npz`` — a compressed archive (the historical format; smallest files).
* raw — the single-file aligned layout of :func:`repro.core.storage.write_raw`,
  chosen automatically for any output path *not* ending in ``.npz``.  Raw
  files are uncompressed so that ``load_index(path, mmap=True)`` can open
  them **zero-copy**: every label array is a read-only ``np.memmap`` view and
  the OS pages label regions in on demand — the paper's disk-based serving
  shape, and the fastest way to get a large index serving (nothing is
  decompressed or copied at load time).

A loaded index answers queries without access to the original graph.

The :func:`index_to_arrays` / :func:`index_from_arrays` pair is the single
source of truth for the field layout; both file formats and
:func:`export_index_to_backend` / :func:`index_from_backend` (the
shared-memory generation export used by :mod:`repro.serving.sharded`) are
thin wrappers over it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Collection, Dict, Optional, Tuple, Union

import numpy as np

from repro._version import __version__
from repro.core import storage
from repro.core.bitparallel import BitParallelLabels
from repro.core.index import PrunedLandmarkLabeling
from repro.core.kernels import DtypePlan
from repro.core.kernels.narrow import NARROW_FIELDS
from repro.core.labels import LabelSet
from repro.core.query import FIELD_KERNEL_KEYS, BatchQueryKernel
from repro.core.storage import MmapBackend, write_raw
from repro.errors import SerializationError

__all__ = [
    "save_index",
    "load_index",
    "load_index_metadata",
    "index_to_arrays",
    "index_from_arrays",
    "export_index_to_backend",
    "index_from_backend",
    "FORMAT_VERSION",
]

PathLike = Union[str, os.PathLike]

#: Version tag embedded in every archive; bumped on incompatible layout changes.
FORMAT_VERSION = 1


# ---------------------------------------------------------------------- #
# Array-group view of an index (shared by every storage medium)
# ---------------------------------------------------------------------- #


def index_to_arrays(
    index: PrunedLandmarkLabeling, *, include_kernel: bool = False
) -> Tuple[Dict[str, np.ndarray], Dict]:
    """Flatten a built index into ``(fields, metadata)``.

    ``fields`` maps storage field names to flat numpy arrays (bit-parallel
    root sets are ragged and therefore stored flattened with offsets);
    ``metadata`` is the small JSON-able record.  With ``include_kernel`` the
    precomputed batch-kernel key array rides along, so an attaching process
    can skip the O(total label entries) kernel derivation.
    """
    if not index.built:
        raise SerializationError("cannot save an index that has not been built")
    labels = index.label_set
    bit_parallel = index.bit_parallel_labels

    set_sizes = np.array([len(s) for s in bit_parallel.root_sets], dtype=np.int64)
    set_indptr = np.zeros(set_sizes.shape[0] + 1, dtype=np.int64)
    np.cumsum(set_sizes, out=set_indptr[1:])
    set_members = np.array(
        [v for group in bit_parallel.root_sets for v in group], dtype=np.int64
    )

    fields: Dict[str, np.ndarray] = {
        "label_indptr": labels.indptr,
        "label_hubs": labels.hub_ranks,
        "label_dists": labels.distances,
        "order": labels.order,
        "bp_roots": bit_parallel.roots,
        "bp_dist": bit_parallel.dist,
        "bp_s_minus": bit_parallel.s_minus,
        "bp_s_zero": bit_parallel.s_zero,
        "bp_set_indptr": set_indptr,
        "bp_set_members": set_members,
    }
    metadata = {
        "format_version": FORMAT_VERSION,
        "library_version": __version__,
        "num_vertices": labels.num_vertices,
        "num_bit_parallel_roots": bit_parallel.num_roots,
        "ordering": index.ordering,
    }
    if include_kernel:
        kernel = index.prepare_batch_kernel()
        fields[FIELD_KERNEL_KEYS] = kernel.keys
        # The narrow-layout arrays and the dtype plan that authorised them
        # are part of the per-generation layout: attaching processes adopt
        # the publishing process's narrowing decision instead of
        # re-measuring (and re-deriving) the index.
        fields.update(kernel.export_narrow_fields())
        metadata["kernel_plan"] = kernel.plan.to_meta()
    return fields, metadata


def index_from_arrays(
    get: Callable[[str], np.ndarray],
    metadata: Dict,
    *,
    has_kernel: bool = False,
    kernel_fields: Optional[Collection[str]] = None,
    backend=None,
) -> PrunedLandmarkLabeling:
    """Reassemble an index from a field lookup (inverse of :func:`index_to_arrays`).

    ``get`` returns the array stored under a field name — an npz archive
    lookup, a backend ``get``, or memmap views; the arrays are used as-is
    (no copy), so zero-copy sources stay zero-copy.  ``backend`` is attached
    to the label set purely to keep the backing storage alive.

    ``kernel_fields`` names the stored fields actually present (the backend
    field directory): when the full narrow-layout set rides along, it is
    handed to the kernel so this process — e.g. a sharded worker attaching a
    published generation — reuses the stored arrays and the recorded
    ``kernel_plan`` dtype decision instead of re-deriving either.
    """
    labels = LabelSet(
        get("label_indptr"),
        get("label_hubs"),
        get("label_dists"),
        get("order"),
        backend=backend,
    )
    set_indptr = get("bp_set_indptr")
    set_members = get("bp_set_members")
    root_sets = [
        [int(v) for v in set_members[set_indptr[i]: set_indptr[i + 1]]]
        for i in range(set_indptr.shape[0] - 1)
    ]
    bit_parallel = BitParallelLabels(
        roots=get("bp_roots"),
        root_sets=root_sets,
        dist=get("bp_dist"),
        s_minus=get("bp_s_minus"),
        s_zero=get("bp_s_zero"),
    )
    index = PrunedLandmarkLabeling(
        ordering=metadata.get("ordering", "degree"),
        num_bit_parallel_roots=int(metadata.get("num_bit_parallel_roots", 0)),
    )
    index._labels = labels
    index._bit_parallel = bit_parallel
    index._order = labels.order
    index._graph = None
    if has_kernel:
        plan_meta = metadata.get("kernel_plan")
        plan = DtypePlan.from_meta(plan_meta) if plan_meta else None
        present = set(kernel_fields) if kernel_fields is not None else set()
        narrow = None
        if all(name in present for name in NARROW_FIELDS):
            narrow = {name: get(name) for name in NARROW_FIELDS}
        index._batch_kernel = BatchQueryKernel.from_arrays(
            labels, get(FIELD_KERNEL_KEYS), plan=plan, narrow_fields=narrow
        )
    return index


def export_index_to_backend(
    index: PrunedLandmarkLabeling,
    backend: storage.SharedMemoryBackend,
    *,
    source: str = "",
) -> None:
    """Copy a built index into a shared-memory group and seal it.

    Fields the backend already holds are skipped: when a diff freeze has
    already patched the label and kernel arrays straight into ``backend``,
    only the remaining (bit-parallel + metadata) pieces are added here.
    Sealing makes the group attachable by :func:`index_from_backend`.
    """
    fields, metadata = index_to_arrays(index, include_kernel=True)
    existing = set(backend.fields())
    for field, array in fields.items():
        if field not in existing:
            backend.put(field, array)
    if source:
        metadata = dict(metadata, source=source)
    backend.seal(metadata)


def index_from_backend(backend) -> PrunedLandmarkLabeling:
    """Reassemble an index over a sealed backend's (read-only) array views."""
    metadata = backend.meta
    return index_from_arrays(
        backend.get,
        metadata,
        has_kernel=FIELD_KERNEL_KEYS in backend.fields(),
        kernel_fields=backend.fields(),
        backend=backend,
    )


# ---------------------------------------------------------------------- #
# Disk formats
# ---------------------------------------------------------------------- #


def save_index(index: PrunedLandmarkLabeling, path: PathLike) -> None:
    """Serialise a built index to ``path``.

    Paths ending in ``.npz`` get the compressed archive; any other suffix
    gets the raw single-file layout, which loads faster and supports
    zero-copy ``load_index(path, mmap=True)``.

    Raises
    ------
    SerializationError
        If the index has not been built yet.
    """
    path = Path(path)
    if path.suffix == ".npz":
        fields, metadata = index_to_arrays(index)
        np.savez_compressed(
            path,
            metadata=np.frombuffer(
                json.dumps(metadata).encode("utf-8"), dtype=np.uint8
            ),
            **fields,
        )
    else:
        # Raw files carry the precomputed kernel keys: a zero-copy (mmap)
        # load must not have to derive an O(total label entries) heap array
        # before it can answer its first batch.
        fields, metadata = index_to_arrays(index, include_kernel=True)
        write_raw(path, fields, metadata)


def _decode_npz_metadata(archive) -> dict:
    """Decode the metadata record of an open npz archive."""
    return json.loads(bytes(archive["metadata"]).decode("utf-8"))


def _check_format(metadata: dict) -> dict:
    if metadata.get("format_version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported index format version {metadata.get('format_version')}"
        )
    return metadata


def _is_raw_file(path: Path) -> bool:
    with open(path, "rb") as handle:
        return handle.read(len(storage.RAW_MAGIC)) == storage.RAW_MAGIC


def load_index_metadata(path: PathLike) -> dict:
    """Read only the metadata record of a saved index (either format).

    Cheap relative to :func:`load_index` (the label arrays are not
    decompressed or mapped), which makes it suitable for the serving layer's
    snapshot reload path: a server can inspect an archive — vertex count,
    format version, bit-parallel configuration — before deciding to hot-swap
    it in.
    """
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"index file {path} does not exist")
    try:
        if _is_raw_file(path):
            return _check_format(storage.read_raw_meta(path))
        with np.load(path, allow_pickle=False) as archive:
            return _check_format(_decode_npz_metadata(archive))
    except SerializationError:
        raise
    except Exception as exc:
        raise SerializationError(f"failed to read metadata from {path}: {exc}") from exc


def load_index(path: PathLike, *, mmap: bool = False) -> PrunedLandmarkLabeling:
    """Load an index previously written by :func:`save_index`.

    The returned oracle answers :meth:`~PrunedLandmarkLabeling.distance`
    queries immediately; its ``graph`` attribute is ``None`` because the graph
    itself is not part of the archive.

    Parameters
    ----------
    path:
        Either format written by :func:`save_index` (sniffed by magic bytes).
    mmap:
        Zero-copy load: every label array is a **read-only** memory-mapped
        view of the file, paged in on demand, never copied onto the heap.
        Requires the raw layout — compressed npz archives cannot be mapped;
        re-save with a non-``.npz`` suffix to use this.
    """
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"index file {path} does not exist")
    try:
        if _is_raw_file(path):
            backend = MmapBackend(path)
            metadata = _check_format(dict(backend.meta))
            if mmap:
                return index_from_arrays(
                    backend.get,
                    metadata,
                    has_kernel=FIELD_KERNEL_KEYS in backend.fields(),
                    kernel_fields=backend.fields(),
                    backend=backend,
                )
            # Heap load from a raw file: copy the views out (dtype-preserving
            # — the raw layout's dtypes are the contract), drop the map.
            arrays = {}
            for field in backend.fields():
                view = backend.get(field)
                arrays[field] = np.array(view, dtype=view.dtype)
            backend.close()
            return index_from_arrays(
                arrays.__getitem__,
                metadata,
                has_kernel=FIELD_KERNEL_KEYS in arrays,
                kernel_fields=arrays.keys(),
            )
        if mmap:
            raise SerializationError(
                f"{path} is a compressed npz archive, which cannot be "
                f"memory-mapped; save the index with a non-.npz suffix to "
                f"get the zero-copy raw layout"
            )
        with np.load(path, allow_pickle=False) as archive:
            metadata = _check_format(_decode_npz_metadata(archive))
            arrays = {name: archive[name] for name in archive.files if name != "metadata"}
        return index_from_arrays(arrays.__getitem__, metadata)
    except SerializationError:
        raise
    except Exception as exc:  # malformed archive, wrong keys, bad JSON, ...
        raise SerializationError(f"failed to load index from {path}: {exc}") from exc

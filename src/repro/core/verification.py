"""Index verification utilities.

A distance oracle is only useful if it is *trusted*.  This module provides the
checks a downstream user (or a CI pipeline) can run against a built index:

* :func:`verify_against_bfs` — sample vertices, recompute their single-source
  distances with a BFS and compare against the index, reporting any mismatch.
* :func:`verify_label_invariants` — structural invariants of the labels that
  do not need any recomputation: hub ranks sorted and unique per vertex, every
  stored distance equal to the true hub distance, no vertex labelled by a hub
  of larger rank than its own.
* :func:`verify_index` — both of the above, returning a single report object.

These checks are what the test suite uses internally; exposing them as a
public API lets users validate indexes built on their own data (or loaded from
untrusted files) at whatever sampling budget they can afford.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.index import PrunedLandmarkLabeling
from repro.errors import IndexStateError
from repro.graph.csr import Graph
from repro.graph.traversal import UNREACHABLE, bfs_distances

__all__ = [
    "VerificationIssue",
    "VerificationReport",
    "verify_against_bfs",
    "verify_label_invariants",
    "verify_index",
]


@dataclass
class VerificationIssue:
    """One discrepancy found during verification."""

    kind: str
    vertex: int
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] vertex {self.vertex}: {self.detail}"


@dataclass
class VerificationReport:
    """Outcome of a verification pass."""

    num_sources_checked: int = 0
    num_pairs_checked: int = 0
    num_vertices_checked: int = 0
    issues: List[VerificationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether no issue was found."""
        return not self.issues

    def merge(self, other: "VerificationReport") -> "VerificationReport":
        """Combine two reports (sums counters, concatenates issues)."""
        return VerificationReport(
            num_sources_checked=self.num_sources_checked + other.num_sources_checked,
            num_pairs_checked=self.num_pairs_checked + other.num_pairs_checked,
            num_vertices_checked=self.num_vertices_checked
            + other.num_vertices_checked,
            issues=self.issues + other.issues,
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "OK" if self.ok else f"{len(self.issues)} issue(s)"
        return (
            f"verification: {status} "
            f"({self.num_sources_checked} sources, {self.num_pairs_checked} pairs, "
            f"{self.num_vertices_checked} vertex labels checked)"
        )


def _require_graph(index: PrunedLandmarkLabeling) -> Graph:
    graph = index.graph
    if graph is None:
        raise IndexStateError(
            "verification needs the original graph; indexes loaded from disk do "
            "not carry one — pass the graph to the index or rebuild it"
        )
    return graph


def verify_against_bfs(
    index: PrunedLandmarkLabeling,
    *,
    num_sources: int = 10,
    seed: int = 0,
    max_issues: int = 20,
) -> VerificationReport:
    """Compare the index against fresh BFS distances from sampled sources.

    Every vertex reachable (or unreachable) from each sampled source is
    compared, so one source checks ``n`` pairs at the cost of a single BFS
    plus one vectorised one-to-many index query.
    """
    if not index.built:
        raise IndexStateError("the index has not been built yet; call build()")
    graph = _require_graph(index)
    n = graph.num_vertices
    report = VerificationReport()
    if n == 0:
        return report

    rng = np.random.default_rng(seed)
    sources = rng.choice(n, size=min(num_sources, n), replace=False)
    for source in sources:
        source = int(source)
        truth = bfs_distances(graph, source).astype(np.float64)
        truth[truth == UNREACHABLE] = np.inf
        answered = index.distances_from(source)
        report.num_sources_checked += 1
        report.num_pairs_checked += n
        mismatches = np.flatnonzero(answered != truth)
        for target in mismatches[: max_issues - len(report.issues)]:
            report.issues.append(
                VerificationIssue(
                    kind="distance-mismatch",
                    vertex=int(target),
                    detail=(
                        f"d({source}, {int(target)}) = {truth[target]} by BFS but "
                        f"{answered[target]} from the index"
                    ),
                )
            )
        if len(report.issues) >= max_issues:
            break
    return report


def verify_label_invariants(
    index: PrunedLandmarkLabeling,
    *,
    num_vertices: Optional[int] = None,
    seed: int = 0,
    max_issues: int = 20,
) -> VerificationReport:
    """Check structural label invariants on a sample of vertices.

    For each sampled vertex: hub ranks are strictly increasing (sorted and
    unique), no hub has a larger rank than the vertex's own rank, and each
    stored distance equals the true BFS distance to the hub vertex.
    """
    if not index.built:
        raise IndexStateError("the index has not been built yet; call build()")
    graph = _require_graph(index)
    labels = index.label_set
    n = labels.num_vertices
    report = VerificationReport()
    if n == 0:
        return report

    rng = np.random.default_rng(seed)
    if num_vertices is None or num_vertices >= n:
        sample = np.arange(n)
    else:
        sample = rng.choice(n, size=num_vertices, replace=False)

    # One BFS per *hub* would be wasteful; instead run one BFS per sampled
    # vertex and check its label distances against it (distances are symmetric
    # on undirected graphs).
    for vertex in sample:
        vertex = int(vertex)
        hubs, dists = labels.vertex_label(vertex)
        report.num_vertices_checked += 1
        if hubs.shape[0] == 0:
            continue
        if np.any(np.diff(hubs) <= 0):
            report.issues.append(
                VerificationIssue(
                    kind="unsorted-label",
                    vertex=vertex,
                    detail="hub ranks are not strictly increasing",
                )
            )
        if hubs.max() > labels.rank[vertex]:
            report.issues.append(
                VerificationIssue(
                    kind="rank-violation",
                    vertex=vertex,
                    detail=(
                        "label contains a hub processed after the vertex itself, "
                        "which pruned landmark labeling never produces"
                    ),
                )
            )
        truth = bfs_distances(graph, vertex)
        hub_vertices = labels.order[hubs]
        for hub_vertex, stored in zip(hub_vertices, dists):
            actual = truth[int(hub_vertex)]
            actual_value = float("inf") if actual == UNREACHABLE else float(actual)
            if actual_value != float(stored):
                report.issues.append(
                    VerificationIssue(
                        kind="stale-distance",
                        vertex=vertex,
                        detail=(
                            f"label stores d({vertex}, {int(hub_vertex)}) = {stored} "
                            f"but the graph says {actual_value}"
                        ),
                    )
                )
        if len(report.issues) >= max_issues:
            break
    return report


def verify_index(
    index: PrunedLandmarkLabeling,
    *,
    num_sources: int = 10,
    num_label_vertices: Optional[int] = 100,
    seed: int = 0,
) -> VerificationReport:
    """Run both verification passes and return the combined report."""
    distances = verify_against_bfs(index, num_sources=num_sources, seed=seed)
    invariants = verify_label_invariants(
        index, num_vertices=num_label_vertices, seed=seed
    )
    return distances.merge(invariants)

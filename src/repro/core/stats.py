"""Index statistics: the quantities reported in the paper's tables and figures.

This module turns a built index into the measurement records used throughout
the evaluation: average label size (the "LN" column of Table 3), index size
("IS"), label-size distribution (Figure 3c), and per-BFS labeling counts
(Figure 3a/3b).  The experiment harness composes these with timing data to
produce the final tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.index import PrunedLandmarkLabeling

__all__ = ["IndexStats", "collect_index_stats", "label_size_percentiles"]


@dataclass
class IndexStats:
    """Summary of a built pruned-landmark-labeling index."""

    num_vertices: int
    num_edges: int
    #: Average number of normal label entries per vertex (paper's "LN", left part).
    average_label_size: float
    #: Maximum normal label size over all vertices.
    max_label_size: int
    #: Total number of normal label entries.
    total_label_entries: int
    #: Number of bit-parallel roots (paper's "LN", right part).
    num_bit_parallel_roots: int
    #: Estimated index size in bytes (normal plus bit-parallel labels).
    index_size_bytes: int
    #: Label-size percentiles keyed by percentile value (0, 25, 50, 75, 90, 99, 100).
    label_size_percentiles: Dict[int, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary view for CSV reporting."""
        record: Dict[str, float] = {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "average_label_size": self.average_label_size,
            "max_label_size": self.max_label_size,
            "total_label_entries": self.total_label_entries,
            "num_bit_parallel_roots": self.num_bit_parallel_roots,
            "index_size_bytes": self.index_size_bytes,
        }
        for percentile, value in self.label_size_percentiles.items():
            record[f"label_size_p{percentile}"] = value
        return record


def label_size_percentiles(
    index: PrunedLandmarkLabeling,
    percentiles: Optional[list] = None,
) -> Dict[int, float]:
    """Label-size percentiles over all vertices (Figure 3c's curve, summarised)."""
    if percentiles is None:
        percentiles = [0, 25, 50, 75, 90, 99, 100]
    sizes = index.label_set.label_sizes()
    if sizes.size == 0:
        return {p: 0.0 for p in percentiles}
    return {p: float(np.percentile(sizes, p)) for p in percentiles}


def collect_index_stats(index: PrunedLandmarkLabeling) -> IndexStats:
    """Collect all summary statistics from a built index."""
    labels = index.label_set
    sizes = labels.label_sizes()
    graph = index.graph
    num_edges = graph.num_edges if graph is not None else 0
    return IndexStats(
        num_vertices=labels.num_vertices,
        num_edges=num_edges,
        average_label_size=labels.average_label_size(),
        max_label_size=int(sizes.max()) if sizes.size else 0,
        total_label_entries=labels.total_entries(),
        num_bit_parallel_roots=index.bit_parallel_labels.num_roots,
        index_size_bytes=index.index_size_bytes(),
        label_size_percentiles=label_size_percentiles(index),
    )

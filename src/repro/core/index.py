"""Public facade: the :class:`PrunedLandmarkLabeling` distance oracle.

This is the class most users interact with.  It bundles the three ingredients
of the paper — vertex ordering (Section 4.4), optional bit-parallel labels
(Section 5) and pruned BFS labeling (Section 4.2) — behind a scikit-learn-like
``build`` / ``distance`` API:

>>> from repro import PrunedLandmarkLabeling
>>> from repro.generators import barabasi_albert_graph
>>> graph = barabasi_albert_graph(1000, 3, seed=1)
>>> index = PrunedLandmarkLabeling(num_bit_parallel_roots=4).build(graph)
>>> index.distance(0, 999)  # exact shortest-path distance  # doctest: +SKIP
3.0
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bitparallel import BitParallelLabels, build_bit_parallel_labels
from repro.core.labels import LabelSet
from repro.core.pruned import ConstructionStats, build_pruned_labels
from repro.core.query import BatchQueryKernel
from repro.errors import IndexStateError, VertexError
from repro.graph.csr import Graph
from repro.graph.ordering import compute_order

__all__ = ["PrunedLandmarkLabeling", "build_index", "validate_vertex_ids"]


def validate_vertex_ids(endpoints: np.ndarray, num_vertices: int) -> None:
    """Raise :class:`~repro.errors.VertexError` if any id is out of ``[0, n)``.

    Shared by the batch query path and the serving layer's request admission
    so both reject the same inputs with the same error.
    """
    bad = (endpoints < 0) | (endpoints >= num_vertices)
    if bad.any():
        raise VertexError(int(endpoints[bad][0]), num_vertices)


class PrunedLandmarkLabeling:
    """Exact 2-hop distance oracle built by pruned landmark labeling.

    Parameters
    ----------
    ordering:
        Vertex ordering strategy name (``"degree"``, ``"closeness"``,
        ``"random"``, ...) or an explicit order array.  Degree is the paper's
        default and almost always the right choice.
    num_bit_parallel_roots:
        Number ``t`` of bit-parallel BFSs performed before the pruned phase
        (Section 5.4).  ``0`` disables bit-parallel labels.  The paper uses 16
        for small graphs and 64 for large ones.
    seed:
        Seed forwarded to randomised ordering strategies.
    collect_stats:
        Whether to record per-BFS construction counters (needed by the
        Figure 3 experiments; small overhead otherwise).

    Notes
    -----
    The oracle is *exact*: after :meth:`build`, :meth:`distance` returns the
    true shortest-path hop distance for every pair of vertices (``inf`` for
    disconnected pairs).  Query time is ``O(|L(s)| + |L(t)| + t)``.
    """

    def __init__(
        self,
        *,
        ordering: str = "degree",
        num_bit_parallel_roots: int = 0,
        seed: int = 0,
        collect_stats: bool = False,
    ) -> None:
        self.ordering = ordering
        self.num_bit_parallel_roots = int(num_bit_parallel_roots)
        self.seed = seed
        self.collect_stats = collect_stats

        self._graph: Optional[Graph] = None
        self._labels: Optional[LabelSet] = None
        self._bit_parallel: Optional[BitParallelLabels] = None
        self._order: Optional[np.ndarray] = None
        self._stats: Optional[ConstructionStats] = None
        self._batch_kernel: Optional[BatchQueryKernel] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def build(
        self, graph: Graph, *, order: Optional[Sequence[int]] = None
    ) -> "PrunedLandmarkLabeling":
        """Build the index for ``graph`` and return ``self``.

        Parameters
        ----------
        graph:
            Undirected, unweighted graph (see :class:`repro.core.weighted` and
            :class:`repro.core.directed` for the other variants).
        order:
            Optional explicit vertex order overriding the ``ordering``
            strategy; must be a permutation of all vertices.
        """
        if order is not None:
            order_array = np.asarray(order, dtype=np.int64)
        else:
            order_array = compute_order(graph, self.ordering, seed=self.seed)

        bit_parallel = build_bit_parallel_labels(
            graph, order_array, self.num_bit_parallel_roots
        )
        labels, stats = build_pruned_labels(
            graph,
            order_array,
            bit_parallel=bit_parallel,
            collect_stats=self.collect_stats,
        )
        self._graph = graph
        self._labels = labels
        self._bit_parallel = bit_parallel
        self._order = order_array
        self._stats = stats
        self._batch_kernel = None
        return self

    @property
    def built(self) -> bool:
        """Whether :meth:`build` has completed."""
        return self._labels is not None

    def _require_built(self) -> None:
        if not self.built:
            raise IndexStateError("the index has not been built yet; call build()")

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def distance(self, s: int, t: int) -> float:
        """Exact shortest-path distance between ``s`` and ``t`` (``inf`` if disconnected).

        Raises
        ------
        VertexError
            If either id is out of ``[0, n)``.  Negative ids in particular
            must not fall through to numpy's end-relative indexing, which
            would silently answer for vertex ``n + id``; ids beyond ``n``
            would surface as a raw ``IndexError`` mid-query.
        """
        self._require_built()
        num_vertices = self._labels.num_vertices
        if not (0 <= s < num_vertices):
            raise VertexError(s, num_vertices)
        if not (0 <= t < num_vertices):
            raise VertexError(t, num_vertices)
        if s == t:
            return 0.0
        best = self._labels.query(s, t)
        if self._bit_parallel is not None and not self._bit_parallel.empty():
            best = min(best, self._bit_parallel.query(s, t))
        return best

    def distances(self, pairs: Iterable[Tuple[int, int]]) -> np.ndarray:
        """Distances for a batch of ``(s, t)`` pairs.

        Routed through :meth:`distance_batch`, so large batches run at
        vectorised speed rather than one interpreted merge join per pair.
        """
        self._require_built()
        pairs = list(pairs)
        if not pairs:
            return np.empty(0, dtype=np.float64)
        pair_array = np.asarray(pairs, dtype=np.int64)
        return self.distance_batch(pair_array[:, 0], pair_array[:, 1])

    def distance_batch(
        self,
        sources: Sequence[int],
        targets: Sequence[int],
        *,
        chunk_size: int = 65536,
    ) -> np.ndarray:
        """Exact distances for aligned ``sources[i], targets[i]`` pairs, vectorised.

        The serving-path entry point: many independent pairs are answered per
        call through :class:`~repro.core.query.BatchQueryKernel` (and the
        batched bit-parallel test), avoiding all per-pair Python overhead.
        Results are bit-identical to calling :meth:`distance` in a loop.

        Parameters
        ----------
        sources, targets:
            Aligned vertex-id arrays of equal length.
        chunk_size:
            Pairs processed per vectorised pass; bounds the temporary-array
            memory for very large batches.

        Raises
        ------
        VertexError
            If any vertex id is out of range.
        """
        self._require_built()
        source_array = np.atleast_1d(np.asarray(sources, dtype=np.int64))
        target_array = np.atleast_1d(np.asarray(targets, dtype=np.int64))
        if source_array.shape != target_array.shape:
            raise ValueError("sources and targets must have the same length")
        num_vertices = self._labels.num_vertices
        validate_vertex_ids(source_array, num_vertices)
        validate_vertex_ids(target_array, num_vertices)

        kernel = self.prepare_batch_kernel()

        result = np.empty(source_array.shape[0], dtype=np.float64)
        use_bp = self._bit_parallel is not None and not self._bit_parallel.empty()
        for start in range(0, source_array.shape[0], max(chunk_size, 1)):
            stop = start + max(chunk_size, 1)
            chunk_s = source_array[start:stop]
            chunk_t = target_array[start:stop]
            chunk = kernel.query_pairs(chunk_s, chunk_t)
            if use_bp:
                chunk = np.minimum(chunk, self._bit_parallel.query_pairs(chunk_s, chunk_t))
            chunk[chunk_s == chunk_t] = 0.0
            result[start:stop] = chunk
        return result

    def prepare_batch_kernel(self) -> BatchQueryKernel:
        """Build (or return) the precomputed batch-query kernel.

        Construction is O(total label entries); the serving layer calls this
        eagerly so the first request batch does not pay for it.
        """
        self._require_built()
        if self._batch_kernel is None:
            self._batch_kernel = BatchQueryKernel(self._labels)
        return self._batch_kernel

    def query(self, s: int, t: int) -> float:
        """Alias of :meth:`distance` matching the paper's terminology."""
        return self.distance(s, t)

    def distances_from(
        self, source: int, targets: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Exact distances from one source to many targets, vectorised.

        When a single vertex is compared against hundreds of candidates (the
        socially-sensitive search and context-ranking workloads of the paper's
        introduction) this is substantially faster than calling
        :meth:`distance` in a loop: the source label is materialised once and
        every target label is evaluated with flat numpy operations.

        Parameters
        ----------
        source:
            The fixed endpoint.
        targets:
            Target vertices; ``None`` means all vertices, in id order.

        Returns
        -------
        numpy.ndarray
            ``float64`` exact distances (``inf`` for disconnected pairs).
        """
        self._require_built()
        # Routed through the pluggable kernel layer (numpy baseline, narrow
        # dtypes, or numba JIT — byte-identical); the kernel applies no
        # source-zeroing, which happens below after the bit-parallel fold.
        normal = self.prepare_batch_kernel().query_one_to_many(source, targets)
        if self._bit_parallel is not None and not self._bit_parallel.empty():
            target_array = (
                None if targets is None else np.asarray(list(targets), dtype=np.int64)
            )
            bp = self._bit_parallel.query_one_to_many(source, target_array)
            normal = np.minimum(normal, bp)
        if targets is None:
            normal[source] = 0.0
        else:
            target_array = np.asarray(list(targets), dtype=np.int64)
            normal[target_array == source] = 0.0
        return normal

    def top_k_closest(
        self, source: int, candidates: Sequence[int], k: int
    ) -> List[Tuple[int, float]]:
        """The ``k`` candidates closest to ``source``, as ``(vertex, distance)`` pairs.

        Ties are broken by vertex id; unreachable candidates sort last and are
        included only if fewer than ``k`` reachable candidates exist.
        """
        self._require_built()
        candidate_array = np.asarray(list(candidates), dtype=np.int64)
        distances = self.distances_from(source, candidate_array)
        order = np.lexsort((candidate_array, distances))
        chosen = order[: max(k, 0)]
        return [(int(candidate_array[i]), float(distances[i])) for i in chosen]

    def connected(self, s: int, t: int) -> bool:
        """Whether a path exists between ``s`` and ``t``."""
        return np.isfinite(self.distance(s, t))

    def covering_rank(self, s: int, t: int) -> Optional[int]:
        """Number of pruned BFSs after which the pair ``(s, t)`` became covered.

        A pair is covered after ``k`` BFSs when the labels restricted to hubs
        of rank below ``k`` already report the exact distance (the quantity
        plotted in Figure 4 of the paper).  Returns ``None`` for disconnected
        pairs, and ``0`` for ``s == t``.

        Only meaningful for indexes built without bit-parallel labels, because
        pairs covered by the bit-parallel phase never enter the normal labels.
        """
        self._require_built()
        if s == t:
            return 0
        labels = self._labels
        s_hubs, s_dists = labels.vertex_label(s)
        t_hubs, t_dists = labels.vertex_label(t)
        if s_hubs.shape[0] == 0 or t_hubs.shape[0] == 0:
            return None
        common, s_idx, t_idx = np.intersect1d(
            s_hubs, t_hubs, assume_unique=True, return_indices=True
        )
        if common.shape[0] == 0:
            return None
        sums = s_dists[s_idx].astype(np.int64) + t_dists[t_idx].astype(np.int64)
        exact = sums.min()
        achieving = common[sums == exact]
        return int(achieving.min()) + 1

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> Graph:
        """The graph the index was built on."""
        self._require_built()
        return self._graph

    @property
    def label_set(self) -> LabelSet:
        """The normal (non-bit-parallel) labels."""
        self._require_built()
        return self._labels

    @property
    def bit_parallel_labels(self) -> BitParallelLabels:
        """The bit-parallel labels (possibly empty)."""
        self._require_built()
        return self._bit_parallel

    @property
    def order(self) -> np.ndarray:
        """The vertex processing order used during construction."""
        self._require_built()
        return self._order

    @property
    def construction_stats(self) -> ConstructionStats:
        """Per-BFS construction counters (populated when ``collect_stats``)."""
        self._require_built()
        return self._stats

    def average_label_size(self) -> float:
        """Average number of normal label entries per vertex (paper's LN)."""
        self._require_built()
        return self._labels.average_label_size()

    def index_size_bytes(self) -> int:
        """Approximate in-memory index size (normal plus bit-parallel labels)."""
        self._require_built()
        total = self._labels.nbytes()
        if self._bit_parallel is not None:
            total += self._bit_parallel.nbytes()
        return total

    def label_of(self, vertex: int) -> List[Tuple[int, int]]:
        """Label entries of one vertex as ``(hub_vertex, distance)`` pairs."""
        self._require_built()
        return self._labels.vertex_label_as_vertices(vertex)


def build_index(graph: Graph, **kwargs) -> PrunedLandmarkLabeling:
    """One-call convenience constructor: ``build_index(graph, ordering="degree")``."""
    return PrunedLandmarkLabeling(**kwargs).build(graph)

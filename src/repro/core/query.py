"""Low-level query kernels for 2-hop labels.

Three kernels are provided, mirroring Section 4.5 of the paper:

* :func:`merge_join_query` — the textbook two-pointer merge join over two
  sorted label arrays, ``O(|L(s)| + |L(t)|)`` time.  This is the reference
  implementation used by tests.
* :func:`intersect_query` — the numpy ``intersect1d`` variant used by
  :class:`~repro.core.labels.LabelSet` at query time; asymptotically a log
  factor worse but far faster in practice under the Python interpreter.
* :class:`RootedQueryEvaluator` — the "targeted" evaluator used for the prune
  test during indexing.  It materialises the current root's label into a
  temporary distance array ``T`` indexed by hub rank, so each prune test costs
  ``O(|L(u)|)`` instead of ``O(|L(root)| + |L(u)|)`` — the optimisation the
  paper credits with a ~2x preprocessing speed-up.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.labels import INF_DISTANCE, LabelAccumulator

__all__ = ["merge_join_query", "intersect_query", "RootedQueryEvaluator"]


def merge_join_query(
    s_hubs: Sequence[int],
    s_dists: Sequence[int],
    t_hubs: Sequence[int],
    t_dists: Sequence[int],
) -> float:
    """Two-pointer merge join over two rank-sorted labels.

    Returns the minimum ``d(s, w) + d(w, t)`` over common hubs ``w``, or
    ``inf`` when the labels are disjoint.
    """
    best = float("inf")
    i, j = 0, 0
    len_s, len_t = len(s_hubs), len(t_hubs)
    while i < len_s and j < len_t:
        hub_s, hub_t = s_hubs[i], t_hubs[j]
        if hub_s == hub_t:
            candidate = s_dists[i] + t_dists[j]
            if candidate < best:
                best = candidate
            i += 1
            j += 1
        elif hub_s < hub_t:
            i += 1
        else:
            j += 1
    return best


def intersect_query(
    s_hubs: np.ndarray,
    s_dists: np.ndarray,
    t_hubs: np.ndarray,
    t_dists: np.ndarray,
) -> float:
    """Numpy set-intersection variant of the merge join (labels must be sorted)."""
    if s_hubs.shape[0] == 0 or t_hubs.shape[0] == 0:
        return float("inf")
    _, s_idx, t_idx = np.intersect1d(
        s_hubs, t_hubs, assume_unique=True, return_indices=True
    )
    if s_idx.shape[0] == 0:
        return float("inf")
    sums = s_dists[s_idx].astype(np.int64) + t_dists[t_idx].astype(np.int64)
    return float(sums.min())


class RootedQueryEvaluator:
    """Prune-test evaluator specialised to one BFS root (paper Section 4.5.1).

    The evaluator keeps an array ``T`` of length ``max_rank`` where ``T[r]`` is
    the distance from the current root to the hub of rank ``r`` (or
    :data:`~repro.core.labels.INF_DISTANCE` when the root's label has no such
    hub).  ``T`` is populated from the root's current label when the root is
    :meth:`attach`-ed and cleared entry-by-entry on :meth:`detach`, so the cost
    of (re)initialisation is proportional to the root's label size rather than
    to ``n`` — the "avoid O(n) initialisation" point of Section 4.5.1.
    """

    __slots__ = ("_temp", "_touched")

    def __init__(self, max_rank: int) -> None:
        # A plain Python list is noticeably faster than a numpy array here:
        # the prune test indexes it once per label entry from interpreted code,
        # so avoiding numpy scalar boxing shaves ~30% off preprocessing time.
        self._temp: List[int] = [int(INF_DISTANCE)] * (max_rank + 1)
        self._touched: List[int] = []

    def attach(self, labels: LabelAccumulator, root: int) -> None:
        """Load the root's current label into the temporary array."""
        if self._touched:
            raise RuntimeError("attach called while another root is attached")
        for hub_rank, distance in labels.entries(root):
            self._temp[hub_rank] = distance
            self._touched.append(hub_rank)

    def detach(self) -> None:
        """Clear only the entries written by the last :meth:`attach`."""
        infinity = int(INF_DISTANCE)
        for hub_rank in self._touched:
            self._temp[hub_rank] = infinity
        self._touched.clear()

    def query_upper_bound(self, labels: LabelAccumulator, vertex: int) -> int:
        """Minimum ``d(root, w) + d(w, vertex)`` over hubs ``w`` in ``vertex``'s label.

        Runs in ``O(|L(vertex)|)``; returns a value of at least
        :data:`~repro.core.labels.INF_DISTANCE` when no common hub exists.
        """
        temp = self._temp
        best = int(INF_DISTANCE)
        hubs = labels.hub_ranks(vertex)
        dists = labels.distances(vertex)
        for i in range(len(hubs)):
            candidate = dists[i] + temp[hubs[i]]
            if candidate < best:
                best = candidate
        return best

    def query_upper_bound_with_cutoff(
        self, labels: LabelAccumulator, vertex: int, cutoff: int
    ) -> bool:
        """Whether some hub in ``vertex``'s label yields a distance ``<= cutoff``.

        This is the prune test proper: it early-exits on the first witness, so
        in the common "prune immediately via the top hub" case it inspects a
        single entry.
        """
        temp = self._temp
        hubs = labels.hub_ranks(vertex)
        dists = labels.distances(vertex)
        for i in range(len(hubs)):
            if dists[i] + temp[hubs[i]] <= cutoff:
                return True
        return False

"""Low-level query kernels for 2-hop labels.

Three kernels are provided, mirroring Section 4.5 of the paper:

* :func:`merge_join_query` — the textbook two-pointer merge join over two
  sorted label arrays, ``O(|L(s)| + |L(t)|)`` time.  This is the reference
  implementation used by tests.
* :func:`intersect_query` — the numpy ``intersect1d`` variant used by
  :class:`~repro.core.labels.LabelSet` at query time; asymptotically a log
  factor worse but far faster in practice under the Python interpreter.
* :class:`RootedQueryEvaluator` — the "targeted" evaluator used for the prune
  test during indexing.  It materialises the current root's label into a
  temporary distance array ``T`` indexed by hub rank, so each prune test costs
  ``O(|L(u)|)`` instead of ``O(|L(root)| + |L(u)|)`` — the optimisation the
  paper credits with a ~2x preprocessing speed-up.
* :class:`BatchQueryKernel` — the serving-path kernel: it answers *many*
  independent ``(s, t)`` pairs per call with flat numpy operations instead of
  one interpreted merge join per pair.  This is what makes the batched query
  engine in :mod:`repro.serving` worthwhile under the Python interpreter.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.kernels import DtypePlan, KernelData, KernelSelection, create_kernel
from repro.core.kernels import plan_dtypes as _plan_dtypes
from repro.core.kernels.narrow import NARROW_FIELDS, derive_narrow_fields
from repro.core.labels import INF_DISTANCE, LabelAccumulator, LabelSet
from repro.core.storage import ArrayBackend

#: Backend field name of the precomputed kernel key array (shared with the
#: shared-memory snapshot export; see :mod:`repro.core.storage`).
FIELD_KERNEL_KEYS = "kernel_keys"

__all__ = [
    "merge_join_query",
    "intersect_query",
    "RootedQueryEvaluator",
    "BatchQueryKernel",
]


def merge_join_query(
    s_hubs: Sequence[int],
    s_dists: Sequence[int],
    t_hubs: Sequence[int],
    t_dists: Sequence[int],
) -> float:
    """Two-pointer merge join over two rank-sorted labels.

    Returns the minimum ``d(s, w) + d(w, t)`` over common hubs ``w``, or
    ``inf`` when the labels are disjoint.
    """
    best = float("inf")
    i, j = 0, 0
    len_s, len_t = len(s_hubs), len(t_hubs)
    while i < len_s and j < len_t:
        hub_s, hub_t = s_hubs[i], t_hubs[j]
        if hub_s == hub_t:
            candidate = s_dists[i] + t_dists[j]
            if candidate < best:
                best = candidate
            i += 1
            j += 1
        elif hub_s < hub_t:
            i += 1
        else:
            j += 1
    return best


def intersect_query(
    s_hubs: np.ndarray,
    s_dists: np.ndarray,
    t_hubs: np.ndarray,
    t_dists: np.ndarray,
) -> float:
    """Numpy set-intersection variant of the merge join (labels must be sorted)."""
    if s_hubs.shape[0] == 0 or t_hubs.shape[0] == 0:
        return float("inf")
    _, s_idx, t_idx = np.intersect1d(
        s_hubs, t_hubs, assume_unique=True, return_indices=True
    )
    if s_idx.shape[0] == 0:
        return float("inf")
    sums = s_dists[s_idx].astype(np.int64) + t_dists[t_idx].astype(np.int64)
    return float(sums.min())


class RootedQueryEvaluator:
    """Prune-test evaluator specialised to one BFS root (paper Section 4.5.1).

    The evaluator keeps an array ``T`` of length ``max_rank`` where ``T[r]`` is
    the distance from the current root to the hub of rank ``r`` (or
    :data:`~repro.core.labels.INF_DISTANCE` when the root's label has no such
    hub).  ``T`` is populated from the root's current label when the root is
    :meth:`attach`-ed and cleared entry-by-entry on :meth:`detach`, so the cost
    of (re)initialisation is proportional to the root's label size rather than
    to ``n`` — the "avoid O(n) initialisation" point of Section 4.5.1.
    """

    __slots__ = ("_temp", "_touched")

    def __init__(self, max_rank: int) -> None:
        # A plain Python list is noticeably faster than a numpy array here:
        # the prune test indexes it once per label entry from interpreted code,
        # so avoiding numpy scalar boxing shaves ~30% off preprocessing time.
        self._temp: List[int] = [int(INF_DISTANCE)] * (max_rank + 1)
        self._touched: List[int] = []

    def attach(self, labels: LabelAccumulator, root: int) -> None:
        """Load the root's current label into the temporary array."""
        if self._touched:
            raise RuntimeError("attach called while another root is attached")
        for hub_rank, distance in labels.entries(root):
            self._temp[hub_rank] = distance
            self._touched.append(hub_rank)

    def detach(self) -> None:
        """Clear only the entries written by the last :meth:`attach`."""
        infinity = int(INF_DISTANCE)
        for hub_rank in self._touched:
            self._temp[hub_rank] = infinity
        self._touched.clear()

    def query_upper_bound(self, labels: LabelAccumulator, vertex: int) -> int:
        """Minimum ``d(root, w) + d(w, vertex)`` over hubs ``w`` in ``vertex``'s label.

        Runs in ``O(|L(vertex)|)``; returns a value of at least
        :data:`~repro.core.labels.INF_DISTANCE` when no common hub exists.
        """
        temp = self._temp
        best = int(INF_DISTANCE)
        hubs = labels.hub_ranks(vertex)
        dists = labels.distances(vertex)
        for i in range(len(hubs)):
            candidate = dists[i] + temp[hubs[i]]
            if candidate < best:
                best = candidate
        return best

    def query_upper_bound_with_cutoff(
        self, labels: LabelAccumulator, vertex: int, cutoff: int
    ) -> bool:
        """Whether some hub in ``vertex``'s label yields a distance ``<= cutoff``.

        This is the prune test proper: it early-exits on the first witness, so
        in the common "prune immediately via the top hub" case it inspects a
        single entry.
        """
        temp = self._temp
        hubs = labels.hub_ranks(vertex)
        dists = labels.distances(vertex)
        for i in range(len(hubs)):
            if dists[i] + temp[hubs[i]] <= cutoff:
                return True
        return False


class BatchQueryKernel:
    """Vectorised evaluator answering many independent ``(s, t)`` pairs per call.

    The per-pair kernels above pay interpreter and numpy-dispatch overhead for
    every query; at a few microseconds per call that overhead dominates the
    actual label merge.  This kernel amortises it across a whole batch:

    1. At construction, every label entry is encoded into a single sorted
       ``int64`` key ``owner_vertex * stride + hub_rank`` (``stride = n``).
       Because the flat label arrays are grouped by vertex and rank-sorted
       within each vertex, the key array is globally sorted.
    2. Per batch, the label entries of the *smaller* endpoint of each pair are
       gathered into one flat array (a ragged gather, fully vectorised), and
       each entry is probed against the other endpoint's label with one
       ``searchsorted`` over the key array.
    3. Matching entries contribute ``d(s, w) + d(w, t)``; per-pair minima are
       taken with ``np.minimum.reduceat`` over the ragged group boundaries.

    The cost is ``O(sum_i min(|L(s_i)|, |L(t_i)|) * log E)`` machine-level
    operations for the whole batch, with no per-pair Python work at all.
    Results are identical to :meth:`LabelSet.query` (``inf`` when the labels
    share no hub; the ``s == t`` short-circuit is the caller's business, as it
    is for the scalar kernels).

    Execution is delegated to a pluggable :class:`~repro.core.kernels.base.
    KernelBackend` (numpy baseline / narrow-dtype / numba-JIT) chosen by
    :func:`repro.core.kernels.create_kernel` at construction time; all
    backends are byte-identical, so the delegation is invisible on the wire.
    """

    __slots__ = (
        "_keys",
        "_entry_dists",
        "_indptr",
        "_hub_ranks",
        "_sizes",
        "_stride",
        "_plan",
        "_impl",
        "_selection",
    )

    def __init__(
        self,
        labels: LabelSet,
        *,
        backend: Optional[ArrayBackend] = None,
        preference: Optional[str] = None,
    ) -> None:
        num_vertices = labels.num_vertices
        sizes = np.asarray(labels.label_sizes(), dtype=np.int64)
        owners = np.repeat(np.arange(num_vertices, dtype=np.int64), sizes)
        self._stride = np.int64(max(num_vertices, 1))
        # The hub-rank and distance arrays are shared with (not copied from)
        # the immutable label set; sums and keys upcast to int64 at query
        # time.  Sharing keeps kernel construction — and especially
        # :meth:`patched` — down to the one array that must be derived.
        # With ``backend``, that derived key array is allocated from it (so a
        # shared-memory snapshot carries the kernel, and attaching workers
        # skip the O(total entries) re-derivation).
        self._hub_ranks = labels.hub_ranks
        keys = owners * self._stride + self._hub_ranks
        self._keys = keys if backend is None else backend.put(FIELD_KERNEL_KEYS, keys)
        self._entry_dists = labels.distances
        self._indptr = labels.indptr
        self._sizes = sizes
        self._finish(backend=backend, preference=preference)

    def _finish(
        self,
        *,
        backend: Optional[ArrayBackend] = None,
        plan: Optional[DtypePlan] = None,
        narrow_fields: Optional[Mapping[str, np.ndarray]] = None,
        preference: Optional[str] = None,
    ) -> None:
        """Decide the dtype plan, stage narrow arrays, select the backend.

        Called by every construction path after the wide arrays are in
        place.  ``plan`` and ``narrow_fields`` come from a stored generation
        on the attach path (the publishing process's decision is reused);
        otherwise the plan is derived here, and — when publishing onto a
        storage ``backend`` — the narrow arrays are derived and stored so
        that attaching workers get them for free.
        """
        if plan is None:
            plan = _plan_dtypes(self.num_vertices, self._entry_dists)
        narrow: Dict[str, np.ndarray] = dict(narrow_fields) if narrow_fields else {}
        if plan.narrow and backend is not None and not narrow:
            derived = derive_narrow_fields(
                self._keys,
                self._hub_ranks,
                self._entry_dists,
                int(self._stride),
                self.num_vertices,
            )
            narrow = {name: backend.put(name, array) for name, array in derived.items()}
        self._plan = plan
        data = KernelData(
            indptr=self._indptr,
            hub_ranks=self._hub_ranks,
            dists=self._entry_dists,
            keys=self._keys,
            sizes=self._sizes,
            stride=self._stride,
            plan=plan,
            narrow=narrow,
        )
        self._impl, self._selection = create_kernel(data, preference)

    @classmethod
    def from_arrays(
        cls,
        labels: LabelSet,
        keys: np.ndarray,
        *,
        plan: Optional[DtypePlan] = None,
        narrow_fields: Optional[Mapping[str, np.ndarray]] = None,
        preference: Optional[str] = None,
    ) -> "BatchQueryKernel":
        """Reassemble a kernel from ``labels`` plus stored kernel arrays.

        The attach path of the sharded serving layer: ``keys`` is the
        ``owner * stride + hub_rank`` encoding a previous
        :class:`BatchQueryKernel` derived for exactly these labels (and e.g.
        published in the same shared-memory generation), so nothing needs to
        be recomputed beyond the O(n) size table.  ``plan`` and
        ``narrow_fields`` likewise reuse the publishing process's dtype
        decision and narrow-layout arrays when the generation carries them;
        backend selection itself is re-run *here*, so a heterogeneous worker
        pool (numba on some hosts only) degrades per-process.
        """
        if keys.shape != labels.hub_ranks.shape:
            raise ValueError(
                f"kernel key array has {keys.shape[0]} entries for "
                f"{labels.hub_ranks.shape[0]} label entries"
            )
        kernel = cls.__new__(cls)
        kernel._keys = np.asarray(keys, dtype=np.int64)
        kernel._hub_ranks = labels.hub_ranks
        kernel._entry_dists = labels.distances
        kernel._indptr = labels.indptr
        kernel._sizes = np.asarray(labels.label_sizes(), dtype=np.int64)
        kernel._stride = np.int64(max(labels.num_vertices, 1))
        kernel._finish(plan=plan, narrow_fields=narrow_fields, preference=preference)
        return kernel

    @property
    def num_vertices(self) -> int:
        """Number of vertices covered by the kernel."""
        return self._sizes.shape[0]

    @property
    def keys(self) -> np.ndarray:
        """The sorted ``owner * stride + hub_rank`` key array (read-mostly)."""
        return self._keys

    @property
    def plan(self) -> DtypePlan:
        """The per-generation dtype-narrowing decision."""
        return self._plan

    @property
    def selection(self) -> KernelSelection:
        """How the execution backend was chosen (requested/selected/fallback)."""
        return self._selection

    @property
    def backend_name(self) -> str:
        """Name of the kernel backend actually executing queries."""
        return self._impl.name

    def narrow_fields(self) -> Dict[str, np.ndarray]:
        """The narrow-layout arrays staged for this kernel (may be empty)."""
        return dict(self._impl.data.narrow)

    def export_narrow_fields(self) -> Dict[str, np.ndarray]:
        """The complete narrow-layout field set for storage alongside the keys.

        Empty when the dtype plan is wide.  Arrays not yet derived (the
        selected backend may never have needed them) are derived here, so a
        stored generation always carries the full set and attaching workers
        never re-derive.
        """
        if not self._plan.narrow:
            return {}
        narrow = self._impl.data.narrow
        if any(name not in narrow for name in NARROW_FIELDS):
            narrow.update(
                derive_narrow_fields(
                    self._keys,
                    self._hub_ranks,
                    self._entry_dists,
                    int(self._stride),
                    self.num_vertices,
                )
            )
        return {name: narrow[name] for name in NARROW_FIELDS}

    def using(self, preference: str) -> "BatchQueryKernel":
        """A sibling kernel over the same arrays with an explicit backend.

        Shares every label/key array with the receiver; only the execution
        backend differs.  Used by the cross-kernel equality tests and the
        kernel benchmark matrix; check :attr:`selection` to see whether the
        preference was honoured or fell back.
        """
        kernel = BatchQueryKernel.__new__(BatchQueryKernel)
        kernel._keys = self._keys
        kernel._hub_ranks = self._hub_ranks
        kernel._entry_dists = self._entry_dists
        kernel._indptr = self._indptr
        kernel._sizes = self._sizes
        kernel._stride = self._stride
        kernel._finish(
            plan=self._plan,
            narrow_fields=self._impl.data.narrow,
            preference=preference,
        )
        return kernel

    def nbytes(self) -> int:
        """Approximate size of the precomputed key arrays in bytes."""
        total = int(self._keys.nbytes + self._entry_dists.nbytes + self._sizes.nbytes)
        for array in self._impl.data.narrow.values():
            total += int(array.nbytes)
        return total

    def patched(
        self,
        labels: LabelSet,
        dirty_vertices,
        *,
        backend: Optional[ArrayBackend] = None,
    ) -> "BatchQueryKernel":
        """Rebuild the kernel for ``labels``, reusing this kernel's arrays.

        ``labels`` must derive from this kernel's label set with only the
        labels of ``dirty_vertices`` changed (the contract of
        :meth:`LabelSet.patched`).  Entry keys encode ``owner * stride +
        hub_rank`` — both unchanged outside the dirty vertices — so every
        untouched run is block-copied from the existing arrays and only the
        dirty segments are re-encoded.  This keeps diff-based snapshot
        publication free of the O(total label entries) kernel rebuild.  With
        ``backend``, the new key array is patched directly into it (e.g. the
        next shared-memory generation).
        """
        num_vertices = labels.num_vertices
        if num_vertices != self.num_vertices:
            return BatchQueryKernel(labels, backend=backend)
        new_indptr = np.asarray(labels.indptr, dtype=np.int64)
        total = int(new_indptr[-1])
        if backend is None:
            new_keys = np.empty(total, dtype=np.int64)
        else:
            new_keys = backend.empty(FIELD_KERNEL_KEYS, (total,), np.int64)
        stride = self._stride
        run_start = 0
        for vertex in sorted(int(v) for v in dirty_vertices) + [num_vertices]:
            if run_start < vertex:
                src0, src1 = self._indptr[run_start], self._indptr[vertex]
                dst0 = new_indptr[run_start]
                new_keys[dst0: dst0 + (src1 - src0)] = self._keys[src0:src1]
            if vertex < num_vertices:
                hubs, _ = labels.vertex_label(vertex)
                dst0, dst1 = new_indptr[vertex], new_indptr[vertex + 1]
                new_keys[dst0:dst1] = vertex * stride + hubs.astype(np.int64)
            run_start = vertex + 1
        kernel = BatchQueryKernel.__new__(BatchQueryKernel)
        kernel._keys = new_keys
        kernel._hub_ranks = labels.hub_ranks
        kernel._entry_dists = labels.distances
        kernel._indptr = new_indptr
        kernel._sizes = np.asarray(labels.label_sizes(), dtype=np.int64)
        kernel._stride = stride
        # The patched labels can change the dtype plan (a repair can raise the
        # max distance past the narrow bound), so it is re-derived rather
        # than inherited.
        kernel._finish(backend=backend)
        return kernel

    def query_pairs(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Label distances for aligned ``sources[i], targets[i]`` pairs.

        Returns a ``float64`` array (``inf`` where no common hub exists).
        Inputs must be in-range vertex ids; callers validate.  Delegates to
        the selected kernel backend; all backends are byte-identical.
        """
        return self._impl.query_pairs(sources, targets)

    def query_one_to_many(
        self, source: int, targets: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Label distances from one source to many targets (all when ``None``).

        Returns ``float64`` distances aligned with ``targets`` (``inf`` where
        no common hub exists).  Unlike :meth:`LabelSet.query_one_to_many`,
        no ``source == target`` zeroing is applied — the index facade does
        that after folding in the bit-parallel bound.
        """
        return self._impl.query_one_to_many(source, targets)

"""Shortest-path reconstruction (Section 6, "Shortest-Path Queries").

To return actual paths instead of just distances, each label entry carries one
extra field: the *parent* of the labelled vertex in the pruned BFS tree rooted
at the entry's hub.  A path between ``s`` and ``t`` is reconstructed by

1. finding the hub ``w`` that minimises ``d(s, w) + d(w, t)`` (the same merge
   join used for distance queries), then
2. walking parent pointers from ``s`` up to ``w`` and from ``t`` up to ``w``.

The walk is well defined because a labelled vertex is always discovered from a
*labelled* (non-pruned) vertex one level closer to the hub, so every vertex on
the walk has an entry for ``w`` as well.

Bit-parallel labels are intentionally not used by this class: a pair whose
minimum is realised only inside a bit-parallel label has no parent pointers to
follow.  Use :class:`~repro.core.index.PrunedLandmarkLabeling` when only
distances are needed and bit-parallel speed-ups are desired.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import IndexBuildError, IndexStateError
from repro.graph.csr import Graph
from repro.graph.ordering import compute_order

__all__ = ["PathPrunedLandmarkLabeling"]


class PathPrunedLandmarkLabeling:
    """Exact shortest-path (not just distance) oracle for undirected graphs.

    Examples
    --------
    >>> from repro.graph import Graph
    >>> graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
    >>> oracle = PathPrunedLandmarkLabeling().build(graph)
    >>> oracle.shortest_path(0, 3)
    [0, 1, 2, 3]
    """

    def __init__(self, *, ordering: str = "degree", seed: int = 0) -> None:
        self.ordering = ordering
        self.seed = seed
        self._graph: Optional[Graph] = None
        self._order: Optional[np.ndarray] = None
        # Per-vertex parallel lists: hub rank, distance, parent vertex.
        self._hubs: Optional[List[List[int]]] = None
        self._dists: Optional[List[List[int]]] = None
        self._parents: Optional[List[List[int]]] = None
        self._build_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def build(
        self, graph: Graph, *, order: Optional[Sequence[int]] = None
    ) -> "PathPrunedLandmarkLabeling":
        """Run pruned BFSs recording parent pointers along with distances."""
        if graph.directed:
            raise IndexBuildError(
                "PathPrunedLandmarkLabeling expects an undirected graph"
            )
        n = graph.num_vertices
        if order is not None:
            order_array = np.asarray(order, dtype=np.int64)
            if order_array.shape[0] != n or np.any(
                np.sort(order_array) != np.arange(n)
            ):
                raise IndexBuildError("order must be a permutation of all vertices")
        else:
            order_array = compute_order(graph, self.ordering, seed=self.seed)

        start_time = time.perf_counter()
        hubs: List[List[int]] = [[] for _ in range(n)]
        dists: List[List[int]] = [[] for _ in range(n)]
        parents: List[List[int]] = [[] for _ in range(n)]
        temp = np.full(n, np.iinfo(np.int64).max // 4, dtype=np.int64)
        infinity = np.iinfo(np.int64).max // 4

        indptr, adj = graph.indptr, graph.adjacency

        for k in range(n):
            root = int(order_array[k])
            touched: List[int] = []
            for hub, dist in zip(hubs[root], dists[root]):
                temp[hub] = dist
                touched.append(hub)

            visited = np.full(n, -1, dtype=np.int32)
            visited[root] = 0
            # parent_of[v]: predecessor of v (toward the root) recorded at discovery.
            parent_of = np.full(n, -1, dtype=np.int64)
            frontier = np.array([root], dtype=np.int64)
            depth = 0
            while frontier.size:
                survivors: List[int] = []
                for u in frontier:
                    u = int(u)
                    hubs_u, dists_u = hubs[u], dists[u]
                    pruned = False
                    for i in range(len(hubs_u)):
                        if dists_u[i] + temp[hubs_u[i]] <= depth:
                            pruned = True
                            break
                    if pruned:
                        continue
                    hubs[u].append(k)
                    dists[u].append(depth)
                    parents[u].append(int(parent_of[u]) if depth > 0 else -1)
                    survivors.append(u)
                if not survivors:
                    break
                survivor_array = np.asarray(survivors, dtype=np.int64)
                starts = indptr[survivor_array]
                counts = indptr[survivor_array + 1] - starts
                total = int(counts.sum())
                if total == 0:
                    break
                base = np.repeat(starts, counts)
                within = np.arange(total) - np.repeat(
                    np.cumsum(counts) - counts, counts
                )
                neighbors = adj[base + within]
                origins = np.repeat(survivor_array, counts)
                unseen = visited[neighbors] < 0
                neighbors, origins = neighbors[unseen], origins[unseen]
                if neighbors.size == 0:
                    break
                fresh, first_idx = np.unique(neighbors, return_index=True)
                visited[fresh] = depth + 1
                parent_of[fresh] = origins[first_idx]
                frontier = fresh.astype(np.int64)
                depth += 1

            for hub in touched:
                temp[hub] = infinity

        self._graph = graph
        self._order = order_array
        self._hubs = hubs
        self._dists = dists
        self._parents = parents
        self._build_seconds = time.perf_counter() - start_time
        return self

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def built(self) -> bool:
        """Whether the index has been built."""
        return self._hubs is not None

    def _require_built(self) -> None:
        if not self.built:
            raise IndexStateError("the index has not been built yet; call build()")

    def _entry_for_hub(self, vertex: int, hub_rank: int) -> Tuple[int, int]:
        """(distance, parent) of ``vertex``'s entry for ``hub_rank``."""
        hubs = self._hubs[vertex]
        # Labels are rank sorted, so a binary search keeps lookups O(log L).
        lo, hi = 0, len(hubs)
        while lo < hi:
            mid = (lo + hi) // 2
            if hubs[mid] < hub_rank:
                lo = mid + 1
            else:
                hi = mid
        if lo >= len(hubs) or hubs[lo] != hub_rank:
            raise IndexStateError(
                f"vertex {vertex} has no label entry for hub rank {hub_rank}; "
                "the index is inconsistent"
            )
        return self._dists[vertex][lo], self._parents[vertex][lo]

    def _best_hub(self, s: int, t: int) -> Tuple[float, Optional[int]]:
        """Minimum distance and the hub rank realising it."""
        s_hubs, s_dists = self._hubs[s], self._dists[s]
        t_hubs, t_dists = self._hubs[t], self._dists[t]
        best = float("inf")
        best_hub: Optional[int] = None
        i, j = 0, 0
        while i < len(s_hubs) and j < len(t_hubs):
            hub_s, hub_t = s_hubs[i], t_hubs[j]
            if hub_s == hub_t:
                candidate = s_dists[i] + t_dists[j]
                if candidate < best:
                    best = candidate
                    best_hub = hub_s
                i += 1
                j += 1
            elif hub_s < hub_t:
                i += 1
            else:
                j += 1
        return best, best_hub

    def distance(self, s: int, t: int) -> float:
        """Exact shortest-path distance (``inf`` if disconnected)."""
        self._require_built()
        if s == t:
            return 0.0
        best, _ = self._best_hub(s, t)
        return best

    def distances(self, pairs: Iterable[Tuple[int, int]]) -> np.ndarray:
        """Distances for a batch of ``(s, t)`` pairs."""
        self._require_built()
        pairs = list(pairs)
        result = np.empty(len(pairs), dtype=np.float64)
        for i, (s, t) in enumerate(pairs):
            result[i] = self.distance(int(s), int(t))
        return result

    def _climb_to_hub(self, vertex: int, hub_rank: int) -> List[int]:
        """Vertices from ``vertex`` up to the hub (inclusive), following parents."""
        chain = [vertex]
        current = vertex
        distance, parent = self._entry_for_hub(current, hub_rank)
        while distance > 0:
            current = parent
            chain.append(current)
            distance, parent = self._entry_for_hub(current, hub_rank)
        return chain

    def shortest_path(self, s: int, t: int) -> Optional[List[int]]:
        """One shortest path from ``s`` to ``t`` as a vertex list (``None`` if none)."""
        self._require_built()
        if s == t:
            return [s]
        best, best_hub = self._best_hub(s, t)
        if best_hub is None or not np.isfinite(best):
            return None
        from_s = self._climb_to_hub(s, best_hub)   # s ... hub
        from_t = self._climb_to_hub(t, best_hub)   # t ... hub
        # Join, dropping the duplicated hub in the middle.
        return from_s + from_t[-2::-1]

    def average_label_size(self) -> float:
        """Average number of label entries per vertex."""
        self._require_built()
        n = len(self._hubs)
        if n == 0:
            return 0.0
        return sum(len(h) for h in self._hubs) / n

    @property
    def build_seconds(self) -> float:
        """Wall-clock seconds spent in :meth:`build`."""
        return self._build_seconds

"""Label storage for 2-hop-cover distance indexes.

A *label* of vertex ``v`` is a set of pairs ``(hub, distance)`` such that every
pair of vertices shares at least one hub lying on a shortest path between them
(Section 3.3 of the paper).  Two representations are used:

* :class:`LabelAccumulator` — mutable, append-only storage used while the
  pruned BFSs are running.  Hubs are stored by *rank* (position in the vertex
  processing order), so entries are produced in increasing-rank order and the
  final arrays are sorted without an explicit sort — exactly the trick noted
  in Section 4.5.1 ("Sorting Labels").
* :class:`LabelSet` — the frozen, numpy-backed index.  Per-vertex hub and
  distance arrays are stored in one flat array each with an ``indptr`` offset
  table (the same layout as CSR adjacency), which keeps queries cache friendly
  and makes serialisation trivial.

Distances are stored as ``uint16`` with :data:`INF_DISTANCE` as the
"unreachable" sentinel; the paper uses 8-bit distances because its networks
have tiny diameters, but 16 bits lets the same code serve road-like graphs in
the examples without overflow while still being compact.
"""

from __future__ import annotations

from typing import Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.storage import ArrayBackend
from repro.errors import IndexBuildError

__all__ = ["INF_DISTANCE", "LabelAccumulator", "LabelSet"]

#: Sentinel distance meaning "unreachable" in label and temporary arrays.
INF_DISTANCE = np.iinfo(np.uint16).max

#: Backend field names of the label arrays (shared with serialization and the
#: shared-memory snapshot export; see :mod:`repro.core.storage`).
FIELD_INDPTR = "label_indptr"
FIELD_HUBS = "label_hubs"
FIELD_DISTS = "label_dists"
FIELD_ORDER = "order"


class LabelAccumulator:
    """Mutable per-vertex label lists used during index construction.

    Entries are appended as ``(hub_rank, distance)`` and must arrive in
    non-decreasing hub-rank order per vertex (which the pruned-BFS driver
    guarantees by processing ranks in increasing order).
    """

    __slots__ = ("_hubs", "_dists", "_num_vertices")

    def __init__(self, num_vertices: int) -> None:
        self._num_vertices = num_vertices
        self._hubs: List[List[int]] = [[] for _ in range(num_vertices)]
        self._dists: List[List[int]] = [[] for _ in range(num_vertices)]

    @property
    def num_vertices(self) -> int:
        """Number of vertices covered by this accumulator."""
        return self._num_vertices

    def append(self, vertex: int, hub_rank: int, distance: int) -> None:
        """Append one ``(hub_rank, distance)`` entry to ``vertex``'s label."""
        if distance >= INF_DISTANCE:
            raise IndexBuildError(
                f"distance {distance} does not fit the 16-bit label encoding"
            )
        hubs = self._hubs[vertex]
        if hubs and hubs[-1] > hub_rank:
            raise IndexBuildError(
                "label entries must be appended in non-decreasing hub-rank order"
            )
        hubs.append(hub_rank)
        self._dists[vertex].append(distance)

    def label_size(self, vertex: int) -> int:
        """Number of entries currently stored for ``vertex``."""
        return len(self._hubs[vertex])

    def total_entries(self) -> int:
        """Total number of label entries across all vertices."""
        return sum(len(hubs) for hubs in self._hubs)

    def entries(self, vertex: int) -> Iterator[Tuple[int, int]]:
        """Iterate over ``(hub_rank, distance)`` entries of one vertex."""
        return zip(self._hubs[vertex], self._dists[vertex])

    def hub_ranks(self, vertex: int) -> List[int]:
        """The raw hub-rank list of one vertex (do not mutate)."""
        return self._hubs[vertex]

    def distances(self, vertex: int) -> List[int]:
        """The raw distance list of one vertex (do not mutate)."""
        return self._dists[vertex]

    def freeze(self, order: Sequence[int]) -> "LabelSet":
        """Convert to an immutable :class:`LabelSet`.

        Parameters
        ----------
        order:
            The vertex processing order; ``order[r]`` is the vertex whose rank
            is ``r``.  Stored so that hubs can be reported as vertex ids.
        """
        return LabelSet.from_lists(self._hubs, self._dists, order)


class LabelSet:
    """Immutable 2-hop labels for all vertices (the "normal" labels of the paper).

    Parameters
    ----------
    indptr:
        Offsets: vertex ``v``'s entries live in ``hubs[indptr[v]:indptr[v+1]]``.
    hubs:
        Flat array of hub *ranks*, sorted increasingly within each vertex.
    dists:
        Flat array of distances aligned with ``hubs``.
    order:
        ``order[r]`` is the vertex id whose rank is ``r``.
    backend:
        The :class:`~repro.core.storage.ArrayBackend` holding the arrays, if
        any; stored so that the arrays' backing storage (a shared-memory
        generation, a mapped file) stays alive as long as the label set does.
    """

    __slots__ = ("_indptr", "_hubs", "_dists", "_order", "_rank", "_backend")

    def __init__(
        self,
        indptr: np.ndarray,
        hubs: np.ndarray,
        dists: np.ndarray,
        order: np.ndarray,
        *,
        backend: Optional[ArrayBackend] = None,
    ) -> None:
        self._indptr = np.asarray(indptr, dtype=np.int64)
        self._hubs = np.asarray(hubs, dtype=np.int32)
        self._dists = np.asarray(dists, dtype=np.uint16)
        self._order = np.asarray(order, dtype=np.int64)
        rank = np.empty(self._order.shape[0], dtype=np.int64)
        rank[self._order] = np.arange(self._order.shape[0])
        self._rank = rank
        self._backend = backend

    @classmethod
    def from_lists(
        cls,
        hubs_per_vertex: Sequence[Sequence[int]],
        dists_per_vertex: Sequence[Sequence[int]],
        order: Sequence[int],
        *,
        backend: Optional[ArrayBackend] = None,
    ) -> "LabelSet":
        """Flatten per-vertex ``(hub_rank, distance)`` lists into a frozen set.

        The canonical list-of-lists -> CSR conversion, shared by
        :meth:`LabelAccumulator.freeze` and the dynamic oracle's snapshot
        :meth:`~repro.core.dynamic.DynamicPrunedLandmarkLabeling.freeze`.
        Per-vertex lists must already be sorted by hub rank.  With
        ``backend``, the flat arrays are allocated from it (e.g. directly
        inside a shared-memory generation) instead of the heap.
        """
        num_vertices = len(hubs_per_vertex)
        sizes = np.array([len(h) for h in hubs_per_vertex], dtype=np.int64)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        total = int(indptr[-1])
        if backend is None:
            hubs = np.empty(total, dtype=np.int32)
            dists = np.empty(total, dtype=np.uint16)
            order = np.asarray(order, dtype=np.int64)
        else:
            indptr = backend.put(FIELD_INDPTR, indptr)
            hubs = backend.empty(FIELD_HUBS, (total,), np.int32)
            dists = backend.empty(FIELD_DISTS, (total,), np.uint16)
            order = backend.put(FIELD_ORDER, np.asarray(order, dtype=np.int64))
        for v in range(num_vertices):
            start, end = indptr[v], indptr[v + 1]
            hubs[start:end] = hubs_per_vertex[v]
            dists[start:end] = dists_per_vertex[v]
        return cls(indptr, hubs, dists, order, backend=backend)

    def to_backend(self, backend: ArrayBackend) -> "LabelSet":
        """Copy the four label arrays onto ``backend`` and wrap them."""
        return LabelSet(
            backend.put(FIELD_INDPTR, self._indptr),
            backend.put(FIELD_HUBS, self._hubs),
            backend.put(FIELD_DISTS, self._dists),
            backend.put(FIELD_ORDER, self._order),
            backend=backend,
        )

    def patched(
        self,
        updates: "Mapping[int, Tuple[Sequence[int], Sequence[int]]]",
        *,
        backend: Optional[ArrayBackend] = None,
    ) -> "LabelSet":
        """Copy-on-write update: replace the labels of a few vertices.

        ``updates`` maps a vertex id to its new ``(hub_ranks, distances)``
        lists (sorted by hub rank, like every per-vertex label).  The labels
        of every other vertex are copied from this set in contiguous block
        slices, so the cost is a handful of vectorised copies plus work
        proportional to the patched labels — far below re-materialising all
        per-vertex lists with :meth:`from_lists`.  This is what makes
        diff-based snapshot publication cheap for the dynamic oracle (see
        :meth:`repro.core.dynamic.DynamicPrunedLandmarkLabeling.freeze`).

        With ``backend``, the destination arrays are allocated from it, so
        the dirty segments are patched *directly into* e.g. a new
        shared-memory generation — the copy-on-write publish path never
        materialises an intermediate heap copy.

        Returns ``self`` unchanged when ``updates`` is empty and no backend
        was requested (with a backend, the arrays are copied onto it so the
        result always lives there); the receiver is never mutated.
        """
        if not updates:
            return self if backend is None else self.to_backend(backend)
        num_vertices = self.num_vertices
        arrays = {}
        for vertex, (hubs, dists) in updates.items():
            if not (0 <= vertex < num_vertices):
                raise IndexBuildError(
                    f"patched vertex {vertex} out of range for "
                    f"{num_vertices} vertices"
                )
            arrays[int(vertex)] = (
                np.asarray(hubs, dtype=np.int32),
                np.asarray(dists, dtype=np.uint16),
            )
        dirty = sorted(arrays)

        new_sizes = np.diff(self._indptr)
        for vertex in dirty:
            new_sizes[vertex] = arrays[vertex][0].shape[0]
        new_indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(new_sizes, out=new_indptr[1:])
        total = int(new_indptr[-1])
        if backend is None:
            new_hubs = np.empty(total, dtype=np.int32)
            new_dists = np.empty(total, dtype=np.uint16)
            new_order = self._order
        else:
            new_indptr = backend.put(FIELD_INDPTR, new_indptr)
            new_hubs = backend.empty(FIELD_HUBS, (total,), np.int32)
            new_dists = backend.empty(FIELD_DISTS, (total,), np.uint16)
            new_order = backend.put(FIELD_ORDER, self._order)

        # Alternate between block-copying the untouched run before each dirty
        # vertex and writing that vertex's replacement label.
        run_start = 0
        for vertex in dirty + [num_vertices]:
            if run_start < vertex:
                src0, src1 = self._indptr[run_start], self._indptr[vertex]
                dst0 = new_indptr[run_start]
                new_hubs[dst0: dst0 + (src1 - src0)] = self._hubs[src0:src1]
                new_dists[dst0: dst0 + (src1 - src0)] = self._dists[src0:src1]
            if vertex < num_vertices:
                hubs, dists = arrays[vertex]
                start = new_indptr[vertex]
                new_hubs[start: start + hubs.shape[0]] = hubs
                new_dists[start: start + dists.shape[0]] = dists
            run_start = vertex + 1
        return LabelSet(new_indptr, new_hubs, new_dists, new_order, backend=backend)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        """Number of vertices covered by the label set."""
        return self._indptr.shape[0] - 1

    @property
    def backend(self) -> Optional[ArrayBackend]:
        """The storage backend holding the arrays (``None`` for plain heap)."""
        return self._backend

    @property
    def indptr(self) -> np.ndarray:
        """Per-vertex offset table (length ``n + 1``)."""
        return self._indptr

    @property
    def hub_ranks(self) -> np.ndarray:
        """Flat array of hub ranks."""
        return self._hubs

    @property
    def distances(self) -> np.ndarray:
        """Flat array of hub distances."""
        return self._dists

    @property
    def order(self) -> np.ndarray:
        """Vertex processing order (rank -> vertex id)."""
        return self._order

    @property
    def rank(self) -> np.ndarray:
        """Vertex ranks (vertex id -> rank)."""
        return self._rank

    def label_size(self, vertex: int) -> int:
        """Number of label entries of ``vertex``."""
        return int(self._indptr[vertex + 1] - self._indptr[vertex])

    def label_sizes(self) -> np.ndarray:
        """Label sizes of every vertex."""
        return np.diff(self._indptr)

    def average_label_size(self) -> float:
        """Average number of label entries per vertex (the paper's LN column)."""
        if self.num_vertices == 0:
            return 0.0
        return float(self._hubs.shape[0]) / self.num_vertices

    def total_entries(self) -> int:
        """Total number of label entries."""
        return int(self._hubs.shape[0])

    def nbytes(self) -> int:
        """Approximate in-memory size of the label arrays in bytes."""
        return int(
            self._indptr.nbytes + self._hubs.nbytes + self._dists.nbytes
        )

    def vertex_label(self, vertex: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(hub_ranks, distances)`` views for one vertex."""
        start, end = self._indptr[vertex], self._indptr[vertex + 1]
        return self._hubs[start:end], self._dists[start:end]

    def vertex_label_as_vertices(self, vertex: int) -> List[Tuple[int, int]]:
        """Label entries of ``vertex`` as ``(hub_vertex_id, distance)`` pairs."""
        hubs, dists = self.vertex_label(vertex)
        return [(int(self._order[h]), int(d)) for h, d in zip(hubs, dists)]

    # ------------------------------------------------------------------ #
    # Querying
    # ------------------------------------------------------------------ #

    def query(self, s: int, t: int) -> float:
        """2-hop distance upper bound between ``s`` and ``t``.

        For a complete pruned-landmark-labeling index this equals the exact
        distance; for a partial index (e.g. during construction analysis) it
        is an upper bound.  Returns ``inf`` when the labels share no hub.
        """
        s_hubs, s_dists = self.vertex_label(s)
        t_hubs, t_dists = self.vertex_label(t)
        if s_hubs.shape[0] == 0 or t_hubs.shape[0] == 0:
            return float("inf")
        common, s_idx, t_idx = np.intersect1d(
            s_hubs, t_hubs, assume_unique=True, return_indices=True
        )
        if common.shape[0] == 0:
            return float("inf")
        sums = s_dists[s_idx].astype(np.int64) + t_dists[t_idx].astype(np.int64)
        return float(sums.min())

    def query_via(self, s: int, t: int) -> Tuple[float, Optional[int]]:
        """Like :meth:`query` but also return the hub vertex realising the minimum."""
        s_hubs, s_dists = self.vertex_label(s)
        t_hubs, t_dists = self.vertex_label(t)
        if s_hubs.shape[0] == 0 or t_hubs.shape[0] == 0:
            return float("inf"), None
        common, s_idx, t_idx = np.intersect1d(
            s_hubs, t_hubs, assume_unique=True, return_indices=True
        )
        if common.shape[0] == 0:
            return float("inf"), None
        sums = s_dists[s_idx].astype(np.int64) + t_dists[t_idx].astype(np.int64)
        best = int(np.argmin(sums))
        return float(sums[best]), int(self._order[common[best]])

    def query_many(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Vectorised-ish batch query over a sequence of ``(s, t)`` pairs."""
        result = np.empty(len(pairs), dtype=np.float64)
        for i, (s, t) in enumerate(pairs):
            result[i] = self.query(int(s), int(t))
        return result

    def query_one_to_many(
        self, source: int, targets: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Distance bounds from one source to many targets in one vectorised pass.

        This is the query-time analogue of the construction-time "targeted"
        evaluator (Section 4.5.1): the source's label is scattered into a
        rank-indexed array once, after which the contribution of *every* label
        entry of *every* target is evaluated with flat numpy operations.  The
        amortised cost per target is therefore a few machine operations per
        label entry, far below the per-call overhead of :meth:`query` — the
        right tool when one vertex is compared against hundreds of candidates
        (socially-sensitive search, context ranking, k-nearest analyses).

        Parameters
        ----------
        source:
            The fixed endpoint.
        targets:
            Target vertices; ``None`` means all vertices.

        Returns
        -------
        numpy.ndarray
            ``float64`` distances aligned with ``targets`` (``inf`` where no
            common hub exists).  For a complete index these are exact.
        """
        source_hubs, source_dists = self.vertex_label(source)
        num_ranks = self._order.shape[0]
        temp = np.full(num_ranks, np.inf, dtype=np.float64)
        temp[source_hubs] = source_dists

        if targets is None:
            target_indptr = self._indptr
            flat_hubs = self._hubs
            flat_dists = self._dists
            sizes = np.diff(target_indptr)
            starts = target_indptr[:-1]
        else:
            target_array = np.asarray(list(targets), dtype=np.int64)
            sizes = (
                self._indptr[target_array + 1] - self._indptr[target_array]
            )
            starts_per_target = self._indptr[target_array]
            total = int(sizes.sum())
            gather = np.empty(total, dtype=np.int64)
            position = 0
            for start, size in zip(starts_per_target, sizes):
                gather[position: position + size] = np.arange(start, start + size)
                position += size
            flat_hubs = self._hubs[gather]
            flat_dists = self._dists[gather]
            starts = np.zeros(sizes.shape[0], dtype=np.int64)
            np.cumsum(sizes[:-1], out=starts[1:])

        if flat_hubs.shape[0] == 0:
            return np.full(sizes.shape[0], np.inf, dtype=np.float64)

        contributions = flat_dists.astype(np.float64) + temp[flat_hubs]
        # Per-target minimum via reduceat.  Empty label segments are excluded
        # from the index list entirely: clipping their starts into range would
        # truncate the reduce window of the last non-empty segment (reduceat
        # windows end at the next index, whatever segment it belongs to).
        nonempty = sizes > 0
        minima = np.minimum.reduceat(contributions, starts[nonempty])
        result = np.full(sizes.shape[0], np.inf, dtype=np.float64)
        result[np.flatnonzero(nonempty)] = minima
        if source < result.shape[0] and targets is None:
            result[source] = 0.0
        return result

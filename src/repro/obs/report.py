"""Trend tables over a history directory of benchmark results.

``repro-pll bench report DIR`` walks a directory tree of ``BENCH_*.json``
files (a typical layout is one subdirectory per commit, e.g. CI artifact
drops), orders runs by their fingerprint timestamp, and renders one table per
suite: metrics down the rows, runs across the columns labelled by short git
sha.  It is a reading aid, not a gate — gating lives in
:mod:`~repro.obs.compare`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.obs.schema import BenchResult, SchemaError, read_result

__all__ = ["format_trend", "load_history"]


def load_history(directory: Union[str, Path]) -> List[BenchResult]:
    """Every readable ``BENCH_*.json`` under ``directory``, oldest first.

    Unreadable or schema-invalid files are skipped (a history directory
    accumulates artifacts from many PRs; one corrupt drop should not hide the
    rest of the trend).
    """
    root = Path(directory)
    if not root.is_dir():
        raise FileNotFoundError(f"no history directory at {root}")
    results: List[BenchResult] = []
    for path in sorted(root.rglob("BENCH_*.json")):
        try:
            results.append(read_result(path))
        except (OSError, SchemaError):
            continue
    results.sort(key=lambda r: r.fingerprint.timestamp)
    return results


def _run_label(result: BenchResult) -> str:
    sha = result.fingerprint.git_sha
    label = sha[:8] if sha and sha != "unknown" else "unknown"
    if result.fingerprint.smoke:
        label += "*"
    return label


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def format_trend(results: Sequence[BenchResult]) -> str:
    """One table per suite: metrics as rows, runs as sha-labelled columns.

    A ``*`` after a column label marks a smoke-configuration run.  Cells are
    ``-`` where a run lacks the metric.
    """
    by_suite: Dict[str, List[BenchResult]] = {}
    for result in results:
        by_suite.setdefault(result.suite, []).append(result)
    if not by_suite:
        return "no benchmark results found"

    blocks: List[str] = []
    for suite in sorted(by_suite):
        runs = by_suite[suite]
        labels = [_run_label(run) for run in runs]
        metric_names: List[str] = []
        units: Dict[str, str] = {}
        for run in runs:
            for metric in run.metrics:
                if metric.name not in units:
                    metric_names.append(metric.name)
                    units[metric.name] = metric.unit
        rows: List[Tuple[str, List[str]]] = []
        for name in metric_names:
            cells: List[str] = []
            for run in runs:
                metric = run.metric(name)
                cells.append("-" if metric is None else _format_value(metric.value))
            label = f"{name} [{units[name]}]" if units[name] else name
            rows.append((label, cells))

        # A run may legally carry zero metrics; max() needs the default so a
        # metric-less suite renders its header row instead of crashing.
        name_width = max(
            len("metric"), max((len(label) for label, _ in rows), default=0)
        )
        col_widths = [
            max(len(labels[i]), max((len(cells[i]) for _, cells in rows), default=0))
            for i in range(len(labels))
        ]
        lines = [f"== {suite} ({len(runs)} run(s)) =="]
        header = "metric".ljust(name_width) + "  " + "  ".join(
            labels[i].rjust(col_widths[i]) for i in range(len(labels))
        )
        lines.append(header)
        lines.append("-" * len(header))
        for label, cells in rows:
            lines.append(
                label.ljust(name_width)
                + "  "
                + "  ".join(cells[i].rjust(col_widths[i]) for i in range(len(labels)))
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + "\n\n(* = smoke configuration)"

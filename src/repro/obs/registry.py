"""The benchmark-suite registry.

Every ``benchmarks/bench_*.py`` script exposes a ``collect_results(smoke=...)``
adapter returning a :class:`~repro.obs.schema.BenchResult` (reprolint RL007
enforces this).  The scripts are *not* a package — they live outside
``src/`` so the distribution never ships them — so the registry loads them by
file path via :mod:`importlib.util` on demand.

``REPRO_BENCH_DIR`` overrides the benchmarks directory (used by tests and by
installs where the source checkout lives elsewhere).
"""

from __future__ import annotations

import importlib.util
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from types import ModuleType
from typing import Dict, List

from repro.obs.schema import BenchResult, SchemaError

__all__ = ["BenchSuite", "get_suite", "list_suites", "run_suite"]


@dataclass(frozen=True)
class BenchSuite:
    """One registered benchmark suite: a name, its script, a one-liner."""

    name: str
    script: str
    description: str

    def path(self) -> Path:
        return benchmarks_dir() / self.script


_SUITES: Dict[str, BenchSuite] = {
    suite.name: suite
    for suite in (
        # Serving-system suites (the CI smoke set).
        BenchSuite("kernels", "bench_kernels.py", "batch-kernel backends vs the scalar loop"),
        BenchSuite("dynamic", "bench_dynamic.py", "dynamic oracle mutations and diff publish"),
        BenchSuite("sharded", "bench_sharded.py", "process-pool fan-out vs single process"),
        BenchSuite("async", "bench_async.py", "asyncio front end under connection load"),
        BenchSuite(
            "observability",
            "bench_observability.py",
            "tracing/metrics instrumentation overhead",
        ),
        BenchSuite("serving", "bench_serving.py", "batch engine, cache, threaded server"),
        BenchSuite("query_latency", "bench_query_latency.py", "single-pair query latency"),
        # Paper-reproduction suites.
        BenchSuite("table1", "bench_table1.py", "paper Table 1: index construction"),
        BenchSuite("table3", "bench_table3.py", "paper Table 3: methods comparison"),
        BenchSuite("table4", "bench_table4_datasets.py", "paper Table 4: dataset statistics"),
        BenchSuite("table5", "bench_table5_ordering.py", "paper Table 5: vertex orderings"),
        BenchSuite("figure2", "bench_figure2.py", "paper Figure 2: label distributions"),
        BenchSuite("figure3", "bench_figure3.py", "paper Figure 3: pruning effectiveness"),
        BenchSuite("figure4", "bench_figure4.py", "paper Figure 4: query time breakdown"),
        BenchSuite("figure5", "bench_figure5.py", "paper Figure 5: bit-parallel sweep"),
        BenchSuite("scaling", "bench_scaling.py", "synthetic graph size scaling"),
        BenchSuite("variants", "bench_variants.py", "index variant comparison"),
        BenchSuite("ablations", "bench_ablations.py", "pruning/ordering/theorem ablations"),
    )
}


def benchmarks_dir() -> Path:
    """The directory holding ``bench_*.py`` (env-overridable)."""
    override = os.environ.get("REPRO_BENCH_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "benchmarks"


def list_suites() -> List[BenchSuite]:
    """All registered suites, in registration (roughly: cost-tier) order."""
    return list(_SUITES.values())


def get_suite(name: str) -> BenchSuite:
    """Look a suite up by name.

    Raises
    ------
    KeyError
        With a message naming the known suites, when ``name`` is unknown.
    """
    try:
        return _SUITES[name]
    except KeyError:
        known = ", ".join(sorted(_SUITES))
        raise KeyError(f"unknown bench suite {name!r} (known: {known})") from None


def _load_module(suite: BenchSuite) -> ModuleType:
    path = suite.path()
    if not path.is_file():
        raise FileNotFoundError(
            f"suite {suite.name!r}: script {path} not found "
            "(set REPRO_BENCH_DIR to the benchmarks directory)"
        )
    module_name = f"repro_bench_{suite.name}"
    spec = importlib.util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load {path}")
    module = importlib.util.module_from_spec(spec)
    # Registered so dataclasses/pickling inside the script resolve the module.
    sys.modules[module_name] = module
    spec.loader.exec_module(module)
    return module


def run_suite(name: str, *, smoke: bool = False) -> BenchResult:
    """Run one suite's ``collect_results`` adapter and validate its output."""
    suite = get_suite(name)
    module = _load_module(suite)
    adapter = getattr(module, "collect_results", None)
    if not callable(adapter):
        raise SchemaError(
            f"suite {suite.name!r}: {suite.script} has no collect_results() adapter"
        )
    result = adapter(smoke=smoke)
    if not isinstance(result, BenchResult):
        raise SchemaError(
            f"suite {suite.name!r}: collect_results() returned "
            f"{type(result).__name__}, expected BenchResult"
        )
    if result.suite != suite.name:
        raise SchemaError(
            f"suite {suite.name!r}: collect_results() labelled its result "
            f"{result.suite!r}"
        )
    return result

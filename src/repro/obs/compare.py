"""Noise-aware regression detection over two benchmark result sets.

The comparator judges each *gated* metric (``higher_is_better`` set) of the
baseline against the current run.  Instead of a naive ratio check it builds a
tolerance band around the baseline median.  For lower-is-better metrics
(latencies) the band is additive:

``band = max(tolerance * |median|, MAD_MULTIPLIER * MAD)``

For higher-is-better metrics (throughputs) the tolerance term is
*multiplicative* on the regression side — the gate trips when the current
median falls below ``median / (1 + tolerance)``.  The additive form would be
vacuous there: with ``tolerance >= 1.0`` the threshold ``median - band``
goes negative, which a non-negative rate can never cross, so even a total
collapse would report "ok".  The reciprocal form keeps a loose gate loose
but never open (``tolerance = 3.0`` means "fail below a 4x slowdown").
MAD is the median absolute deviation of the baseline's repeat samples.
A machine whose baseline run already jittered by 8% should not fail CI on a
6% "regression"; a metric measured with zero spread (a count, say) gates
exactly.  Per-metric ``tolerance`` values in the baseline override the global
one, which is how deliberately-noisy metrics get wider bands without
loosening every gate.

Direction matters: only movement in the *bad* direction (down for
throughputs, up for latencies) can regress.  A gated baseline metric missing
from the current run is itself a regression — deleting the measurement is the
oldest way to ship a slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.obs.schema import BenchResult, Metric, read_result

__all__ = [
    "DEFAULT_TOLERANCE",
    "MAD_MULTIPLIER",
    "MetricComparison",
    "compare_paths",
    "compare_results",
    "format_comparisons",
    "has_regressions",
]

#: Global relative tolerance: ±10% around the baseline median by default.
DEFAULT_TOLERANCE = 0.10

#: The MAD term scales by this (3×MAD ≈ 2σ for normal noise — generous
#: enough that honest jitter passes, tight enough that 2× slowdowns never do).
MAD_MULTIPLIER = 3.0


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _mad(values: Sequence[float]) -> float:
    """Median absolute deviation (0.0 for singleton samples)."""
    if len(values) < 2:
        return 0.0
    center = _median(values)
    return _median([abs(v - center) for v in values])


@dataclass(frozen=True)
class MetricComparison:
    """The verdict for one metric of one suite.

    ``status`` is one of ``"ok"`` (inside the band), ``"improved"`` (outside
    the band, good direction), ``"regressed"`` (outside, bad direction),
    ``"missing"`` (gated metric vanished from the current run — counts as a
    regression), ``"new"`` (only in the current run), or ``"skipped"``
    (informational metric, never gated).
    """

    suite: str
    name: str
    unit: str
    status: str
    baseline: Optional[float]
    current: Optional[float]
    band: float = 0.0

    @property
    def regression(self) -> bool:
        return self.status in ("regressed", "missing")

    @property
    def delta(self) -> Optional[float]:
        if self.baseline is None or self.current is None:
            return None
        return self.current - self.baseline

    @property
    def ratio(self) -> Optional[float]:
        if self.baseline is None or self.current is None or self.baseline == 0:
            return None
        return self.current / self.baseline


def _compare_metric(
    suite: str, base: Metric, cur: Optional[Metric], tolerance: float
) -> MetricComparison:
    base_median = _median(base.samples)
    if cur is None:
        if base.gated:
            return MetricComparison(
                suite, base.name, base.unit, "missing", base_median, None
            )
        return MetricComparison(suite, base.name, base.unit, "skipped", base_median, None)
    cur_median = _median(cur.samples)
    if not base.gated:
        return MetricComparison(
            suite, base.name, base.unit, "skipped", base_median, cur_median
        )
    effective_tolerance = base.tolerance if base.tolerance is not None else tolerance
    noise = MAD_MULTIPLIER * _mad(base.samples)
    if base.higher_is_better:
        # Multiplicative tolerance on the regression side: an additive
        # tolerance * |median| band stops gating entirely once tolerance
        # reaches 1.0 (the threshold goes negative, unreachable for rates).
        lower = min(base_median / (1.0 + effective_tolerance), base_median - noise)
        upper = max(base_median * (1.0 + effective_tolerance), base_median + noise)
        bad = cur_median < lower
        good = cur_median > upper
        band = base_median - lower
    else:
        band = max(effective_tolerance * abs(base_median), noise)
        bad = cur_median > base_median + band
        good = cur_median < base_median - band
    status = "regressed" if bad else ("improved" if good else "ok")
    return MetricComparison(
        suite, base.name, base.unit, status, base_median, cur_median, band
    )


def compare_results(
    baseline: BenchResult,
    current: BenchResult,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[MetricComparison]:
    """Compare one suite's current run against its baseline, metric by metric."""
    comparisons: List[MetricComparison] = []
    for base in baseline.metrics:
        comparisons.append(
            _compare_metric(baseline.suite, base, current.metric(base.name), tolerance)
        )
    known = {metric.name for metric in baseline.metrics}
    for cur in current.metrics:
        if cur.name not in known:
            comparisons.append(
                MetricComparison(
                    current.suite, cur.name, cur.unit, "new", None, _median(cur.samples)
                )
            )
    return comparisons


def _collect_results(path: Path) -> Dict[str, BenchResult]:
    """Suite → result for a path that is either one file or a directory."""
    if path.is_file():
        result = read_result(path)
        return {result.suite: result}
    if path.is_dir():
        results: Dict[str, BenchResult] = {}
        for file in sorted(path.glob("BENCH_*.json")):
            result = read_result(file)
            results[result.suite] = result
        return results
    raise FileNotFoundError(f"no benchmark results at {path}")


def compare_paths(
    baseline: Union[str, Path],
    current: Union[str, Path],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[MetricComparison]:
    """Compare two result files, or two directories matched suite-by-suite.

    Suites present only in the baseline directory are reported as one
    ``missing`` comparison each (the whole measurement vanished); suites only
    in the current directory are ``new``.
    """
    base_results = _collect_results(Path(baseline))
    cur_results = _collect_results(Path(current))
    comparisons: List[MetricComparison] = []
    for suite, base in base_results.items():
        cur = cur_results.get(suite)
        if cur is None:
            comparisons.append(
                MetricComparison(suite, "<suite>", "", "missing", None, None)
            )
            continue
        comparisons.extend(compare_results(base, cur, tolerance=tolerance))
    for suite in cur_results:
        if suite not in base_results:
            comparisons.append(MetricComparison(suite, "<suite>", "", "new", None, None))
    return comparisons


def has_regressions(comparisons: Iterable[MetricComparison]) -> bool:
    """Whether any comparison warrants a non-zero exit."""
    return any(c.regression for c in comparisons)


def _format_value(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def format_comparisons(
    comparisons: Sequence[MetricComparison], *, verbose: bool = False
) -> str:
    """Human-readable comparison table.

    By default only gating verdicts and movements are shown; ``verbose``
    includes the ``skipped``/``ok`` rows too.
    """
    rows: List[List[str]] = []
    for c in comparisons:
        if not verbose and c.status in ("ok", "skipped", "new"):
            continue
        ratio = f"{c.ratio:.3f}x" if c.ratio is not None else "-"
        rows.append(
            [
                c.suite,
                c.name,
                c.status.upper() if c.regression else c.status,
                _format_value(c.baseline),
                _format_value(c.current),
                ratio,
                c.unit,
            ]
        )
    total = len(comparisons)
    regressed = sum(1 for c in comparisons if c.regression)
    improved = sum(1 for c in comparisons if c.status == "improved")
    lines: List[str] = []
    if rows:
        header = ["suite", "metric", "status", "baseline", "current", "ratio", "unit"]
        widths = [
            max(len(header[i]), max(len(row[i]) for row in rows)) for i in range(len(header))
        ]
        lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(header))))
        lines.append("")
    lines.append(
        f"{total} metric(s) compared: {regressed} regression(s), {improved} improvement(s)"
    )
    return "\n".join(lines)

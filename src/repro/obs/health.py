"""Declarative health rules over metrics snapshots, with alert state machine.

PR 6 (tracing, histograms) and PR 9 (benchmark telemetry, resource gauges)
made the server *observable*; nothing in-process ever judged the signals.
This module closes the loop: a small rule language evaluated against
successive :meth:`ServerMetrics.snapshot` dictionaries, with the
Prometheus-style ``pending → firing → resolved`` alert lifecycle (a rule must
hold its breach for a ``for``-duration before it pages).

Three rule shapes cover the serving dashboard:

* :class:`ThresholdRule` — compare one gauge (optionally a ratio of two
  gauges) from the *latest* snapshot against a bound.  Example: cache
  hit-rate collapse, event-loop lag.
* :class:`DeltaRule` — compare the *windowed increase* of counters (again
  optionally a ratio) against a bound.  Example: error rate over the last
  minute, worker-respawn spikes, shadow-canary mismatches.
* :class:`BurnRateRule` — the Google-SRE multi-window burn rate over a
  latency histogram: the fraction of recent requests slower than the SLO
  threshold, divided by the error budget ``1 - objective``, evaluated over a
  short *and* a long window; the alert condition requires both to exceed the
  burn factor, which pages fast on a cliff yet ignores brief blips.

Rules return ``None`` — *insufficient data*, treated as "not breached" — when
their inputs are missing or their window is not yet covered, so a freshly
started server never fires spuriously.

Everything here is stdlib-only and serving-agnostic: snapshots are plain
mappings, time is an injected monotonic clock, and the serving glue
(background evaluation thread, default rule set) lives in
``repro.serving.alerts``.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs import names

__all__ = [
    "AlertState",
    "BurnRateRule",
    "DeltaRule",
    "HealthEngine",
    "SnapshotWindow",
    "ThresholdRule",
]

#: Alert lifecycle states (Prometheus ``alertstate`` vocabulary).
STATE_OK = "ok"
STATE_PENDING = "pending"
STATE_FIRING = "firing"

#: Comparison operators a rule may use against its threshold.
_OPERATORS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda value, bound: value > bound,
    ">=": lambda value, bound: value >= bound,
    "<": lambda value, bound: value < bound,
    "<=": lambda value, bound: value <= bound,
}


def _compare(op: str, value: float, bound: float) -> bool:
    try:
        return _OPERATORS[op](value, bound)
    except KeyError:
        raise ValueError(f"unknown comparison operator {op!r}") from None


def _numeric(snapshot: Mapping[str, object], key: str) -> Optional[float]:
    value = snapshot.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


class SnapshotWindow:
    """Bounded history of ``(monotonic_time, snapshot)`` pairs.

    Backs the windowed rules: :meth:`delta` and :meth:`histogram_delta`
    subtract the snapshot taken at least ``window_seconds`` ago from the
    latest one.  When the history does not yet *cover* the window (server
    younger than the window, or observation gaps), they return ``None``
    rather than extrapolating — a half-covered error-rate window must not
    page anyone.

    Not thread safe on its own; :class:`HealthEngine` holds its lock around
    every call, the same contract :class:`~repro.serving.metrics.Histogram`
    has with ``ServerMetrics``.
    """

    def __init__(self, horizon_seconds: float = 900.0) -> None:
        if horizon_seconds <= 0:
            raise ValueError("snapshot window horizon must be positive")
        self.horizon_seconds = float(horizon_seconds)
        self._entries: Deque[Tuple[float, Mapping[str, object]]] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, now: float, snapshot: Mapping[str, object]) -> None:
        """Record one snapshot, evicting entries beyond the horizon."""
        self._entries.append((now, snapshot))
        cutoff = now - self.horizon_seconds
        # Keep one entry at/just beyond the horizon so the longest window
        # stays covered instead of flapping to "insufficient data".
        while len(self._entries) >= 2 and self._entries[1][0] <= cutoff:
            self._entries.popleft()

    def latest(self) -> Optional[Mapping[str, object]]:
        """The most recent snapshot, or ``None`` before the first append."""
        return self._entries[-1][1] if self._entries else None

    def _window_edges(
        self, window_seconds: float
    ) -> Optional[Tuple[Mapping[str, object], Mapping[str, object]]]:
        """(old, new) snapshots spanning >= ``window_seconds``, else ``None``."""
        if not self._entries:
            return None
        now, newest = self._entries[-1]
        cutoff = now - window_seconds
        old: Optional[Mapping[str, object]] = None
        for timestamp, snapshot in self._entries:
            if timestamp <= cutoff:
                old = snapshot
            else:
                break
        if old is None:
            return None
        return old, newest

    def value(self, key: str) -> Optional[float]:
        """The named gauge from the latest snapshot (``None`` when absent)."""
        latest = self.latest()
        if latest is None:
            return None
        return _numeric(latest, key)

    def delta(self, key: str, window_seconds: float) -> Optional[float]:
        """Increase of a counter over the last ``window_seconds``.

        Clamped at zero so a counter reset (process restart mid-window)
        reads as "no increase" rather than a huge negative spike.
        """
        edges = self._window_edges(window_seconds)
        if edges is None:
            return None
        old, new = edges
        before = _numeric(old, key)
        after = _numeric(new, key)
        if after is None:
            return None
        if before is None:
            before = 0.0
        return max(after - before, 0.0)

    def histogram_delta(
        self, key: str, window_seconds: float
    ) -> Optional[Tuple[List[Tuple[float, float]], float]]:
        """Windowed increase of one histogram: ``(cumulative buckets, count)``.

        Buckets are ``(le_bound, cumulative_increase)`` over the window; the
        second element is the total observation count increase.  ``None``
        when either edge lacks the histogram or the window is uncovered.
        """
        edges = self._window_edges(window_seconds)
        if edges is None:
            return None
        buckets_then = _histogram_buckets(edges[0], key)
        buckets_now = _histogram_buckets(edges[1], key)
        if buckets_now is None:
            return None
        then_by_bound: Dict[float, float] = dict(buckets_then or ())
        deltas = [
            (bound, max(cumulative - then_by_bound.get(bound, 0.0), 0.0))
            for bound, cumulative in buckets_now
        ]
        count_then = _histogram_count(edges[0], key) or 0.0
        count_now = _histogram_count(edges[1], key)
        if count_now is None:
            return None
        return deltas, max(count_now - count_then, 0.0)


def _histogram_entry(
    snapshot: Mapping[str, object], key: str
) -> Optional[Mapping[str, object]]:
    histograms = snapshot.get("histograms")
    if not isinstance(histograms, Mapping):
        return None
    entry = histograms.get(key)
    return entry if isinstance(entry, Mapping) else None


def _histogram_buckets(
    snapshot: Mapping[str, object], key: str
) -> Optional[List[Tuple[float, float]]]:
    entry = _histogram_entry(snapshot, key)
    if entry is None:
        return None
    buckets = entry.get("buckets")
    if not isinstance(buckets, Sequence):
        return None
    return [(float(bound), float(cumulative)) for bound, cumulative in buckets]


def _histogram_count(snapshot: Mapping[str, object], key: str) -> Optional[float]:
    entry = _histogram_entry(snapshot, key)
    if entry is None:
        return None
    count = entry.get("count")
    if isinstance(count, bool) or not isinstance(count, (int, float)):
        return None
    return float(count)


@dataclass(frozen=True)
class ThresholdRule:
    """Latest-snapshot gauge (or gauge ratio) compared against a bound.

    ``value = snapshot[metric]``, or ``snapshot[metric] /
    snapshot[denominator]`` when a denominator is named (zero denominator →
    insufficient data).  ``guard_metric`` gates evaluation entirely: until
    ``snapshot[guard_metric] >= guard_min`` the rule reports no data, which
    keeps e.g. a cache hit-rate rule quiet before meaningful traffic.
    """

    name: str
    severity: str
    metric: str
    threshold: float
    op: str = ">"
    denominator: Optional[str] = None
    guard_metric: Optional[str] = None
    guard_min: float = 0.0
    for_seconds: float = 0.0
    description: str = ""

    def evaluate(self, window: SnapshotWindow) -> Optional[float]:
        if self.guard_metric is not None:
            guard = window.value(self.guard_metric)
            if guard is None or guard < self.guard_min:
                return None
        value = window.value(self.metric)
        if value is None:
            return None
        if self.denominator is not None:
            denominator = window.value(self.denominator)
            if denominator is None or denominator <= 0:
                return None
            value /= denominator
        return value

    def breached(self, value: float) -> bool:
        return _compare(self.op, value, self.threshold)


@dataclass(frozen=True)
class DeltaRule:
    """Windowed counter increase (or increase ratio) compared against a bound.

    ``numerator`` and ``denominator`` are tuples of counter names whose
    windowed increases are summed; an empty denominator means the raw summed
    increase is the value.  A zero denominator increase with a non-empty
    denominator yields 0.0 (no traffic → no error rate), not missing data.
    """

    name: str
    severity: str
    numerator: Tuple[str, ...]
    threshold: float
    denominator: Tuple[str, ...] = ()
    window_seconds: float = 60.0
    op: str = ">"
    for_seconds: float = 0.0
    description: str = ""

    def evaluate(self, window: SnapshotWindow) -> Optional[float]:
        total = 0.0
        seen = False
        for key in self.numerator:
            delta = window.delta(key, self.window_seconds)
            if delta is not None:
                total += delta
                seen = True
        if not seen:
            return None
        if not self.denominator:
            return total
        denominator = 0.0
        for key in self.denominator:
            delta = window.delta(key, self.window_seconds)
            if delta is not None:
                denominator += delta
        if denominator <= 0:
            return 0.0
        return total / denominator

    def breached(self, value: float) -> bool:
        return _compare(self.op, value, self.threshold)


@dataclass(frozen=True)
class BurnRateRule:
    """Multi-window error-budget burn rate over a latency histogram.

    Per window: ``slow_fraction = 1 - (observations <= threshold_seconds) /
    observations``, ``burn = slow_fraction / (1 - objective)``.  The rule's
    value is the *minimum* of the short- and long-window burns, so the breach
    condition (``value >= burn_factor``) holds only when **both** windows
    burn — the standard SRE construction: the long window filters blips, the
    short window makes resolution fast once the cliff ends.

    ``threshold_seconds`` must be one of the histogram's bucket bounds (the
    cumulative count at that bound is exact); mismatches raise at
    construction via :meth:`validate_bounds` when the caller checks, or
    evaluate to ``None`` at runtime when the bound is absent.
    """

    name: str
    severity: str
    histogram: str
    objective: float
    threshold_seconds: float
    short_window_seconds: float = 60.0
    long_window_seconds: float = 300.0
    burn_factor: float = 14.4
    for_seconds: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError("SLO objective must be strictly between 0 and 1")
        if self.short_window_seconds >= self.long_window_seconds:
            raise ValueError("short burn window must be shorter than the long window")

    def validate_bounds(self, bounds: Sequence[float]) -> None:
        """Assert ``threshold_seconds`` is one of the histogram's bucket bounds."""
        if not any(abs(b - self.threshold_seconds) <= 1e-12 for b in bounds):
            raise ValueError(
                f"SLO threshold {self.threshold_seconds!r}s is not a bucket bound "
                f"of histogram {self.histogram!r}; the burn rate needs the exact "
                "cumulative count at the threshold"
            )

    def _window_burn(
        self, window: SnapshotWindow, window_seconds: float
    ) -> Optional[float]:
        delta = window.histogram_delta(self.histogram, window_seconds)
        if delta is None:
            return None
        buckets, count = delta
        if count <= 0:
            return None
        good = None
        for bound, cumulative in buckets:
            if abs(bound - self.threshold_seconds) <= 1e-12:
                good = cumulative
                break
        if good is None:
            return None
        slow_fraction = max(1.0 - good / count, 0.0)
        return slow_fraction / (1.0 - self.objective)

    def evaluate(self, window: SnapshotWindow) -> Optional[float]:
        short = self._window_burn(window, self.short_window_seconds)
        long = self._window_burn(window, self.long_window_seconds)
        if short is None or long is None:
            return None
        return min(short, long)

    def breached(self, value: float) -> bool:
        return value >= self.burn_factor


@dataclass
class AlertState:
    """Mutable lifecycle record the engine keeps per rule."""

    state: str = STATE_OK
    since: float = 0.0
    value: Optional[float] = None

    def as_dict(self, now: float) -> Dict[str, object]:
        payload: Dict[str, object] = {"alertstate": self.state}
        if self.state != STATE_OK:
            # Ages in seconds; key names deliberately stay outside the
            # RL008 metric-name grammar (these are payload fields, not series).
            payload["age"] = max(now - self.since, 0.0)
        if self.value is not None:
            payload["value"] = self.value
        return payload


@dataclass(frozen=True)
class _Transition:
    rule_name: str
    severity: str
    event: str
    value: Optional[float]
    held_seconds: float


class HealthEngine:
    """Evaluates a rule set against successive snapshots; tracks lifecycles.

    Lock discipline (reprolint RL001) — the history window and all state
    records are mutated through method calls the checker cannot see writes
    for, so they are declared:

        _window: guarded-by _lock
        _states: guarded-by _lock
        _recent: guarded-by _lock

    :meth:`observe` collects lifecycle transitions under the lock but emits
    the structured-log events only after releasing it, so a slow or
    re-entrant log sink can never stall snapshot readers.

    Time is always the caller's monotonic ``now`` — the engine never reads a
    clock itself, which makes the state machine exactly testable.
    """

    def __init__(
        self,
        rules: Sequence[object],
        *,
        horizon_seconds: float = 900.0,
        recent_capacity: int = 64,
        logger: Optional[object] = None,
    ) -> None:
        rule_names = [rule.name for rule in rules]
        if len(set(rule_names)) != len(rule_names):
            raise ValueError("alert rule names must be unique")
        self.rules = tuple(rules)
        self._logger = logger
        self._lock = threading.Lock()
        self._window = SnapshotWindow(horizon_seconds)
        self._states: Dict[str, AlertState] = {
            rule.name: AlertState() for rule in self.rules
        }
        self._recent: Deque[Dict[str, object]] = deque(maxlen=recent_capacity)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def observe(self, snapshot: Mapping[str, object], now: float) -> List[str]:
        """Fold one metrics snapshot in; run every rule; emit transitions.

        Returns the list of lifecycle events (``"<rule>:<event>"``) this
        observation caused, mostly for tests.
        """
        transitions: List[_Transition] = []
        with self._lock:
            self._window.append(now, snapshot)
            for rule in self.rules:
                value = rule.evaluate(self._window)
                breached = value is not None and rule.breached(value)
                state = self._states[rule.name]
                state.value = value
                transitions.extend(self._advance_locked(rule, state, breached, value, now))
            for transition in transitions:
                if transition.event == "resolved":
                    self._recent.append(
                        {
                            "alertname": transition.rule_name,
                            "severity": transition.severity,
                            "resolved_at": now,
                            "held": transition.held_seconds,
                        }
                    )
        events = []
        for transition in transitions:
            events.append(f"{transition.rule_name}:{transition.event}")
            self._log_transition(transition)
        return events

    def _advance_locked(
        self,
        rule: object,
        state: AlertState,
        breached: bool,
        value: Optional[float],
        now: float,
    ) -> List[_Transition]:
        for_seconds = float(rule.for_seconds)
        out: List[_Transition] = []
        if breached:
            if state.state == STATE_OK:
                if for_seconds > 0:
                    state.state = STATE_PENDING
                    state.since = now
                    out.append(_Transition(rule.name, rule.severity, "pending", value, 0.0))
                else:
                    state.state = STATE_FIRING
                    state.since = now
                    out.append(_Transition(rule.name, rule.severity, "firing", value, 0.0))
            elif state.state == STATE_PENDING and now - state.since >= for_seconds:
                held = now - state.since
                state.state = STATE_FIRING
                state.since = now
                out.append(_Transition(rule.name, rule.severity, "firing", value, held))
        else:
            if state.state == STATE_FIRING:
                held = now - state.since
                state.state = STATE_OK
                state.since = now
                out.append(_Transition(rule.name, rule.severity, "resolved", value, held))
            elif state.state == STATE_PENDING:
                # A pending breach that clears never paged anyone; reset
                # silently (matching Prometheus, which logs no event either).
                state.state = STATE_OK
                state.since = now
        return out

    def _log_transition(self, transition: _Transition) -> None:
        if self._logger is None:
            return
        try:
            self._logger.event(
                f"alert_{transition.event}",
                alertname=transition.rule_name,
                severity=transition.severity,
                value=transition.value,
                held_seconds=round(transition.held_seconds, 6),
            )
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def active_alerts(self) -> List[Dict[str, str]]:
        """Pending/firing alerts as ``ALERTS``-series label sets."""
        severities = {rule.name: rule.severity for rule in self.rules}
        with self._lock:
            return [
                {
                    "alertname": name,
                    "severity": severities[name],
                    "alertstate": state.state,
                }
                for name, state in sorted(self._states.items())
                if state.state != STATE_OK
            ]

    def alert_gauges(self) -> Dict[str, float]:
        """Rollup gauges merged into the metrics snapshot."""
        with self._lock:
            firing = sum(1 for s in self._states.values() if s.state == STATE_FIRING)
            pending = sum(1 for s in self._states.values() if s.state == STATE_PENDING)
        return {
            names.ALERTS_FIRING: float(firing),
            names.ALERTS_PENDING: float(pending),
        }

    def alerts_payload(self, now: float) -> Dict[str, object]:
        """Full rule-by-rule report (the ``/alerts`` endpoint body)."""
        rules_out: List[Dict[str, object]] = []
        with self._lock:
            for rule in self.rules:
                state = self._states[rule.name]
                entry: Dict[str, object] = {
                    "alertname": rule.name,
                    "severity": rule.severity,
                    "for": float(rule.for_seconds),
                }
                description = getattr(rule, "description", "")
                if description:
                    entry["description"] = description
                entry.update(state.as_dict(now))
                rules_out.append(entry)
            recent = []
            for item in self._recent:
                entry = dict(item)
                resolved_at = entry.pop("resolved_at", None)
                if isinstance(resolved_at, (int, float)):
                    entry["resolved_age"] = max(now - float(resolved_at), 0.0)
                recent.append(entry)
        return {
            "enabled": True,
            "rules": rules_out,
            "firing": [r for r in rules_out if r["alertstate"] == STATE_FIRING],
            "pending": [r for r in rules_out if r["alertstate"] == STATE_PENDING],
            "recent": recent,
        }

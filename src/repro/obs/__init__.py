"""Benchmark telemetry and regression detection (``repro.obs``).

The benchmark suite used to be nineteen scripts that printed human-readable
reports and asserted hard floors — good at catching catastrophes, blind to
drift.  This package makes performance numbers first-class data:

* :mod:`~repro.obs.schema` — the shared :class:`BenchResult` record (suite,
  metrics with units/direction/repeat samples, environment fingerprint) and
  its pinned JSON encoding, written as ``BENCH_<suite>.json``.
* :mod:`~repro.obs.registry` — the suite registry mapping names to the
  ``collect_results()`` adapters every ``benchmarks/bench_*.py`` script
  exposes (enforced by reprolint RL007).
* :mod:`~repro.obs.runner` — runs registered suites, merges repeat samples,
  writes result files (``repro-pll bench run``).
* :mod:`~repro.obs.compare` — noise-aware regression detection over two
  result sets: median + MAD tolerance bands, per-metric thresholds, exit-1
  semantics (``repro-pll bench compare``).
* :mod:`~repro.obs.report` — trend tables over a history directory of result
  files (``repro-pll bench report``).
* :mod:`~repro.obs.resources` — stdlib-only process resource gauges (RSS,
  open fds, GC collections and pauses) feeding both ``/metrics`` and the
  fingerprints here.
* :mod:`~repro.obs.names` — the canonical metric/series name registry every
  exposition key and alert rule must spell its names from (reprolint RL008).
* :mod:`~repro.obs.health` — the declarative alert-rule engine (threshold,
  windowed-delta and multi-window SLO burn-rate rules over metric
  snapshots) with the pending→firing→resolved state machine behind
  ``serve --health-interval``.
* :mod:`~repro.obs.scrape` — snapshots a live server's ``GET /metrics``
  exposition into the same :class:`BenchResult` schema, so serving SLOs and
  offline benchmarks share one comparison path.

Layering: everything here except :mod:`~repro.obs.scrape` (which lazily uses
the serving exposition validator) is importable without ``repro.serving``;
the serving stack imports :mod:`~repro.obs.resources` for its gauges.
"""

from repro.obs.compare import (
    MetricComparison,
    compare_paths,
    compare_results,
    format_comparisons,
    has_regressions,
)
from repro.obs.registry import BenchSuite, get_suite, list_suites, run_suite
from repro.obs.report import format_trend, load_history
from repro.obs.health import (
    AlertState,
    BurnRateRule,
    DeltaRule,
    HealthEngine,
    SnapshotWindow,
    ThresholdRule,
)
from repro.obs.names import METRIC_HELP, PROMETHEUS_COUNTERS, REGISTERED_NAMES
from repro.obs.resources import (
    GcPauseMonitor,
    disable_gc_monitor,
    enable_gc_monitor,
    open_fd_count,
    process_resource_stats,
    rss_bytes,
)
from repro.obs.runner import run_suites
from repro.obs.schema import (
    SCHEMA_VERSION,
    BenchResult,
    EnvFingerprint,
    Metric,
    SchemaError,
    bench_result,
    collect_fingerprint,
    read_result,
    result_filename,
    write_result,
)
from repro.obs.scrape import result_from_exposition, scrape_url

__all__ = [
    "METRIC_HELP",
    "PROMETHEUS_COUNTERS",
    "REGISTERED_NAMES",
    "SCHEMA_VERSION",
    "AlertState",
    "BenchResult",
    "BenchSuite",
    "BurnRateRule",
    "DeltaRule",
    "EnvFingerprint",
    "GcPauseMonitor",
    "HealthEngine",
    "Metric",
    "MetricComparison",
    "SchemaError",
    "SnapshotWindow",
    "ThresholdRule",
    "bench_result",
    "collect_fingerprint",
    "compare_paths",
    "compare_results",
    "disable_gc_monitor",
    "enable_gc_monitor",
    "format_comparisons",
    "format_trend",
    "get_suite",
    "has_regressions",
    "list_suites",
    "load_history",
    "open_fd_count",
    "process_resource_stats",
    "read_result",
    "result_filename",
    "result_from_exposition",
    "rss_bytes",
    "run_suite",
    "run_suites",
    "scrape_url",
    "write_result",
]

"""Snapshot a live server's ``/metrics`` into the benchmark result schema.

``repro-pll bench scrape URL`` fetches a Prometheus exposition from a running
front end, validates it with the same grammar checker the tests and
``bench_async`` use, and converts the label-free samples into a
:class:`~repro.obs.schema.BenchResult` — so serving SLOs scraped off a
production box and offline benchmark numbers flow through the *same*
``bench compare`` path.

Scraped metrics are informational by default (``higher_is_better=None``): a
live counter snapshot depends on uptime, so gating direction is only assigned
to the few shapes where it is unambiguous (qps/hit-rate up, latency/lag
down).
"""

from __future__ import annotations

import urllib.error
import urllib.request
from typing import Optional

from repro.obs.schema import BenchResult, Metric, bench_result

__all__ = ["result_from_exposition", "scrape_url"]

#: name-suffix → unit inference for exposition sample names.
_UNIT_SUFFIXES = (
    ("_seconds_total", "seconds"),
    ("_seconds", "seconds"),
    ("_bytes", "bytes"),
    ("_ms", "ms"),
    ("_us", "us"),
)

_HIGHER_IS_BETTER_HINTS = ("_qps", "hit_rate", "hit_ratio")
_LOWER_IS_BETTER_HINTS = ("latency", "_lag_seconds", "pause_seconds", "mismatch")


def _infer_unit(name: str) -> str:
    for suffix, unit in _UNIT_SUFFIXES:
        if name.endswith(suffix):
            return unit
    return ""


def _infer_direction(name: str) -> Optional[bool]:
    if any(hint in name for hint in _HIGHER_IS_BETTER_HINTS):
        return True
    if any(hint in name for hint in _LOWER_IS_BETTER_HINTS):
        return False
    return None


def result_from_exposition(body: str, *, suite: str = "scrape") -> BenchResult:
    """Validate one exposition body and schema-ify its label-free samples.

    The conversion half of :func:`scrape_url`, split out so recorded
    expositions (test fixtures, saved incident captures) flow through exactly
    the unit/direction inference a live scrape gets.  Labelled series such as
    ``ALERTS{...}`` pass grammar validation but carry no label-free sample,
    so they do not become metrics.

    Raises
    ------
    AssertionError
        When the body violates the exposition grammar.
    """
    # Lazy import keeps ``repro.obs`` importable without the serving stack.
    from repro.serving.metrics import validate_prometheus_exposition

    samples = validate_prometheus_exposition(body)
    metrics = [
        Metric(
            name=name,
            value=value,
            unit=_infer_unit(name),
            higher_is_better=_infer_direction(name),
        )
        for name, value in sorted(samples.items())
    ]
    return bench_result(suite, metrics, smoke=False)


def scrape_url(url: str, *, suite: str = "scrape", timeout: float = 10.0) -> BenchResult:
    """Fetch, validate, and schema-ify one ``/metrics`` exposition.

    Raises
    ------
    OSError
        When the URL cannot be fetched (connection refused, HTTP error, ...).
    AssertionError
        When the body violates the exposition grammar.
    """
    if "://" not in url:
        url = "http://" + url
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            body = response.read().decode("utf-8")
    except urllib.error.URLError as exc:
        raise OSError(f"cannot scrape {url}: {exc}") from None
    return result_from_exposition(body, suite=suite)

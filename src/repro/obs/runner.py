"""Runs registered suites and writes their result files.

The engine behind ``repro-pll bench run``: resolves suite names, runs each
one ``repeat`` times (folding repeats together via
:meth:`BenchResult.merged_with`, so gated metrics keep their best
observation and every sample is preserved for the comparator's noise
bands), and writes ``BENCH_<suite>.json`` files when an output directory is
given.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

from repro.obs.registry import get_suite, list_suites, run_suite
from repro.obs.schema import BenchResult, write_result

__all__ = ["run_suites"]


def run_suites(
    names: Optional[Sequence[str]] = None,
    *,
    smoke: bool = False,
    repeat: int = 1,
    out_dir: Optional[Union[str, Path]] = None,
    echo: Optional[Callable[[str], None]] = None,
) -> List[BenchResult]:
    """Run suites by name (all registered suites when ``names`` is empty).

    ``repeat`` > 1 re-runs each suite and merges the observations; ``echo``
    receives one progress line per step when given (the CLI passes ``print``).
    Unknown suite names raise :class:`KeyError` before anything runs, so a
    typo cannot waste a half-hour benchmark session.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    if names:
        suites = [get_suite(name) for name in names]
    else:
        suites = list_suites()
    say = echo if echo is not None else (lambda _line: None)

    results: List[BenchResult] = []
    for suite in suites:
        mode = "smoke" if smoke else "full"
        merged: Optional[BenchResult] = None
        for attempt in range(repeat):
            tag = f" (repeat {attempt + 1}/{repeat})" if repeat > 1 else ""
            say(f"[bench] running {suite.name} [{mode}]{tag} ...")
            result = run_suite(suite.name, smoke=smoke)
            merged = result if merged is None else merged.merged_with(result)
        assert merged is not None
        results.append(merged)
        if out_dir is not None:
            path = write_result(merged, out_dir)
            say(f"[bench] wrote {path}")
    return results

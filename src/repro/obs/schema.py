"""The shared benchmark-result schema and its pinned JSON encoding.

One :class:`BenchResult` describes one run of one benchmark suite: a list of
:class:`Metric` records (name, value, unit, direction, repeat samples, an
optional per-metric tolerance) plus an :class:`EnvFingerprint` capturing the
environment the numbers were measured in — git sha, interpreter and library
versions, CPU count, the selected batch-kernel backend and whether the run
was a reduced-scale smoke configuration.

The JSON encoding is *pinned*: ``to_json`` always emits sorted keys, two-space
indentation and a trailing newline, so re-encoding a decoded result is
byte-identical (the round-trip stability the regression tests assert) and
result files diff cleanly in version control.  Files are named
``BENCH_<suite>.json`` (:func:`result_filename`).
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import re
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "SCHEMA_VERSION",
    "BenchResult",
    "EnvFingerprint",
    "Metric",
    "SchemaError",
    "bench_result",
    "collect_fingerprint",
    "read_result",
    "result_filename",
    "write_result",
]

#: Bumped whenever the encoded shape changes incompatibly; decoders refuse
#: unknown versions instead of misreading them.
SCHEMA_VERSION = 1

#: Suite names double as file-name components (``BENCH_<suite>.json``).
_SUITE_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


class SchemaError(ValueError):
    """Raised for malformed results: bad field types, unknown schema versions."""


@dataclass(frozen=True)
class Metric:
    """One measured quantity of a benchmark run.

    ``higher_is_better`` gives the regression-gating direction: ``True`` for
    throughputs, ``False`` for latencies/sizes, ``None`` for informational
    metrics (environment echoes, counts) that the comparator reports but
    never gates on.  ``samples`` holds every repeat observation (``value`` is
    the best-of/representative one); ``tolerance`` overrides the comparator's
    global relative threshold for this metric alone.
    """

    name: str
    value: float
    unit: str = ""
    higher_is_better: Optional[bool] = None
    samples: Tuple[float, ...] = ()
    tolerance: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("metric name must be non-empty")
        object.__setattr__(self, "value", float(self.value))
        object.__setattr__(
            self, "samples", tuple(float(s) for s in self.samples) or (float(self.value),)
        )
        if self.tolerance is not None and not self.tolerance >= 0:
            raise SchemaError(f"metric {self.name!r}: tolerance must be >= 0")

    @property
    def gated(self) -> bool:
        """Whether the comparator treats this metric as a regression gate."""
        return self.higher_is_better is not None

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "value": self.value,
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
            "samples": list(self.samples),
        }
        if self.tolerance is not None:
            payload["tolerance"] = self.tolerance
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Metric":
        try:
            return cls(
                name=str(payload["name"]),
                value=float(payload["value"]),  # type: ignore[arg-type]
                unit=str(payload.get("unit", "")),
                higher_is_better=_optional_bool(payload.get("higher_is_better")),
                samples=tuple(
                    float(s) for s in payload.get("samples", ())  # type: ignore[union-attr]
                ),
                tolerance=_optional_float(payload.get("tolerance")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaError(f"malformed metric record: {exc}") from None


@dataclass(frozen=True)
class EnvFingerprint:
    """Where and how a benchmark result was measured."""

    git_sha: str
    python: str
    numpy: str
    numba: Optional[str]
    cpu_count: int
    kernel: str
    smoke: bool
    timestamp: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "git_sha": self.git_sha,
            "python": self.python,
            "numpy": self.numpy,
            "numba": self.numba,
            "cpu_count": self.cpu_count,
            "kernel": self.kernel,
            "smoke": self.smoke,
            "timestamp": self.timestamp,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "EnvFingerprint":
        try:
            return cls(
                git_sha=str(payload["git_sha"]),
                python=str(payload["python"]),
                numpy=str(payload["numpy"]),
                numba=None if payload.get("numba") is None else str(payload["numba"]),
                cpu_count=int(payload["cpu_count"]),  # type: ignore[arg-type]
                kernel=str(payload["kernel"]),
                smoke=bool(payload["smoke"]),
                timestamp=float(payload["timestamp"]),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaError(f"malformed fingerprint record: {exc}") from None


def _optional_bool(value: object) -> Optional[bool]:
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    raise SchemaError(f"expected bool or null, got {value!r}")


def _optional_float(value: object) -> Optional[float]:
    if value is None:
        return None
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    raise SchemaError(f"expected number or null, got {value!r}")


def _git_sha() -> str:
    """Current checkout's commit sha, or ``"unknown"`` outside a repository."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else "unknown"


def _selected_kernel() -> str:
    """Name of the batch-kernel backend the default selection would pick."""
    try:
        from repro.core.kernels import select_kernel

        return str(select_kernel().name)
    except Exception:
        return "unknown"


def collect_fingerprint(*, smoke: bool = False) -> EnvFingerprint:
    """Fingerprint the current environment (best effort, never raises)."""
    import numpy

    try:
        import numba  # type: ignore[import-not-found]

        numba_version: Optional[str] = str(numba.__version__)
    except Exception:
        numba_version = None
    return EnvFingerprint(
        git_sha=_git_sha(),
        python=platform.python_version(),
        numpy=str(numpy.__version__),
        numba=numba_version,
        cpu_count=os.cpu_count() or 1,
        kernel=_selected_kernel(),
        smoke=bool(smoke),
        timestamp=time.time(),
    )


@dataclass(frozen=True)
class BenchResult:
    """One benchmark suite's measured metrics plus the environment fingerprint."""

    suite: str
    metrics: Tuple[Metric, ...]
    fingerprint: EnvFingerprint
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not _SUITE_NAME_PATTERN.match(self.suite):
            raise SchemaError(
                f"suite name {self.suite!r} is not a safe file-name component"
            )
        object.__setattr__(self, "metrics", tuple(self.metrics))
        seen = set()
        for metric in self.metrics:
            if metric.name in seen:
                raise SchemaError(
                    f"suite {self.suite!r}: duplicate metric {metric.name!r}"
                )
            seen.add(metric.name)

    def metric(self, name: str) -> Optional[Metric]:
        """Look one metric up by name (``None`` when absent)."""
        for metric in self.metrics:
            if metric.name == name:
                return metric
        return None

    def merged_with(self, other: "BenchResult") -> "BenchResult":
        """Fold another run of the same suite in as additional repeat samples.

        Per metric, samples concatenate and ``value`` becomes the best
        observation across all samples — max for higher-is-better metrics,
        min for lower-is-better ones, the median for informational metrics
        (best-of-N repeats suppress scheduler noise; a machine cannot get
        *accidentally* fast).  The fingerprint of ``self`` (the first run)
        is kept.
        """
        if other.suite != self.suite:
            raise SchemaError(
                f"cannot merge suite {other.suite!r} into {self.suite!r}"
            )
        merged: List[Metric] = []
        other_by_name = {metric.name: metric for metric in other.metrics}
        for metric in self.metrics:
            twin = other_by_name.pop(metric.name, None)
            if twin is None:
                merged.append(metric)
                continue
            samples = metric.samples + twin.samples
            if metric.higher_is_better is True:
                value = max(samples)
            elif metric.higher_is_better is False:
                value = min(samples)
            else:
                value = _median(samples)
            merged.append(dataclasses.replace(metric, value=value, samples=samples))
        merged.extend(other_by_name.values())
        return dataclasses.replace(self, metrics=tuple(merged))

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema_version": self.schema_version,
            "suite": self.suite,
            "metrics": [metric.as_dict() for metric in self.metrics],
            "fingerprint": self.fingerprint.as_dict(),
        }

    def to_json(self) -> str:
        """The pinned encoding: sorted keys, indent=2, trailing newline."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "BenchResult":
        if not isinstance(payload, Mapping):
            raise SchemaError("benchmark result must be a JSON object")
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise SchemaError(
                f"unsupported schema_version {version!r} (expected {SCHEMA_VERSION})"
            )
        metrics = payload.get("metrics")
        fingerprint = payload.get("fingerprint")
        if not isinstance(metrics, Sequence) or isinstance(metrics, (str, bytes)):
            raise SchemaError("'metrics' must be an array")
        if not isinstance(fingerprint, Mapping):
            raise SchemaError("'fingerprint' must be an object")
        return cls(
            suite=str(payload.get("suite", "")),
            metrics=tuple(Metric.from_dict(m) for m in metrics),
            fingerprint=EnvFingerprint.from_dict(fingerprint),
        )

    @classmethod
    def from_json(cls, text: str) -> "BenchResult":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"not valid JSON: {exc}") from None
        return cls.from_dict(payload)


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


MetricSpec = Union[Metric, Tuple[str, float], Tuple[str, float, str], Mapping[str, object]]


def bench_result(
    suite: str,
    metrics: Iterable[MetricSpec],
    *,
    smoke: bool = False,
    fingerprint: Optional[EnvFingerprint] = None,
) -> BenchResult:
    """Build a :class:`BenchResult`, fingerprinting the environment.

    The constructor every ``collect_results()`` adapter uses.  ``metrics``
    accepts :class:`Metric` objects, ``(name, value[, unit])`` tuples, or
    keyword mappings passed through to :class:`Metric`.
    """
    converted: List[Metric] = []
    for spec in metrics:
        if isinstance(spec, Metric):
            converted.append(spec)
        elif isinstance(spec, Mapping):
            converted.append(Metric(**spec))  # type: ignore[arg-type]
        else:
            converted.append(Metric(*spec))  # type: ignore[arg-type]
    return BenchResult(
        suite=suite,
        metrics=tuple(converted),
        fingerprint=(
            fingerprint if fingerprint is not None else collect_fingerprint(smoke=smoke)
        ),
    )


def result_filename(suite: str) -> str:
    """The canonical file name for a suite's result (``BENCH_<suite>.json``)."""
    if not _SUITE_NAME_PATTERN.match(suite):
        raise SchemaError(f"suite name {suite!r} is not a safe file-name component")
    return f"BENCH_{suite}.json"


def write_result(result: BenchResult, out_dir: Union[str, Path]) -> Path:
    """Write one result to ``out_dir`` under its canonical name; returns the path."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / result_filename(result.suite)
    path.write_text(result.to_json(), encoding="utf-8")
    return path


def read_result(path: Union[str, Path]) -> BenchResult:
    """Read one ``BENCH_<suite>.json`` file.

    Raises
    ------
    SchemaError
        When the file is not a valid encoded result.
    OSError
        When the file cannot be read.
    """
    return BenchResult.from_json(Path(path).read_text(encoding="utf-8"))

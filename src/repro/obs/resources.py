"""Stdlib-only process resource gauges.

These feed two consumers: :meth:`ServerMetrics.snapshot` merges them into the
``/metrics`` exposition (``process_rss_bytes``, ``process_open_fds``, the GC
series), and benchmark fingerprints may sample them.  Everything here is best
effort — a gauge whose source is unavailable (no ``/proc``, say) is simply
omitted rather than reported as a lie.

No third-party dependency (psutil is deliberately absent): RSS comes from
``/proc/self/statm`` (falling back to ``resource.getrusage`` peak RSS), open
file descriptors from ``/proc/self/fd``, and GC pause accounting from the
interpreter's own :data:`gc.callbacks` hook.
"""

from __future__ import annotations

import gc
import os
import threading
import time
from typing import Dict, Optional

__all__ = [
    "GcPauseMonitor",
    "disable_gc_monitor",
    "enable_gc_monitor",
    "open_fd_count",
    "process_resource_stats",
    "rss_bytes",
]


def rss_bytes() -> Optional[int]:
    """Current resident set size in bytes, or ``None`` when unknowable.

    Prefers ``/proc/self/statm`` (field 2 is resident pages); falls back to
    ``resource.getrusage`` *peak* RSS, which overstates the current value but
    is monotone and still useful for leak detection.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            fields = handle.read().split()
        return int(fields[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        # ru_maxrss is kilobytes on Linux (bytes on macOS, but the /proc
        # branch above wins there never; accept the platform quirk).
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:
        return None


def open_fd_count() -> Optional[int]:
    """Number of open file descriptors, or ``None`` without ``/proc``."""
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return None


class GcPauseMonitor:
    """Accumulates garbage-collection pause time via :data:`gc.callbacks`.

    The interpreter invokes the callback synchronously around every
    collection, so the delta between the ``"start"`` and ``"stop"`` events is
    the stop-the-world pause the process just paid.  Counters only ever grow;
    readers take a point-in-time copy through :meth:`stats`.

    Concurrency: the callback and the readers are deliberately lock-free.
    A lock shared between them would be a same-thread deadlock hazard — any
    allocation made while holding it (building the stats dict, say) can
    trigger a collection, whose callback then runs synchronously on the same
    thread and blocks on the lock it already holds.  No lock is needed
    either: CPython runs at most one collection at a time, so the callback
    is the sole writer, and individual attribute reads/writes are atomic
    under the GIL.  Readers may observe ``pause_seconds_total`` from one
    collection later than ``pauses_total``; for monotone gauges that skew
    is harmless.  ``_lock`` only serialises install/uninstall idempotency.

    Attributes
    ----------
    pause_seconds_total : float
        Sum of all observed pause durations.
    pauses_total : int
        Number of completed collections observed.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started_at: Optional[float] = None
        self.pause_seconds_total = 0.0
        self.pauses_total = 0
        self._installed = False

    def install(self) -> None:
        """Hook into :data:`gc.callbacks` (idempotent)."""
        with self._lock:
            if self._installed:
                return
            gc.callbacks.append(self._on_gc_event)
            self._installed = True

    def uninstall(self) -> None:
        """Remove the hook (idempotent); accumulated totals survive."""
        with self._lock:
            if not self._installed:
                return
            try:
                gc.callbacks.remove(self._on_gc_event)
            except ValueError:
                pass
            self._installed = False
        # Reset outside the lock: _started_at belongs to the lock-free
        # callback, which no longer fires once the hook is removed above.
        self._started_at = None

    def _on_gc_event(self, phase: str, info: Dict[str, int]) -> None:
        # Lock-free on purpose — see the class docstring.  This runs inside
        # the collector; taking any lock here risks deadlocking against a
        # holder whose allocations triggered this very collection.
        now = time.perf_counter()
        if phase == "start":
            self._started_at = now
        elif phase == "stop" and self._started_at is not None:
            self.pause_seconds_total += now - self._started_at
            self.pauses_total += 1
            self._started_at = None

    def stats(self) -> Dict[str, float]:
        """Point-in-time copy of the pause counters (lock-free reads)."""
        pause_seconds = self.pause_seconds_total
        pauses = self.pauses_total
        return {
            "gc_pause_seconds_total": pause_seconds,
            "gc_pauses_total": float(pauses),
        }


_MONITOR = GcPauseMonitor()
_MONITOR_ENABLED = False
_MONITOR_LOCK = threading.Lock()


def enable_gc_monitor() -> GcPauseMonitor:
    """Install the process-wide GC pause monitor (idempotent) and return it."""
    global _MONITOR_ENABLED
    with _MONITOR_LOCK:
        _MONITOR.install()
        _MONITOR_ENABLED = True
    return _MONITOR


def disable_gc_monitor() -> None:
    """Uninstall the process-wide GC pause monitor (idempotent).

    Accumulated totals survive on the monitor object, but the GC series
    disappears from :func:`process_resource_stats` — "not measured" rather
    than a frozen counter masquerading as "no pauses".  Primarily for tests
    and for tearing down ``serve --gc-monitor`` cleanly.
    """
    global _MONITOR_ENABLED
    with _MONITOR_LOCK:
        _MONITOR.uninstall()
        _MONITOR_ENABLED = False


def process_resource_stats() -> Dict[str, float]:
    """Best-effort resource gauges for the current process.

    Keys follow Prometheus naming (``_bytes``/``_total`` suffixes); values
    are floats so the dict merges directly into a metrics snapshot.  GC pause
    series appear only once :func:`enable_gc_monitor` has been called —
    reporting an eternally-zero pause total without the hook installed would
    read as "no pauses" rather than "not measured".
    """
    stats: Dict[str, float] = {}
    rss = rss_bytes()
    if rss is not None:
        stats["process_rss_bytes"] = float(rss)
    fds = open_fd_count()
    if fds is not None:
        stats["process_open_fds"] = float(fds)
    try:
        per_generation = gc.get_stats()
        stats["gc_collections_total"] = float(
            sum(entry.get("collections", 0) for entry in per_generation)
        )
        stats["gc_collected_total"] = float(
            sum(entry.get("collected", 0) for entry in per_generation)
        )
    except Exception:
        pass
    if _MONITOR_ENABLED:
        stats.update(_MONITOR.stats())
    return stats

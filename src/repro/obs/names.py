"""Canonical registry of metric and series names.

Every name that crosses a component boundary — rendered by the exposition in
``repro.serving.metrics``, referenced by an alert rule in
``repro.serving.alerts``, inferred over by ``repro.obs.scrape`` — lives here
exactly once.  Renderer, scraper and alert rules drifting apart (a rule
watching ``cache_hitrate`` while the exposition says ``cache_hit_rate``)
silently evaluates against missing data forever; reprolint RL008
(*metric-name discipline*) enforces that the serving exposition and the alert
rules spell names through these constants rather than ad-hoc literals.

Stdlib only, no imports from ``repro.serving``: the registry must stay
importable by the static-analysis job and by ``repro.obs`` consumers that
never load the serving stack.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

__all__ = [
    "ALERTS_SERIES",
    "METRIC_HELP",
    "PROMETHEUS_COUNTERS",
    "REGISTERED_NAMES",
]

# --------------------------------------------------------------------------- #
# Label-free snapshot keys (one sample each on /metrics, prefixed repro_pll_).
# --------------------------------------------------------------------------- #

UPTIME_SECONDS = "uptime_seconds"
NUM_REQUESTS = "num_requests"
NUM_BATCHES = "num_batches"
NUM_QUERIES = "num_queries"
NUM_REJECTED = "num_rejected"
NUM_ERRORS = "num_errors"
NUM_WORKER_RESPAWNS = "num_worker_respawns"
QPS = "qps"
BUSY_FRACTION = "busy_fraction"
AVERAGE_BATCH_SIZE = "average_batch_size"

NUM_WORKERS = "num_workers"
WORKER_QUERIES_MIN = "worker_queries_min"
WORKER_QUERIES_MAX = "worker_queries_max"
WORKER_BUSY_SECONDS_TOTAL = "worker_busy_seconds_total"

CACHE_HITS = "cache_hits"
CACHE_MISSES = "cache_misses"
CACHE_EVICTIONS = "cache_evictions"
CACHE_HIT_RATE = "cache_hit_rate"

SNAPSHOT_VERSION = "snapshot_version"
QUEUE_DEPTH = "queue_depth"
NUM_CONNECTIONS = "num_connections"
EVENT_LOOP_LAG_SECONDS = "event_loop_lag_seconds"

INDEX_LABEL_ENTRIES = "index_label_entries"
INDEX_BIT_PARALLEL_ROOTS = "index_bit_parallel_roots"
INDEX_DIRTY_VERTICES = "index_dirty_vertices"
INDEX_NUM_VERTICES = "index_num_vertices"
GENERATION_BYTES = "generation_bytes"
KERNEL_FALLBACK = "kernel_fallback"
KERNEL_NARROW = "kernel_narrow"

PROCESS_RSS_BYTES = "process_rss_bytes"
PROCESS_OPEN_FDS = "process_open_fds"
GC_COLLECTIONS_TOTAL = "gc_collections_total"
GC_COLLECTED_TOTAL = "gc_collected_total"
GC_PAUSE_SECONDS_TOTAL = "gc_pause_seconds_total"
GC_PAUSES_TOTAL = "gc_pauses_total"

#: Shadow correctness canary counters (``serve --shadow-sample``).
SHADOW_BATCHES_TOTAL = "shadow_batches_total"
SHADOW_PAIRS_TOTAL = "shadow_pairs_total"
SHADOW_MISMATCHES_TOTAL = "shadow_mismatches_total"
SHADOW_DROPPED_TOTAL = "shadow_dropped_total"

#: Health-engine rollup gauges (per-alert detail rides the labelled series).
ALERTS_FIRING = "alerts_firing"
ALERTS_PENDING = "alerts_pending"

# --------------------------------------------------------------------------- #
# Histogram families (each expands to _bucket/_sum/_count series).
# --------------------------------------------------------------------------- #

LATENCY_SECONDS = "latency_seconds"
STAGE_QUEUE_SECONDS = "stage_queue_seconds"
STAGE_BATCH_SECONDS = "stage_batch_seconds"
STAGE_KERNEL_SECONDS = "stage_kernel_seconds"
STAGE_CACHE_PROBE_SECONDS = "stage_cache_probe_seconds"

# --------------------------------------------------------------------------- #
# Labelled series names.
# --------------------------------------------------------------------------- #

#: Prometheus convention: active alerts are exported unprefixed as
#: ``ALERTS{alertname=...,severity=...,alertstate=...} 1``.
ALERTS_SERIES = "ALERTS"
VERB_QUERIES_TOTAL = "verb_queries_total"
KERNEL_OP_QUERIES_TOTAL = "kernel_op_queries_total"
GENERATION_INFO = "generation_info"
KERNEL_INFO = "kernel_info"
WORKER_BUSY_SECONDS = "worker_busy_seconds"

#: Per-worker counter field inside ``snapshot()["workers"][pid]`` that also
#: feeds the ``worker_busy_seconds`` series (the other fields — ``num_shards``,
#: ``num_queries`` — reuse names above or fall outside the metric grammar).
FIELD_BUSY_SECONDS = "busy_seconds"

# --------------------------------------------------------------------------- #
# Metadata shared by the renderer and the validator.
# --------------------------------------------------------------------------- #

#: Snapshot keys that are monotonically increasing and therefore exposed with
#: the Prometheus ``counter`` type; every other numeric key is a ``gauge``.
PROMETHEUS_COUNTERS: FrozenSet[str] = frozenset(
    {
        NUM_REQUESTS,
        NUM_BATCHES,
        NUM_QUERIES,
        NUM_REJECTED,
        NUM_ERRORS,
        NUM_WORKER_RESPAWNS,
        CACHE_HITS,
        CACHE_MISSES,
        CACHE_EVICTIONS,
        GC_COLLECTIONS_TOTAL,
        GC_COLLECTED_TOTAL,
        GC_PAUSE_SECONDS_TOTAL,
        GC_PAUSES_TOTAL,
        SHADOW_BATCHES_TOTAL,
        SHADOW_PAIRS_TOTAL,
        SHADOW_MISMATCHES_TOTAL,
        SHADOW_DROPPED_TOTAL,
    }
)

#: Help strings for the best-known snapshot keys; anything else gets a
#: generated fallback so the exposition stays self-describing.
METRIC_HELP: Dict[str, str] = {
    UPTIME_SECONDS: "Wall-clock seconds since the metrics object was created.",
    NUM_REQUESTS: "Total query requests admitted.",
    NUM_BATCHES: "Total coalesced batches evaluated.",
    NUM_QUERIES: "Total query pairs answered.",
    NUM_REJECTED: "Requests rejected by admission control.",
    NUM_ERRORS: "Requests that failed with an error.",
    NUM_WORKER_RESPAWNS: "Times the sharded worker pool was rebuilt after breaking.",
    QPS: "Queries answered per second of uptime.",
    BUSY_FRACTION: "Fraction of uptime spent evaluating batches.",
    AVERAGE_BATCH_SIZE: "Mean query pairs per evaluated batch.",
    CACHE_HIT_RATE: "Fraction of cache lookups served from the hot-pair cache.",
    SNAPSHOT_VERSION: "Version number of the currently served index snapshot.",
    QUEUE_DEPTH: "Requests currently queued for batching.",
    NUM_CONNECTIONS: "Open client connections on the async front end.",
    INDEX_LABEL_ENTRIES: "Total normal label entries in the served index.",
    INDEX_BIT_PARALLEL_ROOTS: "Bit-parallel BFS roots carried by the served index.",
    INDEX_DIRTY_VERTICES: "Shadow-index vertices dirtied since the last publish.",
    INDEX_NUM_VERTICES: "Vertices covered by the currently served index.",
    GENERATION_BYTES: "Bytes of the shared-memory generation backing the snapshot.",
    KERNEL_FALLBACK: "1 when the serving kernel backend is a fallback from the requested one.",
    KERNEL_NARROW: "1 when the served generation uses the narrow (uint32/uint8) kernel layout.",
    PROCESS_RSS_BYTES: "Resident set size of the serving process.",
    PROCESS_OPEN_FDS: "Open file descriptors held by the serving process.",
    GC_COLLECTIONS_TOTAL: "Garbage collections completed (all generations).",
    GC_COLLECTED_TOTAL: "Objects reclaimed by the garbage collector.",
    GC_PAUSE_SECONDS_TOTAL: "Cumulative stop-the-world garbage-collection pause time.",
    GC_PAUSES_TOTAL: "Garbage-collection pauses observed by the pause monitor.",
    EVENT_LOOP_LAG_SECONDS: "Latest sampled asyncio event-loop scheduling lag.",
    SHADOW_BATCHES_TOTAL: "Served batches re-verified by the shadow correctness canary.",
    SHADOW_PAIRS_TOTAL: "Query pairs re-verified by the shadow correctness canary.",
    SHADOW_MISMATCHES_TOTAL: (
        "Served distances that disagreed with the scalar baseline recomputation."
    ),
    SHADOW_DROPPED_TOTAL: "Sampled batches dropped because the canary queue was full.",
    ALERTS_FIRING: "Alert rules currently in the firing state.",
    ALERTS_PENDING: "Alert rules currently pending (breached, inside their for-duration).",
    LATENCY_SECONDS: "End-to-end request latency (admission to reply).",
    STAGE_QUEUE_SECONDS: "Time requests spend queued before the batcher dequeues them.",
    STAGE_BATCH_SECONDS: "Time requests spend in the coalescing window.",
    STAGE_KERNEL_SECONDS: "Engine evaluation time per batch (kernel or worker shards).",
    STAGE_CACHE_PROBE_SECONDS: "Hot-pair cache probe time per batch.",
}

#: Every name RL008 accepts as "registered": the union of help-described keys,
#: counters, labelled series names and per-worker fields.  A metric-shaped
#: string literal in the scoped modules that is *not* in this set is a drift
#: hazard and gets flagged.
REGISTERED_NAMES: FrozenSet[str] = (
    frozenset(METRIC_HELP)
    | PROMETHEUS_COUNTERS
    | frozenset(
        {
            NUM_WORKERS,
            WORKER_QUERIES_MIN,
            WORKER_QUERIES_MAX,
            WORKER_BUSY_SECONDS_TOTAL,
            ALERTS_SERIES,
            VERB_QUERIES_TOTAL,
            KERNEL_OP_QUERIES_TOTAL,
            GENERATION_INFO,
            KERNEL_INFO,
            WORKER_BUSY_SECONDS,
            FIELD_BUSY_SECONDS,
        }
    )
)

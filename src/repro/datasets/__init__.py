"""Dataset registry: synthetic stand-ins for the paper's networks plus loaders."""

from repro.datasets.loaders import load_edge_list_dataset, register_custom_dataset
from repro.datasets.registry import (
    DATASETS,
    LARGE_DATASETS,
    SMALL_DATASETS,
    DatasetSpec,
    get_dataset,
    list_datasets,
    load_dataset,
)

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "SMALL_DATASETS",
    "LARGE_DATASETS",
    "list_datasets",
    "get_dataset",
    "load_dataset",
    "load_edge_list_dataset",
    "register_custom_dataset",
]

"""Loading user-supplied datasets and registering them with the experiment harness.

Users who have the original SNAP / LAW edge lists (or any other network) can
run the full experiment suite on them: :func:`load_edge_list_dataset` reads a
file into a graph restricted to its largest connected component, and
:func:`register_custom_dataset` makes it addressable by name through the same
registry used by the built-in synthetic stand-ins.
"""

from __future__ import annotations

import os
from typing import Union

from repro.datasets.registry import DATASETS, DatasetSpec, load_dataset
from repro.errors import DatasetError
from repro.graph.components import largest_connected_component
from repro.graph.csr import Graph
from repro.graph.io import read_edge_list

__all__ = ["load_edge_list_dataset", "register_custom_dataset"]

PathLike = Union[str, os.PathLike]


def load_edge_list_dataset(
    path: PathLike,
    *,
    directed: bool = False,
    weighted: bool = False,
    restrict_to_lcc: bool = True,
) -> Graph:
    """Read an edge-list file and prepare it for experiments.

    Parameters
    ----------
    path:
        Edge-list file (``.gz`` supported); SNAP-style comment lines are
        ignored.
    directed, weighted:
        Interpretation of the file.
    restrict_to_lcc:
        Keep only the largest connected component (the default, matching how
        the experiments treat every dataset).
    """
    graph, _ = read_edge_list(path, directed=directed, weighted=weighted)
    if restrict_to_lcc:
        graph, _ = largest_connected_component(graph)
    return graph


def register_custom_dataset(
    name: str,
    path: PathLike,
    *,
    network_type: str = "Custom",
    size_class: str = "small",
    default_bit_parallel: int = 16,
    directed: bool = False,
    weighted: bool = False,
    description: str = "",
) -> DatasetSpec:
    """Register an on-disk edge list under a dataset name.

    After registration the dataset participates in every experiment driver
    exactly like the built-in ones (``load_dataset(name)`` works, the CLI can
    address it, and the Table 3 benchmark will pick it up when asked).

    Raises
    ------
    DatasetError
        If the name is already registered or the size class is invalid.
    """
    key = name.lower()
    if key in DATASETS:
        raise DatasetError(f"dataset name {name!r} is already registered")
    if size_class not in ("small", "large"):
        raise DatasetError(f"size_class must be 'small' or 'large', got {size_class!r}")
    path = os.fspath(path)

    def generator() -> Graph:
        return load_edge_list_dataset(
            path, directed=directed, weighted=weighted, restrict_to_lcc=False
        )

    spec = DatasetSpec(
        name=key,
        network_type=network_type,
        paper_vertices=0,
        paper_edges=0,
        size_class=size_class,
        default_bit_parallel=default_bit_parallel,
        generator=generator,
        description=description or f"custom dataset loaded from {path}",
    )
    DATASETS[key] = spec
    # A previously cached miss (or stale entry) must not shadow the new dataset.
    load_dataset.cache_clear()
    return spec

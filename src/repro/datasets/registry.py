"""Named, seeded stand-ins for the paper's eleven evaluation datasets (Table 4).

The paper evaluates on real SNAP / LAW networks ranging from 63 thousand to
7.4 million vertices.  Those exact files are not redistributable here and are
far beyond what a pure-Python index build can process in reasonable time, so
the registry materialises *synthetic analogues*: for each dataset we pick the
generator whose structural fingerprint matches the network's type —

* social networks (Epinions, Slashdot, WikiTalk, Flickr, Hollywood):
  preferential attachment with clustering / densified hubs,
* web graphs (NotreDame, Indo, Indochina): R-MAT with strong locality,
* computer networks (Gnutella, Skitter, MetroSec): power-law configuration
  models and hub-densified graphs —

scaled down to a few thousand vertices and generated from a fixed seed, so the
entire benchmark suite is deterministic and laptop friendly.  The paper's
original sizes are kept as metadata so reports can show the correspondence.
All stand-ins are restricted to their largest connected component, matching
how distance queries behave on the originals (their giant components cover
almost every vertex).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Optional

from repro.errors import DatasetError
from repro.generators import (
    configuration_model_graph,
    dense_hub_graph,
    forest_fire_graph,
    holme_kim_graph,
    power_law_degree_sequence,
    rmat_graph,
)
from repro.graph.components import largest_connected_component
from repro.graph.csr import Graph

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "SMALL_DATASETS",
    "LARGE_DATASETS",
    "list_datasets",
    "get_dataset",
    "load_dataset",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one benchmark dataset.

    Attributes
    ----------
    name:
        Registry key (matches the paper's dataset name, lower-cased).
    network_type:
        "Social", "Web" or "Computer", as in Table 4.
    paper_vertices / paper_edges:
        The size of the original real-world network, for reporting.
    size_class:
        ``"small"`` (the five datasets used for method comparison) or
        ``"large"`` (the six datasets used for the scalability study).
    default_bit_parallel:
        Number of bit-parallel BFSs the paper uses for this dataset
        (16 for the small five, 64 for the large six).
    generator:
        Zero-argument callable returning the synthetic stand-in graph.
    description:
        One-line description of the original network.
    """

    name: str
    network_type: str
    paper_vertices: int
    paper_edges: int
    size_class: str
    default_bit_parallel: int
    generator: Callable[[], Graph]
    description: str = ""

    def load(self) -> Graph:
        """Materialise the synthetic stand-in (largest connected component)."""
        graph = self.generator()
        graph, _ = largest_connected_component(graph)
        return graph


def _gnutella() -> Graph:
    degrees = power_law_degree_sequence(4_000, exponent=2.3, min_degree=2, seed=101)
    return configuration_model_graph(degrees, seed=101)


def _epinions() -> Graph:
    return holme_kim_graph(4_000, 6, triad_probability=0.4, seed=102)


def _slashdot() -> Graph:
    return holme_kim_graph(4_500, 10, triad_probability=0.3, seed=103)


def _notredame() -> Graph:
    return rmat_graph(12, 9.0, seed=104)


def _wikitalk() -> Graph:
    return forest_fire_graph(6_000, forward_probability=0.45, seed=105)


def _skitter() -> Graph:
    degrees = power_law_degree_sequence(
        9_000, exponent=2.1, min_degree=2, max_degree=400, seed=106
    )
    return configuration_model_graph(degrees, seed=106)


def _indo() -> Graph:
    return rmat_graph(13, 16.0, seed=107)


def _metrosec() -> Graph:
    return dense_hub_graph(
        9_000, 4, num_hubs=12, hub_extra_fraction=0.05, seed=108
    )


def _flickr() -> Graph:
    return holme_kim_graph(10_000, 12, triad_probability=0.3, seed=109)


def _hollywood() -> Graph:
    return dense_hub_graph(
        8_000, 12, num_hubs=30, hub_extra_fraction=0.08, seed=110
    )


def _indochina() -> Graph:
    return rmat_graph(14, 14.0, seed=111)


DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            name="gnutella",
            network_type="Computer",
            paper_vertices=63_000,
            paper_edges=148_000,
            size_class="small",
            default_bit_parallel=16,
            generator=_gnutella,
            description="Gnutella P2P overlay snapshot (Aug 2002)",
        ),
        DatasetSpec(
            name="epinions",
            network_type="Social",
            paper_vertices=76_000,
            paper_edges=509_000,
            size_class="small",
            default_bit_parallel=16,
            generator=_epinions,
            description="Epinions who-trusts-whom social network",
        ),
        DatasetSpec(
            name="slashdot",
            network_type="Social",
            paper_vertices=82_000,
            paper_edges=948_000,
            size_class="small",
            default_bit_parallel=16,
            generator=_slashdot,
            description="Slashdot friend/foe network (Feb 2009)",
        ),
        DatasetSpec(
            name="notredame",
            network_type="Web",
            paper_vertices=326_000,
            paper_edges=1_500_000,
            size_class="small",
            default_bit_parallel=16,
            generator=_notredame,
            description="University of Notre Dame web graph (1999)",
        ),
        DatasetSpec(
            name="wikitalk",
            network_type="Social",
            paper_vertices=2_400_000,
            paper_edges=4_700_000,
            size_class="small",
            default_bit_parallel=16,
            generator=_wikitalk,
            description="Wikipedia talk-page communication network",
        ),
        DatasetSpec(
            name="skitter",
            network_type="Computer",
            paper_vertices=1_700_000,
            paper_edges=11_000_000,
            size_class="large",
            default_bit_parallel=64,
            generator=_skitter,
            description="Skitter internet topology from traceroutes (2005)",
        ),
        DatasetSpec(
            name="indo",
            network_type="Web",
            paper_vertices=1_400_000,
            paper_edges=17_000_000,
            size_class="large",
            default_bit_parallel=64,
            generator=_indo,
            description=".in-domain web crawl (2004)",
        ),
        DatasetSpec(
            name="metrosec",
            network_type="Computer",
            paper_vertices=2_300_000,
            paper_edges=22_000_000,
            size_class="large",
            default_bit_parallel=64,
            generator=_metrosec,
            description="MetroSec internet traffic graph",
        ),
        DatasetSpec(
            name="flickr",
            network_type="Social",
            paper_vertices=1_800_000,
            paper_edges=23_000_000,
            size_class="large",
            default_bit_parallel=64,
            generator=_flickr,
            description="Flickr photo-sharing social network",
        ),
        DatasetSpec(
            name="hollywood",
            network_type="Social",
            paper_vertices=1_100_000,
            paper_edges=114_000_000,
            size_class="large",
            default_bit_parallel=64,
            generator=_hollywood,
            description="Hollywood movie-actor collaboration network (2009)",
        ),
        DatasetSpec(
            name="indochina",
            network_type="Web",
            paper_vertices=7_400_000,
            paper_edges=194_000_000,
            size_class="large",
            default_bit_parallel=64,
            generator=_indochina,
            description="Indochina country-domain web crawl (2004)",
        ),
    ]
}

#: The five smaller datasets used for the full method comparison (Table 3 top half).
SMALL_DATASETS: List[str] = [
    name for name, spec in DATASETS.items() if spec.size_class == "small"
]

#: The six larger datasets used for the scalability study (Table 3 bottom half).
LARGE_DATASETS: List[str] = [
    name for name, spec in DATASETS.items() if spec.size_class == "large"
]


def list_datasets(size_class: Optional[str] = None) -> List[str]:
    """Names of all registered datasets, optionally filtered by size class."""
    if size_class is None:
        return list(DATASETS)
    if size_class not in ("small", "large"):
        raise DatasetError(f"unknown size class {size_class!r}")
    return [name for name, spec in DATASETS.items() if spec.size_class == size_class]


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by name (case insensitive)."""
    key = name.lower()
    try:
        return DATASETS[key]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise DatasetError(
            f"unknown dataset {name!r}; known datasets: {known}"
        ) from None


@lru_cache(maxsize=None)
def load_dataset(name: str) -> Graph:
    """Materialise a dataset by name, with in-process caching."""
    return get_dataset(name).load()

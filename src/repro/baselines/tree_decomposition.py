"""Core–fringe tree-decomposition oracle (substitute for TEDI [41] / Akiba et al. [4]).

The tree-decomposition-based exact methods the paper compares against exploit
the core–fringe structure of complex networks: the low-tree-width fringe is
decomposed into small bags, while the dense core is handled by stored distance
matrices.  The authors' implementations are not available, so this module
provides a self-contained oracle in the same family:

1. **Fringe elimination.**  Vertices are eliminated in min-degree order while
   their current degree stays below ``max_width``.  Eliminating ``v`` records
   its *bag* (its neighbours at elimination time, with via-``v`` distances) and
   adds shortcut edges between all bag members so that distances among the
   remaining vertices are preserved — the standard elimination-game view of a
   tree decomposition, whose bags have size at most ``max_width``.
2. **Core distance matrix.**  The vertices that survive elimination form the
   core; an all-pairs matrix over the (shortcut-augmented) core is stored,
   mirroring the big-bag distance matrices of TEDI.
3. **Query.**  Both endpoints run an *upward* Dijkstra through their bag
   closure; the answer is the best meeting vertex, either directly in the two
   closures or through a pair of core portals joined by the core matrix.

The oracle is exact (validated against the APSP oracle in the test suite).
Its preprocessing is dominated by the quadratic core matrix, so it slows down
and eventually refuses ("DNF") on graphs whose cores are large — the same
scalability wall the paper reports for this family of methods.
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import IndexBuildError, IndexStateError
from repro.graph.csr import Graph

__all__ = ["TreeDecompositionOracle"]


class TreeDecompositionOracle:
    """Exact distance oracle exploiting low tree-width fringes.

    Parameters
    ----------
    max_width:
        Elimination stops when every remaining vertex has degree above this
        value; it bounds the bag size (the "width" of the fringe
        decomposition).
    max_core_vertices:
        Refuse to build when the surviving core exceeds this size, mirroring
        the "DNF" entries of the paper's comparison (the core matrix is
        quadratic in this number).
    """

    def __init__(
        self,
        *,
        max_width: int = 8,
        max_core_vertices: int = 4_000,
    ) -> None:
        if max_width < 1:
            raise IndexBuildError("max_width must be at least 1")
        self.max_width = max_width
        self.max_core_vertices = max_core_vertices

        self._graph: Optional[Graph] = None
        self._bags: Optional[List[Optional[List[Tuple[int, float]]]]] = None
        self._core_index: Optional[Dict[int, int]] = None
        self._core_matrix: Optional[np.ndarray] = None
        self._core_vertices: Optional[np.ndarray] = None
        self._build_seconds: float = 0.0
        self._elimination_order: Optional[List[int]] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def build(self, graph: Graph) -> "TreeDecompositionOracle":
        """Eliminate the fringe, then store the core distance matrix."""
        if graph.directed:
            raise IndexBuildError("TreeDecompositionOracle expects an undirected graph")
        start = time.perf_counter()
        n = graph.num_vertices

        # Mutable weighted adjacency (weight 1.0 per edge for unweighted graphs).
        adjacency: List[Dict[int, float]] = [dict() for _ in range(n)]
        for u in range(n):
            neighbors = graph.neighbors(u)
            weights = graph.neighbor_weights(u)
            for v, w in zip(neighbors, weights):
                adjacency[u][int(v)] = float(w)

        eliminated = np.zeros(n, dtype=bool)
        bags: List[Optional[List[Tuple[int, float]]]] = [None] * n
        elimination_order: List[int] = []

        # Min-degree elimination with lazy-priority heap.
        heap: List[Tuple[int, int]] = [(len(adjacency[v]), v) for v in range(n)]
        heapq.heapify(heap)
        while heap:
            degree, v = heapq.heappop(heap)
            if eliminated[v] or len(adjacency[v]) != degree:
                continue  # stale heap entry
            if degree > self.max_width:
                # All remaining vertices have degree above the cap: stop.
                break
            # Record the bag and add shortcuts among its members.
            bag = [(u, w) for u, w in adjacency[v].items()]
            bags[v] = bag
            elimination_order.append(v)
            eliminated[v] = True
            for i in range(len(bag)):
                a, wa = bag[i]
                adjacency[a].pop(v, None)
                for j in range(i + 1, len(bag)):
                    b, wb = bag[j]
                    shortcut = wa + wb
                    current = adjacency[a].get(b)
                    if current is None or shortcut < current:
                        adjacency[a][b] = shortcut
                        adjacency[b][a] = shortcut
            adjacency[v] = dict()
            for a, _ in bag:
                if not eliminated[a]:
                    heapq.heappush(heap, (len(adjacency[a]), a))

        core_vertices = np.flatnonzero(~eliminated)
        if core_vertices.shape[0] > self.max_core_vertices:
            raise IndexBuildError(
                f"core has {core_vertices.shape[0]} vertices, above the configured "
                f"max_core_vertices={self.max_core_vertices}; the quadratic core "
                "matrix would be impractical (this mirrors the DNF entries of the "
                "paper's comparison)"
            )

        core_index = {int(v): i for i, v in enumerate(core_vertices)}
        core_count = core_vertices.shape[0]
        core_matrix = np.full((core_count, core_count), np.inf, dtype=np.float64)
        for i, source in enumerate(core_vertices):
            core_matrix[i] = self._core_dijkstra(
                int(source), adjacency, core_index, core_count
            )

        self._graph = graph
        self._bags = bags
        self._core_index = core_index
        self._core_matrix = core_matrix
        self._core_vertices = core_vertices
        self._elimination_order = elimination_order
        self._build_seconds = time.perf_counter() - start
        return self

    @staticmethod
    def _core_dijkstra(
        source: int,
        adjacency: List[Dict[int, float]],
        core_index: Dict[int, int],
        core_count: int,
    ) -> np.ndarray:
        """Distances from one core vertex to all core vertices over the core graph."""
        result = np.full(core_count, np.inf, dtype=np.float64)
        dist: Dict[int, float] = {source: 0.0}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        done: set = set()
        while heap:
            d, u = heapq.heappop(heap)
            if u in done:
                continue
            done.add(u)
            result[core_index[u]] = d
            for v, w in adjacency[u].items():
                candidate = d + w
                if candidate < dist.get(v, np.inf):
                    dist[v] = candidate
                    heapq.heappush(heap, (candidate, v))
        return result

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def built(self) -> bool:
        """Whether the oracle has been built."""
        return self._core_matrix is not None

    def _require_built(self) -> None:
        if not self.built:
            raise IndexStateError("call build(graph) before querying")

    def _upward_closure(self, vertex: int) -> Dict[int, float]:
        """Distances from ``vertex`` to every vertex in its upward bag closure.

        Follows bag edges from eliminated vertices only; core vertices are
        absorbing.  Returns a mapping vertex -> distance including ``vertex``
        itself at distance 0.
        """
        reached: Dict[int, float] = {}
        heap: List[Tuple[float, int]] = [(0.0, vertex)]
        while heap:
            d, u = heapq.heappop(heap)
            if u in reached:
                continue
            reached[u] = d
            bag = self._bags[u]
            if bag is None:
                continue  # core vertex: no upward edges
            for neighbor, weight in bag:
                if neighbor not in reached:
                    heapq.heappush(heap, (d + weight, neighbor))
        return reached

    def distance(self, s: int, t: int) -> float:
        """Exact shortest-path distance (``inf`` if disconnected)."""
        self._require_built()
        if s == t:
            return 0.0
        closure_s = self._upward_closure(s)
        closure_t = self._upward_closure(t)

        best = float("inf")
        # Meeting inside the bag closures (paths that never enter the core).
        smaller, larger = (
            (closure_s, closure_t)
            if len(closure_s) <= len(closure_t)
            else (closure_t, closure_s)
        )
        for vertex, d_small in smaller.items():
            d_large = larger.get(vertex)
            if d_large is not None:
                candidate = d_small + d_large
                if candidate < best:
                    best = candidate

        # Meeting through a pair of core portals joined by the core matrix.
        core_index = self._core_index
        portals_s = [(core_index[v], d) for v, d in closure_s.items() if v in core_index]
        portals_t = [(core_index[v], d) for v, d in closure_t.items() if v in core_index]
        if portals_s and portals_t:
            s_idx = np.array([p for p, _ in portals_s], dtype=np.int64)
            s_d = np.array([d for _, d in portals_s], dtype=np.float64)
            t_idx = np.array([p for p, _ in portals_t], dtype=np.int64)
            t_d = np.array([d for _, d in portals_t], dtype=np.float64)
            through_core = (
                s_d[:, None] + self._core_matrix[np.ix_(s_idx, t_idx)] + t_d[None, :]
            )
            candidate = float(through_core.min())
            if candidate < best:
                best = candidate
        return best

    def distances(self, pairs: Iterable[Tuple[int, int]]) -> np.ndarray:
        """Distances for a batch of ``(s, t)`` pairs."""
        pairs = list(pairs)
        result = np.empty(len(pairs), dtype=np.float64)
        for i, (s, t) in enumerate(pairs):
            result[i] = self.distance(int(s), int(t))
        return result

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def core_size(self) -> int:
        """Number of vertices left in the core after fringe elimination."""
        self._require_built()
        return int(self._core_vertices.shape[0])

    @property
    def num_eliminated(self) -> int:
        """Number of fringe vertices eliminated into bags."""
        self._require_built()
        return len(self._elimination_order)

    def index_size_bytes(self) -> int:
        """Approximate index size: core matrix plus bag entries."""
        self._require_built()
        bag_entries = sum(len(bag) for bag in self._bags if bag is not None)
        return int(self._core_matrix.nbytes) + bag_entries * 12

    @property
    def build_seconds(self) -> float:
        """Wall-clock seconds spent in :meth:`build`."""
        return self._build_seconds

"""Hierarchical hub labeling baseline (substitute for Abraham et al. [2]).

The paper compares against *hierarchical hub labeling* (HHL), a 2-hop-cover
method whose hub hierarchy is derived from an expensive global analysis of
shortest paths, and whose indexing step is orders of magnitude slower than
pruned landmark labeling while its query mechanics are essentially identical.

The authors' implementation is not available to us, so this module provides a
simplified but faithful-in-spirit reimplementation with the same three
characteristics the paper's comparison relies on:

1. **Global preprocessing.**  The builder first computes full single-source
   distances from *every* vertex (``Θ(nm)`` work, ``Θ(n²)`` transient memory),
   exactly the cost profile that makes HHL-style methods choke on the paper's
   larger datasets ("DNF").  A configurable vertex cap reproduces the DNF
   behaviour explicitly instead of running for hours.
2. **Coverage-driven hierarchy.**  The hub order is computed greedily from the
   distance information: vertices are scored by how many sampled shortest
   paths they stab, which is the (sampled) analogue of HHL's greedy hierarchy
   construction.
3. **Canonical labels for that hierarchy.**  Given the hierarchy, the minimal
   hierarchical labels are generated; we reuse the pruned-BFS routine for this
   step because, for a fixed order, it provably produces exactly the canonical
   (minimal) hierarchical labels (Theorem 4.2 of the paper).

The result is an exact oracle whose indexing time and memory blow up well
before pruned landmark labeling's do, which is the comparison Table 3 makes.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.core.labels import LabelSet
from repro.core.pruned import build_pruned_labels
from repro.errors import IndexBuildError, IndexStateError
from repro.graph.csr import Graph
from repro.graph.traversal import UNREACHABLE, bfs_distances

__all__ = ["HierarchicalHubLabeling"]


class HierarchicalHubLabeling:
    """Exact 2-hop oracle with a coverage-greedy hub hierarchy.

    Parameters
    ----------
    num_sample_pairs:
        Number of random vertex pairs used to score hub coverage when building
        the hierarchy.
    max_vertices:
        Refuse to index graphs larger than this (raising
        :class:`~repro.errors.IndexBuildError`), mirroring the "DNF" entries of
        the paper's Table 3 — the quadratic scratch memory (``4 n²`` bytes)
        makes larger inputs impractical.
    seed:
        Seed for the pair sampling.
    """

    def __init__(
        self,
        *,
        num_sample_pairs: int = 2_000,
        max_vertices: int = 6_000,
        seed: int = 0,
    ) -> None:
        self.num_sample_pairs = num_sample_pairs
        self.max_vertices = max_vertices
        self.seed = seed
        self._graph: Optional[Graph] = None
        self._labels: Optional[LabelSet] = None
        self._order: Optional[np.ndarray] = None
        self._build_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def build(self, graph: Graph) -> "HierarchicalHubLabeling":
        """Compute the hub hierarchy and the canonical labels for it."""
        if graph.directed:
            raise IndexBuildError("HierarchicalHubLabeling expects an undirected graph")
        n = graph.num_vertices
        if n > self.max_vertices:
            raise IndexBuildError(
                f"graph has {n} vertices, above the configured max_vertices="
                f"{self.max_vertices}; hierarchical hub labeling requires "
                "quadratic scratch memory (this mirrors the DNF entries of the "
                "paper's comparison)"
            )
        start = time.perf_counter()

        # Phase 1: full single-source distances from every vertex (Θ(nm)).
        distance_matrix = np.full((n, n), np.iinfo(np.int32).max, dtype=np.int32)
        for v in range(n):
            row = bfs_distances(graph, v)
            reachable = row != UNREACHABLE
            distance_matrix[v, reachable] = row[reachable]

        # Phase 2: greedy, sampling-based hierarchy.  A vertex's score is the
        # number of sampled pairs whose shortest path it stabs; ties are broken
        # by degree so the hierarchy is deterministic.
        rng = np.random.default_rng(self.seed)
        num_pairs = min(self.num_sample_pairs, max(n, 1) * 4)
        sources = rng.integers(0, n, size=num_pairs)
        targets = rng.integers(0, n, size=num_pairs)
        pair_distances = distance_matrix[sources, targets]
        finite = pair_distances < np.iinfo(np.int32).max
        sources, targets = sources[finite], targets[finite]
        pair_distances = pair_distances[finite]

        scores = np.zeros(n, dtype=np.int64)
        if sources.size:
            # stabs[v, p] == True when v lies on a shortest path of pair p.
            stabs = (
                distance_matrix[:, sources].astype(np.int64)
                + distance_matrix[:, targets].astype(np.int64)
            ) == pair_distances.astype(np.int64)[None, :]
            scores = stabs.sum(axis=1)
        degrees = graph.degrees()
        hierarchy = np.lexsort((-degrees, -scores)).astype(np.int64)

        # Phase 3: canonical labels for the chosen hierarchy.
        labels, _ = build_pruned_labels(graph, hierarchy)

        self._graph = graph
        self._labels = labels
        self._order = hierarchy
        self._build_seconds = time.perf_counter() - start
        return self

    @property
    def built(self) -> bool:
        """Whether the index has been built."""
        return self._labels is not None

    def _require_built(self) -> None:
        if not self.built:
            raise IndexStateError("call build(graph) before querying")

    # ------------------------------------------------------------------ #
    # Queries and introspection
    # ------------------------------------------------------------------ #

    def distance(self, s: int, t: int) -> float:
        """Exact shortest-path distance (``inf`` if disconnected)."""
        self._require_built()
        if s == t:
            return 0.0
        return self._labels.query(s, t)

    def distances(self, pairs: Iterable[Tuple[int, int]]) -> np.ndarray:
        """Distances for a batch of ``(s, t)`` pairs."""
        pairs = list(pairs)
        result = np.empty(len(pairs), dtype=np.float64)
        for i, (s, t) in enumerate(pairs):
            result[i] = self.distance(int(s), int(t))
        return result

    @property
    def label_set(self) -> LabelSet:
        """The hierarchical hub labels."""
        self._require_built()
        return self._labels

    @property
    def hierarchy(self) -> np.ndarray:
        """The hub hierarchy (most important vertex first)."""
        self._require_built()
        return self._order

    def average_label_size(self) -> float:
        """Average number of label entries per vertex."""
        self._require_built()
        return self._labels.average_label_size()

    def index_size_bytes(self) -> int:
        """Approximate in-memory index size in bytes."""
        self._require_built()
        return self._labels.nbytes()

    @property
    def build_seconds(self) -> float:
        """Wall-clock seconds spent in :meth:`build`."""
        return self._build_seconds

"""Online (index-free) distance computation baselines.

These correspond to the "BFS" column of Table 3 in the paper: what a query
costs when no index is available.  Three strategies are provided:

* :class:`OnlineBFSOracle` — a full breadth-first search from the source for
  every query (the paper's baseline).
* :class:`BidirectionalBFSOracle` — alternating BFS from both endpoints,
  usually an order of magnitude faster on small-world graphs and therefore the
  fairer "practical online" comparison point.
* :class:`OnlineDijkstraOracle` — Dijkstra's algorithm for weighted graphs.

All three share the trivially small "index" (none) and therefore appear in the
benchmark tables with zero indexing time.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.errors import IndexStateError
from repro.graph.csr import Graph
from repro.graph.traversal import (
    UNREACHABLE,
    bfs_distances,
    bidirectional_bfs_distance,
    dijkstra_distances,
)

__all__ = ["OnlineBFSOracle", "BidirectionalBFSOracle", "OnlineDijkstraOracle"]


class _OnlineOracleBase:
    """Shared plumbing for index-free oracles."""

    def __init__(self) -> None:
        self._graph: Optional[Graph] = None

    def build(self, graph: Graph) -> "_OnlineOracleBase":
        """Store the graph; no preprocessing is performed."""
        self._graph = graph
        return self

    @property
    def built(self) -> bool:
        """Whether a graph has been attached."""
        return self._graph is not None

    def _require_built(self) -> None:
        if not self.built:
            raise IndexStateError("call build(graph) before querying")

    def distances(self, pairs: Iterable[Tuple[int, int]]) -> np.ndarray:
        """Distances for a batch of ``(s, t)`` pairs."""
        pairs = list(pairs)
        result = np.empty(len(pairs), dtype=np.float64)
        for i, (s, t) in enumerate(pairs):
            result[i] = self.distance(int(s), int(t))
        return result

    def index_size_bytes(self) -> int:
        """Online methods store no index."""
        return 0

    @property
    def build_seconds(self) -> float:
        """Online methods spend no time preprocessing."""
        return 0.0

    def distance(self, s: int, t: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


class OnlineBFSOracle(_OnlineOracleBase):
    """Answer each query with a full BFS from the source vertex."""

    def distance(self, s: int, t: int) -> float:
        """Exact hop distance computed by one BFS (``inf`` if disconnected)."""
        self._require_built()
        if s == t:
            return 0.0
        dist = bfs_distances(self._graph, s)
        d = dist[t]
        return float("inf") if d == UNREACHABLE else float(d)


class BidirectionalBFSOracle(_OnlineOracleBase):
    """Answer each query with a bidirectional BFS meeting in the middle."""

    def distance(self, s: int, t: int) -> float:
        """Exact hop distance computed by alternating BFS (``inf`` if disconnected)."""
        self._require_built()
        if s == t:
            return 0.0
        return bidirectional_bfs_distance(self._graph, s, t)


class OnlineDijkstraOracle(_OnlineOracleBase):
    """Answer each query with one run of Dijkstra's algorithm (weighted graphs)."""

    def distance(self, s: int, t: int) -> float:
        """Exact weighted distance (``inf`` if disconnected)."""
        self._require_built()
        if s == t:
            return 0.0
        dist = dijkstra_distances(self._graph, s)
        return float(dist[t])

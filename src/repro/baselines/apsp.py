"""All-pairs shortest path oracle: the ground-truth reference for tests.

Storing the full ``n x n`` distance matrix is the "other extreme" the paper's
introduction dismisses for large graphs (quadratic memory and preprocessing),
but on the small graphs used in unit, property and integration tests it is the
perfect oracle: every other method in this library is validated against it.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.errors import IndexStateError
from repro.graph.csr import Graph
from repro.graph.traversal import UNREACHABLE, bfs_distances, dijkstra_distances

__all__ = ["APSPOracle"]


class APSPOracle:
    """Exact all-pairs shortest-path oracle (quadratic memory).

    Parameters
    ----------
    weighted:
        If true, use Dijkstra per source and store float distances; otherwise
        BFS per source with integer distances.
    """

    def __init__(self, *, weighted: bool = False) -> None:
        self.weighted = weighted
        self._graph: Optional[Graph] = None
        self._matrix: Optional[np.ndarray] = None
        self._build_seconds: float = 0.0

    def build(self, graph: Graph) -> "APSPOracle":
        """Run one (BFS or Dijkstra) traversal per vertex and store the matrix."""
        start = time.perf_counter()
        n = graph.num_vertices
        if self.weighted:
            matrix = np.full((n, n), np.inf, dtype=np.float64)
            for v in range(n):
                matrix[v] = dijkstra_distances(graph, v)
        else:
            matrix = np.full((n, n), np.inf, dtype=np.float64)
            for v in range(n):
                row = bfs_distances(graph, v).astype(np.float64)
                row[row == UNREACHABLE] = np.inf
                matrix[v] = row
        self._graph = graph
        self._matrix = matrix
        self._build_seconds = time.perf_counter() - start
        return self

    @property
    def built(self) -> bool:
        """Whether the matrix has been computed."""
        return self._matrix is not None

    def _require_built(self) -> None:
        if not self.built:
            raise IndexStateError("call build(graph) before querying")

    def distance(self, s: int, t: int) -> float:
        """Exact distance between ``s`` and ``t`` (``inf`` if disconnected)."""
        self._require_built()
        return float(self._matrix[s, t])

    def distances(self, pairs: Iterable[Tuple[int, int]]) -> np.ndarray:
        """Distances for a batch of ``(s, t)`` pairs."""
        self._require_built()
        pairs = list(pairs)
        result = np.empty(len(pairs), dtype=np.float64)
        for i, (s, t) in enumerate(pairs):
            result[i] = self._matrix[s, t]
        return result

    @property
    def matrix(self) -> np.ndarray:
        """The full distance matrix (``inf`` marks unreachable pairs)."""
        self._require_built()
        return self._matrix

    def index_size_bytes(self) -> int:
        """Size of the distance matrix in bytes."""
        self._require_built()
        return int(self._matrix.nbytes)

    @property
    def build_seconds(self) -> float:
        """Wall-clock seconds spent in :meth:`build`."""
        return self._build_seconds

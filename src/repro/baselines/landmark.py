"""Standard landmark-based approximate distance estimation (paper Section 2.2).

The landmark method picks a small set of landmark vertices, precomputes the
exact distance from every landmark to every vertex, and answers a query
``(s, t)`` with the *upper bound* ``min_l d(s, l) + d(l, t)`` (and, by the
triangle inequality, the lower bound ``max_l |d(s, l) - d(l, t)|``).

This baseline matters for two reasons:

1. It is the method the paper's Theorem 4.3 compares against: if landmarks
   answer a ``1 - ε`` fraction of pairs exactly, pruned landmark labeling's
   average label size is ``O(k + εn)``.  The ablation benchmark uses
   :meth:`LandmarkOracle.exact_fraction` to check that relationship.
2. Its error profile (poor for close pairs, good for distant pairs) explains
   why pruning covers distant pairs first (Figure 4 of the paper).
"""

from __future__ import annotations

import time
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import IndexBuildError, IndexStateError
from repro.graph.csr import Graph
from repro.graph.ordering import compute_order
from repro.graph.traversal import UNREACHABLE, bfs_distances

__all__ = ["LandmarkOracle"]


class LandmarkOracle:
    """Approximate distance oracle based on distances to ``k`` landmarks.

    Parameters
    ----------
    num_landmarks:
        Number of landmark vertices ``k``.
    strategy:
        Landmark selection strategy: any vertex-ordering strategy name from
        :mod:`repro.graph.ordering` (``"degree"`` — the recommended choice —
        ``"closeness"`` or ``"random"``).
    seed:
        Seed for randomised strategies.
    """

    def __init__(
        self,
        num_landmarks: int = 16,
        *,
        strategy: str = "degree",
        seed: int = 0,
    ) -> None:
        if num_landmarks < 1:
            raise IndexBuildError("num_landmarks must be positive")
        self.num_landmarks = num_landmarks
        self.strategy = strategy
        self.seed = seed
        self._graph: Optional[Graph] = None
        self._landmarks: Optional[np.ndarray] = None
        self._dist: Optional[np.ndarray] = None
        self._build_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def build(self, graph: Graph) -> "LandmarkOracle":
        """Pick landmarks and run one BFS per landmark."""
        start = time.perf_counter()
        order = compute_order(graph, self.strategy, seed=self.seed)
        landmarks = order[: min(self.num_landmarks, graph.num_vertices)]
        dist = np.full(
            (landmarks.shape[0], graph.num_vertices), UNREACHABLE, dtype=np.int32
        )
        for i, landmark in enumerate(landmarks):
            dist[i] = bfs_distances(graph, int(landmark))
        self._graph = graph
        self._landmarks = landmarks
        self._dist = dist
        self._build_seconds = time.perf_counter() - start
        return self

    @property
    def built(self) -> bool:
        """Whether the oracle has been built."""
        return self._dist is not None

    def _require_built(self) -> None:
        if not self.built:
            raise IndexStateError("call build(graph) before querying")

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #

    def estimate(self, s: int, t: int) -> float:
        """Upper-bound estimate ``min_l d(s, l) + d(l, t)`` (``inf`` if no landmark reaches both)."""
        self._require_built()
        if s == t:
            return 0.0
        d_s = self._dist[:, s].astype(np.int64)
        d_t = self._dist[:, t].astype(np.int64)
        valid = (d_s != UNREACHABLE) & (d_t != UNREACHABLE)
        if not valid.any():
            return float("inf")
        return float((d_s[valid] + d_t[valid]).min())

    def lower_bound(self, s: int, t: int) -> float:
        """Triangle-inequality lower bound ``max_l |d(s, l) - d(l, t)|``."""
        self._require_built()
        if s == t:
            return 0.0
        d_s = self._dist[:, s].astype(np.int64)
        d_t = self._dist[:, t].astype(np.int64)
        valid = (d_s != UNREACHABLE) & (d_t != UNREACHABLE)
        if not valid.any():
            return 0.0
        return float(np.abs(d_s[valid] - d_t[valid]).max())

    def distance(self, s: int, t: int) -> float:
        """Alias of :meth:`estimate`, so the oracle fits the common interface.

        Note that unlike every other oracle in this package the returned value
        is an *upper bound*, not necessarily the exact distance.
        """
        return self.estimate(s, t)

    def distances(self, pairs: Iterable[Tuple[int, int]]) -> np.ndarray:
        """Estimates for a batch of ``(s, t)`` pairs."""
        pairs = list(pairs)
        result = np.empty(len(pairs), dtype=np.float64)
        for i, (s, t) in enumerate(pairs):
            result[i] = self.estimate(int(s), int(t))
        return result

    # ------------------------------------------------------------------ #
    # Quality metrics
    # ------------------------------------------------------------------ #

    def exact_fraction(
        self, pairs: Sequence[Tuple[int, int]], true_distances: Sequence[float]
    ) -> float:
        """Fraction of the given pairs whose estimate equals the true distance.

        This is the ``1 - ε`` quantity of Theorem 4.3.
        """
        self._require_built()
        if len(pairs) != len(true_distances):
            raise IndexBuildError("pairs and true_distances must align")
        if not pairs:
            return 1.0
        exact = 0
        for (s, t), true in zip(pairs, true_distances):
            estimate = self.estimate(int(s), int(t))
            if estimate == true or (np.isinf(estimate) and np.isinf(true)):
                exact += 1
        return exact / len(pairs)

    def mean_relative_error(
        self, pairs: Sequence[Tuple[int, int]], true_distances: Sequence[float]
    ) -> float:
        """Mean relative error over finite-distance pairs."""
        self._require_built()
        errors = []
        for (s, t), true in zip(pairs, true_distances):
            if not np.isfinite(true) or true == 0:
                continue
            estimate = self.estimate(int(s), int(t))
            errors.append(abs(estimate - true) / true)
        return float(np.mean(errors)) if errors else 0.0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def landmarks(self) -> np.ndarray:
        """The selected landmark vertices."""
        self._require_built()
        return self._landmarks

    def index_size_bytes(self) -> int:
        """Size of the landmark-distance matrix in bytes."""
        self._require_built()
        return int(self._dist.nbytes)

    @property
    def build_seconds(self) -> float:
        """Wall-clock seconds spent in :meth:`build`."""
        return self._build_seconds

"""Baseline distance-query methods the paper compares against."""

from repro.baselines.apsp import APSPOracle
from repro.baselines.hub_labeling import HierarchicalHubLabeling
from repro.baselines.landmark import LandmarkOracle
from repro.baselines.online import (
    BidirectionalBFSOracle,
    OnlineBFSOracle,
    OnlineDijkstraOracle,
)
from repro.baselines.tree_decomposition import TreeDecompositionOracle

__all__ = [
    "APSPOracle",
    "HierarchicalHubLabeling",
    "LandmarkOracle",
    "OnlineBFSOracle",
    "BidirectionalBFSOracle",
    "OnlineDijkstraOracle",
    "TreeDecompositionOracle",
]

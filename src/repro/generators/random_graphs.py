"""Classic random-graph models: Erdős–Rényi and the configuration model.

These generators serve two roles in the reproduction.  First, uniformly random
graphs (Erdős–Rényi) are the adversarial baseline on which pruning helps the
least — useful for tests and ablations.  Second, the configuration model with
a power-law degree sequence is the stand-in for the paper's computer networks
(Gnutella, Skitter, MetroSec), whose degree distributions are heavy-tailed but
whose clustering is low.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import Graph

__all__ = [
    "erdos_renyi_graph",
    "gnm_random_graph",
    "configuration_model_graph",
    "power_law_degree_sequence",
]


def erdos_renyi_graph(
    num_vertices: int,
    edge_probability: float,
    *,
    seed: Optional[int] = 0,
    directed: bool = False,
) -> Graph:
    """G(n, p) random graph.

    Uses the standard geometric skipping technique so that the running time is
    proportional to the number of generated edges rather than ``n**2``.
    """
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphError(f"edge probability must be in [0, 1], got {edge_probability}")
    rng = np.random.default_rng(seed)
    n = num_vertices
    edges = []
    if edge_probability > 0 and n > 1:
        # Row-by-row sampling: for vertex u, each candidate partner is kept
        # independently with probability p.  The candidate set is v > u for
        # undirected graphs and v != u for directed ones, so every pair is
        # considered exactly once and the result is an exact G(n, p) sample.
        for u in range(n):
            if directed:
                candidates = np.concatenate(
                    [np.arange(0, u), np.arange(u + 1, n)]
                )
            else:
                candidates = np.arange(u + 1, n)
            if candidates.size == 0:
                continue
            keep = rng.random(candidates.size) < edge_probability
            for v in candidates[keep]:
                edges.append((u, int(v)))
    return Graph(n, edges, directed=directed)


def gnm_random_graph(
    num_vertices: int,
    num_edges: int,
    *,
    seed: Optional[int] = 0,
    directed: bool = False,
) -> Graph:
    """G(n, m) random graph with exactly ``num_edges`` distinct edges (if possible)."""
    n = num_vertices
    max_edges = n * (n - 1) if directed else n * (n - 1) // 2
    if num_edges > max_edges:
        raise GraphError(
            f"cannot place {num_edges} distinct edges in a graph with {n} vertices"
        )
    rng = np.random.default_rng(seed)
    chosen = set()
    edges = []
    while len(edges) < num_edges:
        batch = max(num_edges - len(edges), 16)
        us = rng.integers(0, n, size=batch)
        vs = rng.integers(0, n, size=batch)
        for u, v in zip(us, vs):
            u, v = int(u), int(v)
            if u == v:
                continue
            key = (u, v) if directed else (min(u, v), max(u, v))
            if key in chosen:
                continue
            chosen.add(key)
            edges.append(key)
            if len(edges) >= num_edges:
                break
    return Graph(n, edges, directed=directed)


def power_law_degree_sequence(
    num_vertices: int,
    exponent: float = 2.5,
    *,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Sample a degree sequence from a discrete power law ``P(d) ∝ d^-exponent``."""
    if exponent <= 1.0:
        raise GraphError("power-law exponent must exceed 1")
    if min_degree < 1:
        raise GraphError("min_degree must be at least 1")
    rng = np.random.default_rng(seed)
    if max_degree is None:
        max_degree = max(min_degree + 1, int(np.sqrt(num_vertices)) * 2)
    degrees = np.arange(min_degree, max_degree + 1, dtype=np.float64)
    weights = degrees ** (-exponent)
    weights /= weights.sum()
    sequence = rng.choice(
        np.arange(min_degree, max_degree + 1), size=num_vertices, p=weights
    )
    # The configuration model needs an even degree sum.
    if sequence.sum() % 2 == 1:
        sequence[int(rng.integers(0, num_vertices))] += 1
    return sequence.astype(np.int64)


def configuration_model_graph(
    degree_sequence: Sequence[int],
    *,
    seed: Optional[int] = 0,
) -> Graph:
    """Configuration-model graph for a given degree sequence.

    Half-edges ("stubs") are shuffled and paired; self loops and parallel
    edges produced by the pairing are dropped (the usual "erased"
    configuration model), so realised degrees can be slightly below the
    requested ones — exactly as in common practice.
    """
    degrees = np.asarray(degree_sequence, dtype=np.int64)
    if degrees.size == 0:
        return Graph(0, [])
    if np.any(degrees < 0):
        raise GraphError("degrees must be non-negative")
    if degrees.sum() % 2 == 1:
        raise GraphError("the degree sequence must have an even sum")
    rng = np.random.default_rng(seed)
    stubs = np.repeat(np.arange(degrees.shape[0]), degrees)
    rng.shuffle(stubs)
    half = stubs.shape[0] // 2
    sources = stubs[:half]
    targets = stubs[half:]
    edges = np.stack([sources, targets], axis=1)
    return Graph(degrees.shape[0], edges)

"""Small-world generators: Watts–Strogatz rings and lattice variants.

The Watts–Strogatz model interpolates between a highly clustered ring lattice
(long distances, no hubs — the regime where landmark pruning struggles) and a
random graph (short distances).  It is used in the test suite and in ablation
benchmarks as the "hard" counterpart of the scale-free generators: its lack of
high-degree hubs demonstrates why the Degree ordering matters.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import Graph

__all__ = ["watts_strogatz_graph", "ring_lattice"]


def ring_lattice(num_vertices: int, num_neighbors: int) -> Graph:
    """Ring lattice where each vertex links to its ``num_neighbors`` nearest vertices.

    ``num_neighbors`` must be even: each vertex connects to ``num_neighbors/2``
    vertices on each side.
    """
    if num_neighbors % 2 != 0:
        raise GraphError("num_neighbors must be even for a ring lattice")
    if num_neighbors >= num_vertices:
        raise GraphError("num_neighbors must be smaller than num_vertices")
    half = num_neighbors // 2
    edges: List[Tuple[int, int]] = []
    for u in range(num_vertices):
        for offset in range(1, half + 1):
            edges.append((u, (u + offset) % num_vertices))
    return Graph(num_vertices, edges)


def watts_strogatz_graph(
    num_vertices: int,
    num_neighbors: int,
    rewire_probability: float = 0.1,
    *,
    seed: Optional[int] = 0,
) -> Graph:
    """Watts–Strogatz small-world graph.

    Start from a ring lattice and rewire the far endpoint of each edge with
    probability ``rewire_probability`` to a uniformly random vertex (avoiding
    self loops and duplicates when possible).
    """
    if not 0.0 <= rewire_probability <= 1.0:
        raise GraphError("rewire_probability must be in [0, 1]")
    if num_neighbors % 2 != 0:
        raise GraphError("num_neighbors must be even")
    if num_neighbors >= num_vertices:
        raise GraphError("num_neighbors must be smaller than num_vertices")

    rng = np.random.default_rng(seed)
    half = num_neighbors // 2
    neighbors: List[set] = [set() for _ in range(num_vertices)]
    edges: List[Tuple[int, int]] = []

    def connect(u: int, v: int) -> None:
        neighbors[u].add(v)
        neighbors[v].add(u)
        edges.append((u, v))

    for u in range(num_vertices):
        for offset in range(1, half + 1):
            connect(u, (u + offset) % num_vertices)

    rewired: List[Tuple[int, int]] = []
    for u, v in edges:
        if rng.random() >= rewire_probability:
            rewired.append((u, v))
            continue
        # Rewire (u, v) to (u, w) for a random w that keeps the graph simple.
        neighbors[u].discard(v)
        neighbors[v].discard(u)
        for _ in range(16):
            w = int(rng.integers(0, num_vertices))
            if w != u and w not in neighbors[u]:
                break
        else:
            w = v  # could not find a fresh endpoint; keep the original edge
        neighbors[u].add(w)
        neighbors[w].add(u)
        rewired.append((u, w))
    return Graph(num_vertices, rewired)

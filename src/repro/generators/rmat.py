"""Recursive-matrix (R-MAT / Kronecker-style) graph generator.

Web graphs (NotreDame, Indo, Indochina in the paper) exhibit strongly skewed
degree distributions *and* pronounced community / locality structure — pages
within a site link to each other much more than across sites.  The R-MAT
model captures both with four quadrant probabilities ``(a, b, c, d)``: each
edge recursively descends into one quadrant of the adjacency matrix, so a
large ``a`` concentrates edges near the diagonal (locality) while the
asymmetry between quadrants yields heavy-tailed degrees.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import Graph

__all__ = ["rmat_graph"]


def rmat_graph(
    scale: int,
    average_degree: float,
    *,
    quadrants: Tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
    directed: bool = False,
    seed: Optional[int] = 0,
    noise: float = 0.05,
) -> Graph:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        Log2 of the number of vertices.
    average_degree:
        Target average degree; the number of sampled edges is
        ``average_degree * 2**scale / 2`` for undirected graphs.
    quadrants:
        The classic ``(a, b, c, d)`` probabilities (must sum to 1).  The
        default is the Graph500 parameterisation, which produces web-graph
        like networks.
    directed:
        Whether to keep edge direction.
    seed:
        Random seed.
    noise:
        Multiplicative jitter applied to the quadrant probabilities at each
        recursion level, the standard trick to avoid exactly repeated degrees.

    Notes
    -----
    Duplicate edges and self loops produced by the sampling are dropped by the
    :class:`~repro.graph.csr.Graph` constructor, so the realised edge count is
    slightly below the requested one, as with standard R-MAT implementations.
    """
    if scale < 1 or scale > 28:
        raise GraphError("scale must be between 1 and 28")
    a, b, c, d = quadrants
    if abs(a + b + c + d - 1.0) > 1e-9:
        raise GraphError("quadrant probabilities must sum to 1")
    if average_degree <= 0:
        raise GraphError("average_degree must be positive")

    rng = np.random.default_rng(seed)
    n = 1 << scale
    if directed:
        num_edges = int(average_degree * n)
    else:
        num_edges = int(average_degree * n / 2)
    num_edges = max(num_edges, 1)

    sources = np.zeros(num_edges, dtype=np.int64)
    targets = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        # Jittered quadrant probabilities for this recursion level.
        jitter = 1.0 + noise * (rng.random(4) * 2.0 - 1.0)
        pa, pb, pc, pd = np.array([a, b, c, d]) * jitter
        total = pa + pb + pc + pd
        pa, pb, pc = pa / total, pb / total, pc / total

        draws = rng.random(num_edges)
        go_right = np.zeros(num_edges, dtype=bool)
        go_down = np.zeros(num_edges, dtype=bool)
        # Quadrant a: (0, 0); b: (0, 1); c: (1, 0); d: (1, 1).
        in_b = (draws >= pa) & (draws < pa + pb)
        in_c = (draws >= pa + pb) & (draws < pa + pb + pc)
        in_d = draws >= pa + pb + pc
        go_right |= in_b | in_d
        go_down |= in_c | in_d

        bit = 1 << (scale - 1 - level)
        sources += go_down * bit
        targets += go_right * bit

    edges = np.stack([sources, targets], axis=1)
    return Graph(n, edges, directed=directed)

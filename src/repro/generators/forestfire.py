"""Forest-fire graph generator (Leskovec et al.).

The forest-fire model grows a network by letting each new vertex "burn"
through the neighbourhood of a random ambassador, linking to every burned
vertex.  It reproduces the densification and shrinking-diameter behaviour of
real social/communication networks and — importantly for this reproduction —
the pronounced core–fringe structure that Section 4.6.3 of the paper argues
pruned landmark labeling exploits: a dense core with tree-like fringes.

We use it as the stand-in generator for the communication-style datasets
(WikiTalk) whose giant hubs are produced by broadcast-like behaviour.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import Graph

__all__ = ["forest_fire_graph"]


def forest_fire_graph(
    num_vertices: int,
    forward_probability: float = 0.35,
    *,
    seed: Optional[int] = 0,
    max_burn: int = 500,
) -> Graph:
    """Generate an undirected forest-fire graph.

    Parameters
    ----------
    num_vertices:
        Number of vertices in the final graph.
    forward_probability:
        Probability parameter ``p`` of the geometric "spread" distribution: at
        each burning vertex the fire spreads to ``Geometric(1 - p) - 1`` of its
        yet-unburned neighbours.  Larger values give denser, more core-heavy
        graphs.
    seed:
        Random seed.
    max_burn:
        Safety cap on the number of vertices a single arrival may link to,
        which bounds worst-case generation time on dense cores.
    """
    if not 0.0 <= forward_probability < 1.0:
        raise GraphError("forward_probability must be in [0, 1)")
    if num_vertices < 1:
        raise GraphError("num_vertices must be positive")

    rng = np.random.default_rng(seed)
    neighbors: List[Set[int]] = [set() for _ in range(num_vertices)]
    edges: List[Tuple[int, int]] = []

    def connect(u: int, v: int) -> None:
        if u == v or v in neighbors[u]:
            return
        neighbors[u].add(v)
        neighbors[v].add(u)
        edges.append((u, v))

    for new_vertex in range(1, num_vertices):
        ambassador = int(rng.integers(0, new_vertex))
        burned: Set[int] = {ambassador}
        frontier = [ambassador]
        connect(new_vertex, ambassador)
        while frontier and len(burned) < max_burn:
            vertex = frontier.pop()
            if not neighbors[vertex]:
                continue
            # Number of neighbours the fire spreads to from this vertex.
            spread = rng.geometric(1.0 - forward_probability) - 1
            if spread <= 0:
                continue
            candidates = [w for w in neighbors[vertex] if w not in burned and w < new_vertex]
            if not candidates:
                continue
            rng.shuffle(candidates)
            for w in candidates[:spread]:
                burned.add(w)
                frontier.append(w)
                connect(new_vertex, w)
    return Graph(num_vertices, edges)

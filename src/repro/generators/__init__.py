"""Synthetic network generators used to simulate the paper's datasets."""

from repro.generators.forestfire import forest_fire_graph
from repro.generators.perturb import (
    assign_random_weights,
    orient_edges,
    rewire_edges,
    split_edge_stream,
)
from repro.generators.powerlaw import (
    barabasi_albert_graph,
    dense_hub_graph,
    holme_kim_graph,
)
from repro.generators.random_graphs import (
    configuration_model_graph,
    erdos_renyi_graph,
    gnm_random_graph,
    power_law_degree_sequence,
)
from repro.generators.rmat import rmat_graph
from repro.generators.road import grid_graph, random_geometric_graph
from repro.generators.smallworld import ring_lattice, watts_strogatz_graph

__all__ = [
    "barabasi_albert_graph",
    "holme_kim_graph",
    "dense_hub_graph",
    "erdos_renyi_graph",
    "gnm_random_graph",
    "configuration_model_graph",
    "power_law_degree_sequence",
    "rmat_graph",
    "watts_strogatz_graph",
    "ring_lattice",
    "forest_fire_graph",
    "grid_graph",
    "random_geometric_graph",
    "assign_random_weights",
    "orient_edges",
    "rewire_edges",
    "split_edge_stream",
]

"""Graph transformations: weighting, orienting, rewiring, and densifying.

The paper's variants (Section 6) need weighted and directed versions of the
same topologies, and the dynamic-update extension needs streams of edge
insertions.  Rather than teaching every generator about every variant, this
module provides composable transformations applied to an existing
:class:`~repro.graph.csr.Graph`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import Graph

__all__ = [
    "assign_random_weights",
    "orient_edges",
    "rewire_edges",
    "split_edge_stream",
]


def assign_random_weights(
    graph: Graph,
    *,
    low: float = 1.0,
    high: float = 10.0,
    integer: bool = False,
    seed: Optional[int] = 0,
) -> Graph:
    """Return a weighted copy with i.i.d. uniform edge weights in ``[low, high]``."""
    if low < 0 or high < low:
        raise GraphError("weights must satisfy 0 <= low <= high")
    rng = np.random.default_rng(seed)
    edges = list(graph.edges())
    draws = rng.uniform(low, high, size=len(edges))
    if integer:
        draws = np.rint(draws)
    return Graph(
        graph.num_vertices,
        edges,
        directed=graph.directed,
        weights=draws.tolist(),
    )


def orient_edges(
    graph: Graph,
    *,
    both_directions_probability: float = 0.3,
    seed: Optional[int] = 0,
) -> Graph:
    """Turn an undirected graph into a directed one.

    Each undirected edge becomes, with probability
    ``both_directions_probability``, a pair of opposite arcs; otherwise a
    single arc with a random direction.  This mimics how web graphs and trust
    networks mix reciprocated and one-way links.
    """
    if graph.directed:
        raise GraphError("orient_edges expects an undirected graph")
    if not 0.0 <= both_directions_probability <= 1.0:
        raise GraphError("both_directions_probability must be in [0, 1]")
    rng = np.random.default_rng(seed)
    arcs: List[Tuple[int, int]] = []
    weights: List[float] = [] if graph.weighted else None  # type: ignore[assignment]
    for u, v in graph.edges():
        weight = graph.edge_weight(u, v) if graph.weighted else None
        if rng.random() < both_directions_probability:
            arcs.append((u, v))
            arcs.append((v, u))
            if weights is not None:
                weights.extend([weight, weight])
        elif rng.random() < 0.5:
            arcs.append((u, v))
            if weights is not None:
                weights.append(weight)
        else:
            arcs.append((v, u))
            if weights is not None:
                weights.append(weight)
    return Graph(graph.num_vertices, arcs, directed=True, weights=weights)


def rewire_edges(
    graph: Graph,
    fraction: float,
    *,
    seed: Optional[int] = 0,
) -> Graph:
    """Rewire a random ``fraction`` of edges to random endpoints (degree-ignoring).

    Used by robustness tests to check that index correctness is insensitive to
    structural noise.
    """
    if not 0.0 <= fraction <= 1.0:
        raise GraphError("fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    edges = list(graph.edges())
    num_rewired = int(fraction * len(edges))
    if num_rewired == 0 or n < 2:
        return graph
    indices = rng.choice(len(edges), size=num_rewired, replace=False)
    for idx in indices:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        while v == u:
            v = int(rng.integers(0, n))
        edges[idx] = (u, v)
    return Graph(n, edges, directed=graph.directed)


def split_edge_stream(
    graph: Graph,
    initial_fraction: float,
    *,
    seed: Optional[int] = 0,
) -> Tuple[Graph, List[Tuple[int, int]]]:
    """Split a graph into an initial subgraph plus a stream of edge insertions.

    Returns
    -------
    (initial_graph, insertions):
        ``initial_graph`` contains a random ``initial_fraction`` of the edges
        (on the full vertex set); ``insertions`` lists the remaining edges in
        random order.  Feeding the insertions to the dynamic index extension
        must converge to the distances of the full graph.
    """
    if not 0.0 < initial_fraction <= 1.0:
        raise GraphError("initial_fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    edges = list(graph.edges())
    rng.shuffle(edges)
    cut = int(initial_fraction * len(edges))
    initial = Graph(graph.num_vertices, edges[:cut], directed=graph.directed)
    return initial, edges[cut:]

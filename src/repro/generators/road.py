"""Road-network-like generators: grids and random geometric graphs.

The paper contrasts complex networks with road networks (for which other
techniques excel).  To let users and benchmarks explore that contrast — and to
exercise the *weighted* pruned-Dijkstra variant of Section 6 on a realistic
workload — this module generates planar-ish graphs with large diameter:

* :func:`grid_graph` — a 2-D grid with optional random diagonal shortcuts and
  Euclidean-style edge weights.
* :func:`random_geometric_graph` — vertices scattered in the unit square and
  connected when closer than a radius, weighted by Euclidean distance.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import Graph

__all__ = ["grid_graph", "random_geometric_graph"]


def grid_graph(
    rows: int,
    cols: int,
    *,
    diagonal_probability: float = 0.0,
    weighted: bool = False,
    weight_jitter: float = 0.2,
    seed: Optional[int] = 0,
) -> Graph:
    """A ``rows x cols`` grid, optionally with random diagonals and edge weights.

    Vertex ``(r, c)`` has id ``r * cols + c``.  With ``weighted`` the edge
    weights are ``1 ± weight_jitter`` (uniform), mimicking road segments of
    slightly varying length.
    """
    if rows < 1 or cols < 1:
        raise GraphError("rows and cols must be positive")
    if not 0.0 <= diagonal_probability <= 1.0:
        raise GraphError("diagonal_probability must be in [0, 1]")
    rng = np.random.default_rng(seed)

    def vertex(r: int, c: int) -> int:
        return r * cols + c

    edges: List[Tuple[int, int]] = []
    weights: List[float] = []

    def add(u: int, v: int, length: float) -> None:
        edges.append((u, v))
        if weighted:
            jitter = 1.0 + weight_jitter * (rng.random() * 2.0 - 1.0)
            weights.append(length * jitter)

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                add(vertex(r, c), vertex(r, c + 1), 1.0)
            if r + 1 < rows:
                add(vertex(r, c), vertex(r + 1, c), 1.0)
            if (
                diagonal_probability > 0.0
                and r + 1 < rows
                and c + 1 < cols
                and rng.random() < diagonal_probability
            ):
                add(vertex(r, c), vertex(r + 1, c + 1), float(np.sqrt(2.0)))
    return Graph(
        rows * cols,
        edges,
        weights=weights if weighted else None,
    )


def random_geometric_graph(
    num_vertices: int,
    radius: float,
    *,
    weighted: bool = True,
    seed: Optional[int] = 0,
) -> Graph:
    """Random geometric graph in the unit square.

    Vertices are uniform points in ``[0, 1]^2``; two vertices are adjacent when
    their Euclidean distance is below ``radius``.  With ``weighted`` the edge
    weight is that distance, giving a natural workload for pruned Dijkstra.
    """
    if num_vertices < 1:
        raise GraphError("num_vertices must be positive")
    if radius <= 0:
        raise GraphError("radius must be positive")
    rng = np.random.default_rng(seed)
    points = rng.random((num_vertices, 2))

    # Simple uniform-grid bucketing keeps the pair search near-linear.
    cell = max(radius, 1e-9)
    grid_size = int(np.ceil(1.0 / cell))
    buckets: dict = {}
    for idx, (x, y) in enumerate(points):
        key = (int(x / cell), int(y / cell))
        buckets.setdefault(key, []).append(idx)

    edges: List[Tuple[int, int]] = []
    weights: List[float] = []
    for (bx, by), members in buckets.items():
        neighbours_cells = [
            (bx + dx, by + dy)
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
            if (bx + dx, by + dy) in buckets
        ]
        for u in members:
            for cell_key in neighbours_cells:
                for v in buckets[cell_key]:
                    if v <= u:
                        continue
                    distance = float(np.linalg.norm(points[u] - points[v]))
                    if distance < radius:
                        edges.append((u, v))
                        weights.append(distance)
    return Graph(
        num_vertices,
        edges,
        weights=weights if weighted else None,
    )

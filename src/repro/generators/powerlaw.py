"""Scale-free network generators: Barabási–Albert and Holme–Kim.

Social networks in the paper's evaluation (Epinions, Slashdot, WikiTalk,
Flickr, Hollywood) are scale free with noticeable clustering, and the power of
pruned landmark labeling on them comes precisely from the existence of a few
extremely central hubs.  The preferential-attachment models in this module
reproduce both properties:

* :func:`barabasi_albert_graph` — the classic preferential-attachment model
  with power-law exponent ~3 and low clustering.
* :func:`holme_kim_graph` — preferential attachment with a triad-formation
  step, yielding the higher clustering typical of social networks.
* :func:`dense_hub_graph` — a Barabási–Albert core whose earliest vertices are
  additionally densified, approximating the extreme hubs of collaboration
  networks such as Hollywood.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import Graph

__all__ = ["barabasi_albert_graph", "holme_kim_graph", "dense_hub_graph"]


def _preferential_targets(
    rng: np.random.Generator,
    repeated_nodes: List[int],
    num_targets: int,
    exclude: int,
) -> List[int]:
    """Pick ``num_targets`` distinct attachment targets ∝ degree, excluding one vertex."""
    targets: set = set()
    # The repeated-nodes list contains one entry per endpoint, so uniform
    # sampling from it is sampling proportionally to degree.
    while len(targets) < num_targets:
        candidate = repeated_nodes[int(rng.integers(0, len(repeated_nodes)))]
        if candidate != exclude:
            targets.add(candidate)
    return list(targets)


def barabasi_albert_graph(
    num_vertices: int,
    edges_per_vertex: int,
    *,
    seed: Optional[int] = 0,
) -> Graph:
    """Barabási–Albert preferential-attachment graph.

    Parameters
    ----------
    num_vertices:
        Total number of vertices.
    edges_per_vertex:
        Number of edges each newly arriving vertex attaches with (``m`` in the
        standard formulation).  Must satisfy ``1 <= m < num_vertices``.
    seed:
        Seed for the pseudo-random generator.
    """
    m = edges_per_vertex
    if m < 1 or m >= num_vertices:
        raise GraphError(
            f"edges_per_vertex must be in [1, num_vertices); got {m} for "
            f"{num_vertices} vertices"
        )
    rng = np.random.default_rng(seed)
    edges: List[Tuple[int, int]] = []
    # Start from a star on m + 1 vertices so that every early vertex has degree >= 1.
    repeated_nodes: List[int] = []
    for v in range(1, m + 1):
        edges.append((0, v))
        repeated_nodes.extend([0, v])

    for new_vertex in range(m + 1, num_vertices):
        targets = _preferential_targets(rng, repeated_nodes, m, new_vertex)
        for target in targets:
            edges.append((new_vertex, target))
            repeated_nodes.extend([new_vertex, target])
    return Graph(num_vertices, edges)


def holme_kim_graph(
    num_vertices: int,
    edges_per_vertex: int,
    triad_probability: float = 0.3,
    *,
    seed: Optional[int] = 0,
) -> Graph:
    """Holme–Kim power-law graph with tunable clustering.

    After each preferential attachment step, with probability
    ``triad_probability`` the next edge instead closes a triangle by linking
    to a random neighbour of the previously chosen target, which raises the
    clustering coefficient towards values observed in real social networks.
    """
    m = edges_per_vertex
    if m < 1 or m >= num_vertices:
        raise GraphError(
            f"edges_per_vertex must be in [1, num_vertices); got {m} for "
            f"{num_vertices} vertices"
        )
    if not 0.0 <= triad_probability <= 1.0:
        raise GraphError("triad_probability must be in [0, 1]")
    rng = np.random.default_rng(seed)
    edges: List[Tuple[int, int]] = []
    neighbors: List[set] = [set() for _ in range(num_vertices)]
    repeated_nodes: List[int] = []

    def add_edge(u: int, v: int) -> None:
        if u == v or v in neighbors[u]:
            return
        edges.append((u, v))
        neighbors[u].add(v)
        neighbors[v].add(u)
        repeated_nodes.extend([u, v])

    for v in range(1, m + 1):
        add_edge(0, v)

    for new_vertex in range(m + 1, num_vertices):
        previous_target: Optional[int] = None
        attached = 0
        guard = 0
        while attached < m and guard < 50 * m:
            guard += 1
            close_triangle = (
                previous_target is not None
                and rng.random() < triad_probability
                and neighbors[previous_target]
            )
            if close_triangle:
                candidates = list(neighbors[previous_target])
                target = candidates[int(rng.integers(0, len(candidates)))]
            else:
                target = repeated_nodes[int(rng.integers(0, len(repeated_nodes)))]
            if target == new_vertex or target in neighbors[new_vertex]:
                previous_target = None
                continue
            add_edge(new_vertex, target)
            previous_target = target
            attached += 1
    return Graph(num_vertices, edges)


def dense_hub_graph(
    num_vertices: int,
    edges_per_vertex: int,
    *,
    num_hubs: int = 10,
    hub_extra_fraction: float = 0.05,
    seed: Optional[int] = 0,
) -> Graph:
    """Barabási–Albert graph with additionally densified early hubs.

    Collaboration networks such as the paper's Hollywood dataset have an
    extremely dense core (the average degree exceeds 200).  This generator
    takes a preferential-attachment graph and attaches each of the first
    ``num_hubs`` vertices to an extra ``hub_extra_fraction`` share of all
    vertices chosen uniformly at random, producing the same "few giant hubs on
    top of a power law" shape.
    """
    if not 0.0 <= hub_extra_fraction <= 1.0:
        raise GraphError("hub_extra_fraction must be in [0, 1]")
    base = barabasi_albert_graph(num_vertices, edges_per_vertex, seed=seed)
    rng = np.random.default_rng(None if seed is None else seed + 1)
    extra_edges: List[Tuple[int, int]] = list(base.edges())
    extra_per_hub = int(hub_extra_fraction * num_vertices)
    for hub in range(min(num_hubs, num_vertices)):
        if extra_per_hub == 0:
            break
        partners = rng.choice(num_vertices, size=extra_per_hub, replace=False)
        for partner in partners:
            if int(partner) != hub:
                extra_edges.append((hub, int(partner)))
    return Graph(num_vertices, extra_edges)

"""Pruned Landmark Labeling: fast exact shortest-path distance queries.

A faithful, pure-Python (numpy-accelerated) reproduction of

    Takuya Akiba, Yoichi Iwata, Yuichi Yoshida.
    "Fast Exact Shortest-Path Distance Queries on Large Networks by Pruned
    Landmark Labeling."  SIGMOD 2013.

Quick start
-----------
>>> from repro import PrunedLandmarkLabeling
>>> from repro.generators import barabasi_albert_graph
>>> graph = barabasi_albert_graph(2_000, 3, seed=7)
>>> oracle = PrunedLandmarkLabeling(num_bit_parallel_roots=8).build(graph)
>>> oracle.distance(0, 1999) > 0  # exact hop distance, microsecond-scale queries
True

The package is organised as:

* :mod:`repro.core` — the paper's contribution: pruned landmark labeling,
  bit-parallel labels, weighted / directed / path / dynamic variants.
* :mod:`repro.graph` — the graph substrate (CSR graphs, traversals, orderings).
* :mod:`repro.generators` — synthetic network generators.
* :mod:`repro.baselines` — online BFS, landmark estimation, hub labeling and
  tree-decomposition baselines used in the paper's comparison tables.
* :mod:`repro.datasets` — named, seeded stand-ins for the paper's datasets.
* :mod:`repro.experiments` — drivers regenerating every table and figure.
"""

from repro._version import __version__
from repro.core import (
    DirectedPrunedLandmarkLabeling,
    DynamicPrunedLandmarkLabeling,
    PathPrunedLandmarkLabeling,
    PrunedLandmarkLabeling,
    WeightedPrunedLandmarkLabeling,
    build_index,
    load_index,
    save_index,
)
from repro.graph import Graph, GraphBuilder, read_edge_list, write_edge_list
from repro.serving import (
    BatchQueryEngine,
    LRUCache,
    QueryServer,
    SnapshotManager,
)

__all__ = [
    "__version__",
    "PrunedLandmarkLabeling",
    "WeightedPrunedLandmarkLabeling",
    "DirectedPrunedLandmarkLabeling",
    "PathPrunedLandmarkLabeling",
    "DynamicPrunedLandmarkLabeling",
    "build_index",
    "save_index",
    "load_index",
    "Graph",
    "GraphBuilder",
    "read_edge_list",
    "write_edge_list",
    "BatchQueryEngine",
    "LRUCache",
    "QueryServer",
    "SnapshotManager",
]

"""End-to-end request tracing: spans, trace ring buffers, slow-query log.

When a serving P99 spikes, a latency *histogram* says how bad it is but not
where the time went — queue wait, the coalescing window, the kernel, a skewed
shard, a pool respawn.  This module follows every request through its whole
life instead:

* A **trace id** is minted at admission (:meth:`TraceRecorder.start`), before
  the request ever touches the batching queue, so a request can be correlated
  across log lines from the moment it exists.
* **Spans** are recorded as the request moves through the pipeline — queue
  wait, the coalescing window, the cache probe, the kernel (or one span per
  worker-process shard, stitched into every parent trace the batch served),
  and the reply write.  A span is just a name, a duration and a few
  attributes; recording one is an object construction and a list append, so
  instrumentation is cheap enough to leave on in production (see
  ``benchmarks/bench_observability.py`` for the measured overhead).
* Completed traces land in a **bounded ring buffer** of recent traces, and —
  when a slow threshold is configured (``serve --slow-ms``) — traces over the
  threshold land in a second ring buffer and are emitted through the
  structured **slow-query log**.  The async admin plane serves both rings as
  JSON on ``GET /traces``.
* :class:`StructuredLogger` is the JSON logging helper behind
  ``serve --log-json``: one JSON object per line (timestamp, event name,
  component, free-form fields), shared by the threaded server, the asyncio
  front end, the sharded engine and the CLI so operational events are
  machine-parseable across the whole stack.

:class:`NullTraceRecorder` is the no-op drop-in (``start`` returns ``None``,
everything else does nothing) used to measure instrumentation overhead and to
switch tracing off entirely.
"""

from __future__ import annotations

import itertools
import json
import os
import sys
import threading
import time
from collections import deque
from typing import IO, Dict, Iterable, List, Optional

__all__ = [
    "Span",
    "Trace",
    "TraceRecorder",
    "NullTraceRecorder",
    "StructuredLogger",
    "make_trace_id",
]

#: Per-process prefix so trace ids stay unique across server restarts and
#: across the processes of a sharded deployment.
_TRACE_PREFIX = f"{os.getpid() & 0xFFFF:04x}{int(time.time()) & 0xFFFF:04x}"
_TRACE_COUNTER = itertools.count(1)


def make_trace_id() -> str:
    """Mint one process-unique trace id (16 hex characters, counter based).

    Deliberately *not* cryptographic: minting must cost nanoseconds because it
    happens on every admission, and trace ids only need to be unique enough to
    correlate log lines and ``/traces`` entries.
    """
    return f"{_TRACE_PREFIX}{next(_TRACE_COUNTER) & 0xFFFFFFFF:08x}"


class Span:
    """One timed stage of a request's life: a name, a duration, attributes.

    Attributes are free-form (worker pid, pair counts, cache hits); they ride
    along into the JSON rendering.  Spans are value objects shared freely
    between the traces of a coalesced batch — every request in a batch gets
    the *same* kernel/shard span objects, which is exactly the semantics
    (they shared that engine call).
    """

    __slots__ = ("name", "seconds", "attrs")

    def __init__(self, name: str, seconds: float, **attrs) -> None:
        self.name = name
        self.seconds = seconds
        self.attrs = attrs

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "name": self.name,
            "ms": self.seconds * 1000.0,
        }
        record.update(self.attrs)
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.seconds * 1000.0:.3f}ms, {self.attrs})"


class Trace:
    """One request's trace: an id minted at admission plus its recorded spans."""

    __slots__ = ("trace_id", "started_at", "num_pairs", "spans", "total_seconds", "status")

    def __init__(self, trace_id: str, num_pairs: int) -> None:
        self.trace_id = trace_id
        #: Wall-clock admission time (``time.time``), for log correlation.
        self.started_at = time.time()
        self.num_pairs = num_pairs
        self.spans: List[Span] = []
        self.total_seconds = 0.0
        self.status = "ok"

    def add_span(self, name: str, seconds: float, **attrs) -> None:
        """Record one stage span (clamped non-negative against clock skew)."""
        self.spans.append(Span(name, seconds if seconds > 0.0 else 0.0, **attrs))

    def extend(self, spans: Iterable[Span]) -> None:
        """Attach already-built spans (the batch-shared cache/kernel/shard spans)."""
        self.spans.extend(spans)

    def as_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "started_at": self.started_at,
            "num_pairs": self.num_pairs,
            "total_ms": self.total_seconds * 1000.0,
            "status": self.status,
            "spans": [span.as_dict() for span in self.spans],
        }


class TraceRecorder:
    """Thread-safe sink for completed traces: recent ring, slow ring, slow log.

    Parameters
    ----------
    capacity:
        Bound on the recent-trace ring buffer (oldest evicted first).
    slow_threshold_ms:
        Traces whose end-to-end time meets the threshold are additionally
        kept in the slow ring and emitted through ``logger`` as a
        ``slow_query`` event.  ``None`` (the default) disables the slow log.
    slow_capacity:
        Bound on the slow-trace ring buffer.
    logger:
        Optional :class:`StructuredLogger` for slow-query events.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = 256,
        *,
        slow_threshold_ms: Optional[float] = None,
        slow_capacity: int = 128,
        logger: Optional["StructuredLogger"] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("trace buffer capacity must be positive")
        self._lock = threading.Lock()
        self._recent: "deque[Trace]" = deque(maxlen=int(capacity))
        self._slow: "deque[Trace]" = deque(maxlen=int(slow_capacity))
        self.slow_threshold_ms = (
            float(slow_threshold_ms) if slow_threshold_ms is not None else None
        )
        self._logger = logger
        self._num_recorded = 0
        self._num_slow = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def start(self, num_pairs: int) -> Optional[Trace]:
        """Mint a trace id and open a trace for one admitted request."""
        return Trace(make_trace_id(), num_pairs)

    def record(self, trace: Optional[Trace], total_seconds: float, *, status: str = "ok") -> None:
        """Complete ``trace`` and file it into the ring buffers.

        ``total_seconds`` is the client-observed end-to-end time (admission to
        reply).  Slow traces are duplicated into the slow ring and logged.
        """
        if trace is None:
            return
        trace.total_seconds = total_seconds
        trace.status = status
        slow = (
            self.slow_threshold_ms is not None
            and total_seconds * 1000.0 >= self.slow_threshold_ms
        )
        with self._lock:
            self._recent.append(trace)
            self._num_recorded += 1
            if slow:
                self._slow.append(trace)
                self._num_slow += 1
        if slow and self._logger is not None:
            self._logger.event("slow_query", **trace.as_dict())

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    @property
    def num_recorded(self) -> int:
        """Total traces recorded (monotonic, not bounded by the ring)."""
        with self._lock:
            return self._num_recorded

    @property
    def num_slow(self) -> int:
        """Total traces that crossed the slow threshold (monotonic)."""
        with self._lock:
            return self._num_slow

    def recent(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Most recent traces as dicts, newest first."""
        with self._lock:
            traces = list(self._recent)
        traces.reverse()
        if limit is not None:
            traces = traces[: int(limit)]
        return [trace.as_dict() for trace in traces]

    def slow(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Traces over the slow threshold as dicts, newest first."""
        with self._lock:
            traces = list(self._slow)
        traces.reverse()
        if limit is not None:
            traces = traces[: int(limit)]
        return [trace.as_dict() for trace in traces]

    def snapshot(self, *, limit: Optional[int] = None) -> Dict[str, object]:
        """The ``GET /traces`` / wire ``TRACES`` payload: both rings plus config."""
        return {
            "slow_threshold_ms": self.slow_threshold_ms,
            "num_recorded": self.num_recorded,
            "num_slow": self.num_slow,
            "recent": self.recent(limit),
            "slow": self.slow(limit),
        }


class NullTraceRecorder(TraceRecorder):
    """Tracing switched off: ``start`` returns ``None``, everything else no-ops.

    The instrumented code paths guard span construction on the trace being
    non-``None``, so with this recorder the per-request tracing cost is one
    method call — the baseline the overhead benchmark compares against.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def start(self, num_pairs: int) -> Optional[Trace]:
        return None

    def record(self, trace, total_seconds: float, *, status: str = "ok") -> None:
        return None


class StructuredLogger:
    """One-JSON-object-per-line event logger (the ``--log-json`` helper).

    Every event line carries ``ts`` (epoch seconds), ``event`` and
    ``component`` plus the caller's fields, so the whole serving stack —
    threaded server, asyncio front end, sharded engine, CLI — emits logs a
    pipeline can parse without per-module regexes.  Writes are serialised
    under a lock (lines from concurrent threads never interleave) and
    non-JSON-serialisable field values degrade to ``repr`` instead of
    raising: logging must never take the serving path down.
    """

    def __init__(
        self, stream: Optional[IO[str]] = None, *, component: str = "serving"
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._component = component
        self._lock = threading.Lock()

    def child(self, component: str) -> "StructuredLogger":
        """A logger sharing this stream (and lock) under another component tag."""
        clone = StructuredLogger.__new__(StructuredLogger)
        clone._stream = self._stream
        clone._component = component
        clone._lock = self._lock
        return clone

    def event(self, event: str, **fields) -> None:
        """Emit one event line; never raises."""
        record = {"ts": time.time(), "event": event, "component": self._component}
        record.update(fields)
        try:
            line = json.dumps(record, sort_keys=True, default=repr)
        except (TypeError, ValueError):  # pragma: no cover - repr default covers this
            line = json.dumps({"ts": record["ts"], "event": event, "component": self._component})
        try:
            with self._lock:
                self._stream.write(line + "\n")
                self._stream.flush()
        except Exception:  # pragma: no cover - a closed stream must not kill serving
            pass

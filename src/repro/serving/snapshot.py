"""Atomic index snapshots: lock-free reads, hot-swapped updates.

A serving index must answer queries continuously while the graph underneath
it changes (edge insertions and deletions from :mod:`repro.core.dynamic`) or
while a newer index is loaded from disk.  Rather than guarding the read path with locks —
which would put a mutex acquisition in front of every microsecond-scale query
— the serving layer uses *snapshot publication*:

* Readers call :attr:`SnapshotManager.current` once per request/batch.  That
  is a single attribute read (atomic under the CPython memory model), so the
  read path is completely lock free, and a reader holding a snapshot keeps a
  consistent index view for as long as it likes — in-flight batches are never
  affected by a concurrent swap.
* Writers apply edge insertions and deletions to a private *shadow*
  :class:`~repro.core.dynamic.DynamicPrunedLandmarkLabeling` under a write
  lock, then :meth:`~SnapshotManager.publish` an immutable frozen copy —
  by default a *diff* freeze that patches only the changed per-vertex labels
  into the previous snapshot's label set.  Publication replaces the current
  snapshot in one reference assignment; old snapshots are reclaimed by the
  garbage collector once the last reader drops them.

This is the classic read-copy-update shape used by production search/vector
stores for index segment swaps, applied to the 2-hop-label index.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Tuple, Union

from repro.core.dynamic import DynamicPrunedLandmarkLabeling
from repro.core.index import PrunedLandmarkLabeling
from repro.core.serialization import export_index_to_backend, load_index
from repro.core.storage import (
    SharedGeneration,
    SharedMemoryBackend,
    new_shared_prefix,
)
from repro.errors import ServingError
from repro.graph.csr import Graph
from repro.serving.engine import BatchQueryEngine

__all__ = ["IndexSnapshot", "SnapshotManager"]


@dataclass(frozen=True)
class IndexSnapshot:
    """One immutable published index version.

    Snapshots are value objects: everything reachable from one (the engine,
    its index, the label arrays) is frozen, so a reader may use it without
    coordination for any length of time.
    """

    engine: BatchQueryEngine
    version: int
    published_at: float = field(default_factory=time.time)
    #: Human-readable provenance ("initial build", "update batch", file path, ...).
    source: str = ""
    #: The named shared-memory generation backing this snapshot's arrays,
    #: when the manager publishes shared snapshots (``None`` otherwise).
    #: Worker processes attach it by :attr:`SharedGeneration.name`.
    generation: Optional[SharedGeneration] = None

    @property
    def index(self) -> PrunedLandmarkLabeling:
        """The snapshot's underlying index."""
        return self.engine.index


class SnapshotManager:
    """Publishes immutable index snapshots and applies updates to a shadow copy.

    Construct with :meth:`from_graph` (writable: supports edge insertions) or
    :meth:`from_index` (read-only publication, e.g. for disk reloads).

    Examples
    --------
    >>> from repro.graph import Graph
    >>> from repro.serving import SnapshotManager
    >>> manager = SnapshotManager.from_graph(Graph(4, [(0, 1), (2, 3)]))
    >>> manager.current.engine.query(0, 3)
    inf
    >>> manager.insert_edge(1, 2)
    >>> _ = manager.publish()
    >>> manager.current.engine.query(0, 3)
    3.0
    """

    def __init__(
        self,
        initial: PrunedLandmarkLabeling,
        *,
        shadow: Optional[DynamicPrunedLandmarkLabeling] = None,
        shadow_factory: Optional[Callable[[], DynamicPrunedLandmarkLabeling]] = None,
        source: str = "initial build",
        shared: bool = False,
    ) -> None:
        # Reentrant: _require_shadow may build the shadow lazily while the
        # caller (insert_edge/publish) already holds the lock.
        self._write_lock = threading.RLock()
        self._shadow = shadow
        self._shadow_factory = shadow_factory
        self._pending_updates = 0
        self._shared = bool(shared)
        self._shared_prefix = new_shared_prefix() if self._shared else None
        generation = None
        if self._shared:
            _, generation = self._export_generation(
                lambda backend: export_index_to_backend(
                    initial, backend, source=source
                ),
                version=1,
            )
        self._current = IndexSnapshot(
            engine=BatchQueryEngine(initial),
            version=1,
            source=source,
            generation=generation,
        )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        *,
        ordering: str = "degree",
        seed: int = 0,
        shared: bool = False,
    ) -> "SnapshotManager":
        """Build a writable manager: shadow dynamic index plus initial snapshot."""
        shadow = DynamicPrunedLandmarkLabeling(ordering=ordering, seed=seed).build(
            graph
        )
        return cls(shadow.freeze(), shadow=shadow, shared=shared)

    @classmethod
    def from_index(
        cls, index: PrunedLandmarkLabeling, *, shared: bool = False
    ) -> "SnapshotManager":
        """Wrap an already-built index.

        The manager is writable when the index still carries its graph (a
        shadow dynamic index is derived from it — lazily, on the first
        :meth:`insert_edge`, because building it re-runs the pruned-BFS
        construction); an index loaded from disk has no graph, so such a
        manager only serves and :meth:`reload`\\ s.
        """
        graph = index.graph if index.built else None
        if graph is not None and not graph.directed:
            ordering = index.ordering if isinstance(index.ordering, str) else "degree"
            seed = index.seed

            def build_shadow() -> DynamicPrunedLandmarkLabeling:
                return DynamicPrunedLandmarkLabeling(
                    ordering=ordering, seed=seed
                ).build(graph)

            return cls(index, shadow_factory=build_shadow, shared=shared)
        return cls(index, shadow=None, shared=shared)

    # ------------------------------------------------------------------ #
    # Shared-memory generations
    # ------------------------------------------------------------------ #

    @property
    def shared(self) -> bool:
        """Whether snapshots are published as named shared-memory generations."""
        return self._shared

    def _new_generation_backend(self, version: int) -> SharedMemoryBackend:
        return SharedMemoryBackend.create(f"{self._shared_prefix}-g{version}")

    def _export_generation(self, export, version: int):
        """Run ``export(backend)`` into a fresh generation; unlink on failure.

        A freeze or export that raises halfway (e.g. ``/dev/shm`` filling up
        mid-copy) must not strand the partial generation's segments for the
        server's lifetime — a transient shortage would otherwise compound
        with every retried publish.
        """
        backend = self._new_generation_backend(version)
        try:
            result = export(backend)
        except BaseException:
            backend.unlink()
            raise
        return result, SharedGeneration(backend)

    def _swap(self, snapshot: IndexSnapshot) -> None:
        """Install ``snapshot`` and retire the superseded generation (if any).

        Retirement is refcounted (:class:`~repro.core.storage.SharedGeneration`):
        the old generation's segments are unlinked immediately when no worker
        batch is in flight on it, or by the last such reader's release —
        in-flight batches always finish on the generation they started on.
        """
        previous = self._current
        self._current = snapshot
        if previous.generation is not None:
            previous.generation.retire()

    def close(self) -> None:
        """Retire and unlink the current shared generation (shutdown path).

        A no-op for non-shared managers.  The manager must not be published
        to afterwards.
        """
        with self._write_lock:
            if self._current.generation is not None:
                self._current.generation.retire()

    # ------------------------------------------------------------------ #
    # Read path (lock free)
    # ------------------------------------------------------------------ #

    @property
    def current(self) -> IndexSnapshot:
        """The currently published snapshot (a single atomic attribute read)."""
        return self._current

    @property
    def version(self) -> int:
        """Version number of the current snapshot."""
        return self._current.version

    def query(self, s: int, t: int) -> float:
        """Convenience scalar query against the current snapshot."""
        return self._current.engine.query(s, t)

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #

    @property
    def writable(self) -> bool:
        """Whether the manager has (or can build) a shadow accepting insertions."""
        with self._write_lock:
            return self._shadow is not None or self._shadow_factory is not None

    @property
    def pending_updates(self) -> int:
        """Edge insertions applied to the shadow but not yet published."""
        with self._write_lock:
            return self._pending_updates

    @property
    def dirty_vertex_count(self) -> int:
        """Shadow vertices whose labels changed since the last publish.

        Zero for read-only managers (no shadow) and for lazily-built shadows
        that have not been materialised yet — the observability surface must
        never trigger the expensive shadow construction.
        """
        with self._write_lock:
            shadow = self._shadow
        if shadow is None:
            return 0
        return len(shadow.dirty_vertices)

    def _require_shadow(self) -> DynamicPrunedLandmarkLabeling:
        with self._write_lock:
            if self._shadow is None and self._shadow_factory is not None:
                self._shadow = self._shadow_factory()
                self._shadow_factory = None
            if self._shadow is None:
                raise ServingError(
                    "this snapshot manager has no writable shadow index (it was "
                    "created from a graph-less index, e.g. one loaded from disk)"
                )
            return self._shadow

    def insert_edge(self, a: int, b: int) -> None:
        """Apply one edge insertion to the shadow index (not yet visible to readers)."""
        shadow = self._require_shadow()
        with self._write_lock:
            shadow.insert_edge(a, b)
            self._pending_updates += 1

    def insert_edges(self, edges: Iterable[Tuple[int, int]]) -> None:
        """Apply a stream of edge insertions to the shadow index."""
        shadow = self._require_shadow()
        with self._write_lock:
            for a, b in edges:
                shadow.insert_edge(int(a), int(b))
                self._pending_updates += 1

    def remove_edge(self, a: int, b: int) -> None:
        """Apply one edge deletion to the shadow index (not yet visible to readers)."""
        shadow = self._require_shadow()
        with self._write_lock:
            shadow.remove_edge(a, b)
            self._pending_updates += 1

    def remove_edges(self, edges: Iterable[Tuple[int, int]]) -> None:
        """Apply a stream of edge deletions to the shadow index."""
        shadow = self._require_shadow()
        with self._write_lock:
            for a, b in edges:
                shadow.remove_edge(int(a), int(b))
                self._pending_updates += 1

    def publish(self, *, diff: bool = True) -> IndexSnapshot:
        """Freeze the shadow index and atomically swap it in for readers.

        In-flight readers holding the previous snapshot are unaffected; new
        ``current`` reads observe the new version immediately.  With ``diff``
        (the default) the freeze patches only the labels of vertices dirtied
        since the last freeze into the previous frozen label set, so publish
        cost scales with the size of the change, not the index.
        """
        shadow = self._require_shadow()
        with self._write_lock:
            patched = len(shadow.dirty_vertices)
            generation = None
            if self._shared:
                # The freeze patches the dirty label/kernel segments directly
                # into the next generation's shared-memory region; the rest
                # of the export only fills in what freeze did not write.
                def freeze_into(backend):
                    frozen = shadow.freeze(diff=diff, backend=backend)
                    export_index_to_backend(frozen, backend, source="publish")
                    return frozen

                frozen, generation = self._export_generation(
                    freeze_into, version=self._current.version + 1
                )
            else:
                frozen = shadow.freeze(diff=diff)
            applied = self._pending_updates
            self._pending_updates = 0
            snapshot = IndexSnapshot(
                engine=BatchQueryEngine(frozen),
                version=self._current.version + 1,
                source=(
                    f"publish ({applied} pending updates applied, "
                    f"{patched} vertex labels patched)"
                ),
                generation=generation,
            )
            self._swap(snapshot)
        return snapshot

    def reload(self, path: Union[str, os.PathLike]) -> IndexSnapshot:
        """Load a saved index from disk and publish it as the next snapshot.

        The on-disk archive carries no graph, so the shadow index (if any) is
        left untouched: ``reload`` is the "swap in a freshly rebuilt index"
        operation, while :meth:`insert_edge` + :meth:`publish` is the
        incremental-update operation.
        """
        index = load_index(path)
        with self._write_lock:
            generation = None
            if self._shared:
                _, generation = self._export_generation(
                    lambda backend: export_index_to_backend(
                        index, backend, source=str(path)
                    ),
                    version=self._current.version + 1,
                )
            snapshot = IndexSnapshot(
                engine=BatchQueryEngine(index),
                version=self._current.version + 1,
                source=str(path),
                generation=generation,
            )
            self._swap(snapshot)
        return snapshot

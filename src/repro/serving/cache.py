"""Bounded LRU cache for hot query pairs.

Real distance-query traffic is heavily skewed — a small set of (source,
target) pairs (popular users, trending pages) accounts for a large share of
requests.  The serving layer therefore puts a bounded least-recently-used
cache in front of the batch engine: a hit costs one dictionary lookup instead
of a label merge, and the bound keeps memory constant under adversarial
workloads.

The cache is thread safe (one lock around the ordered dict; operations are
O(1)) and counts hits, misses and evictions so the metrics endpoint can report
the hit rate honestly.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.serving.tracing import Span

__all__ = ["CacheStats", "LRUCache", "cached_query_batch"]


def cached_query_batch(
    engine, cache: Optional["LRUCache"], sources, targets, *, span_sink=None
):
    """Answer one aligned batch through the hot-pair cache (probe-compute-store).

    The one evaluation path every cache-fronted surface shares — the threaded
    server, the asyncio front end and the ``--warm`` replay: probe the cache
    for the whole batch, compute only the misses through
    ``engine.query_batch``, store them back, return the full distance array.
    With ``cache=None`` the engine answers directly.

    ``span_sink`` (a list, or ``None``) collects tracing spans for the batch:
    a ``cache_probe`` span covering the lookup, plus whatever the engine
    appends (``kernel``, or one ``shard`` span per worker).  The engine only
    receives the sink when it advertises ``accepts_span_sink``, so arbitrary
    engine ducks keep working untraced.
    """
    engine_kwargs = {}
    if span_sink is not None and getattr(engine, "accepts_span_sink", False):
        engine_kwargs["span_sink"] = span_sink
    if cache is None:
        return engine.query_batch(sources, targets, **engine_kwargs)
    probe_start = time.perf_counter()
    distances, missing = cache.lookup_batch(sources, targets)
    if span_sink is not None:
        num_missing = int(missing.sum())
        span_sink.append(
            Span(
                "cache_probe",
                time.perf_counter() - probe_start,
                hits=len(sources) - num_missing,
                misses=num_missing,
            )
        )
    if missing.any():
        computed = engine.query_batch(
            sources[missing], targets[missing], **engine_kwargs
        )
        distances[missing] = computed
        cache.store_batch(sources[missing], targets[missing], computed)
    return distances


@dataclass
class CacheStats:
    """Monotonic counters describing cache effectiveness."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of :meth:`LRUCache.get` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when none yet)."""
        if self.hits + self.misses == 0:
            return 0.0
        return self.hits / (self.hits + self.misses)

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary view for the metrics endpoint."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """Bounded least-recently-used map from query pairs to distances.

    Parameters
    ----------
    capacity:
        Maximum number of cached pairs; the least recently *used* (read or
        written) pair is evicted when a new pair would exceed it.
    symmetric:
        Normalise keys so that ``(s, t)`` and ``(t, s)`` share one entry —
        correct for undirected indexes, where distance is symmetric.
    """

    def __init__(self, capacity: int, *, symmetric: bool = True) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = int(capacity)
        self.symmetric = symmetric
        self._entries: "OrderedDict[Tuple[int, int], float]" = OrderedDict()
        self._lock = threading.Lock()
        self._stats = CacheStats()

    def _key(self, s: int, t: int) -> Tuple[int, int]:
        if self.symmetric and t < s:
            return (t, s)
        return (s, t)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, pair: Tuple[int, int]) -> bool:
        """Membership test without touching recency or counters."""
        return self._key(*pair) in self._entries

    @property
    def stats(self) -> CacheStats:
        """The live counter record (hits / misses / evictions)."""
        return self._stats

    def _get_locked(self, key: Tuple[int, int]) -> Optional[float]:
        value = self._entries.get(key)
        if value is None:
            self._stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self._stats.hits += 1
        return value

    def _put_locked(self, key: Tuple[int, int], distance: float) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = distance
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self._stats.evictions += 1
        self._entries[key] = distance

    def get(self, s: int, t: int) -> Optional[float]:
        """Cached distance for ``(s, t)``, or ``None``; updates recency and counters."""
        with self._lock:
            return self._get_locked(self._key(s, t))

    def put(self, s: int, t: int, distance: float) -> None:
        """Insert or refresh ``(s, t) -> distance``, evicting the oldest entry if full."""
        with self._lock:
            self._put_locked(self._key(s, t), distance)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def keys(self) -> List[Tuple[int, int]]:
        """Cached keys from least to most recently used (snapshot copy)."""
        with self._lock:
            return list(self._entries.keys())

    # ------------------------------------------------------------------ #
    # Batch integration
    # ------------------------------------------------------------------ #

    def lookup_batch(
        self, sources: np.ndarray, targets: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Probe the cache for every aligned pair.

        Returns ``(distances, missing)`` where ``distances`` holds the cached
        value for hits (undefined for misses) and ``missing`` marks the pairs
        the caller still has to compute and :meth:`store_batch` back.  The
        lock is taken once for the whole batch, not once per pair.
        """
        num = len(sources)
        distances = np.empty(num, dtype=np.float64)
        missing = np.zeros(num, dtype=bool)
        key = self._key
        with self._lock:
            for i in range(num):
                value = self._get_locked(key(int(sources[i]), int(targets[i])))
                if value is None:
                    missing[i] = True
                else:
                    distances[i] = value
        return distances, missing

    def store_batch(
        self, sources: np.ndarray, targets: np.ndarray, distances: np.ndarray
    ) -> None:
        """Insert every aligned ``(s, t) -> distance`` triple under one lock."""
        key = self._key
        with self._lock:
            for i in range(len(sources)):
                self._put_locked(
                    key(int(sources[i]), int(targets[i])), float(distances[i])
                )

"""Multi-process sharded query serving: the GIL bypass.

However fast :class:`~repro.core.query.BatchQueryKernel` gets, a single
Python process answers queries on one core — numpy releases the GIL only
inside individual vectorised calls, and the per-batch orchestration
serialises everything else.  This module shards query batches across a
persistent pool of *worker processes* instead:

* Every published index snapshot lives in a **named shared-memory
  generation** (:class:`~repro.core.storage.SharedMemoryBackend`, exported by
  :class:`~repro.serving.snapshot.SnapshotManager` or by this module for a
  static index).  Workers attach the generation *by name* and answer query
  shards against read-only views of the very same label arrays — no label
  data is ever pickled or copied per request; only the (tiny) vertex-id
  arrays and results cross the process boundary.
* :class:`ShardedQueryEngine` partitions each incoming batch across the
  pool, concatenates the shard results in order, and folds per-worker
  timings into :class:`~repro.serving.metrics.ServerMetrics`.  Small batches
  are answered inline by the snapshot's single-process engine — forking a
  few hundred pairs across processes costs more than it saves.
* Hot swap works exactly like the single-process path: a worker shard runs
  against the generation it was dispatched with, generations are retired
  refcounted (:class:`~repro.core.storage.SharedGeneration`), and a worker
  attaching a newer generation drops its mappings of the old one.
* The pool is **self-healing**: a worker dying (OOM kill, segfault, stray
  ``SIGKILL``) breaks a ``ProcessPoolExecutor`` permanently, so the engine
  catches :class:`~concurrent.futures.process.BrokenProcessPool` — from a
  query dispatch or from a :meth:`ShardedQueryEngine.ping` health probe —
  rebuilds the pool, and retries; fresh workers re-attach the current
  generation by name on their first shard.  Respawns are counted in
  :class:`~repro.serving.metrics.ServerMetrics` so the dashboard shows a
  flapping pool.

The engine is duck-type compatible with
:class:`~repro.serving.engine.BatchQueryEngine` (``query_batch`` /
``query`` / ``num_vertices`` / ``stats``), so :class:`~repro.serving.server.QueryServer`
and the benchmarks can use either interchangeably.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import CancelledError, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.index import PrunedLandmarkLabeling, validate_vertex_ids
from repro.core.serialization import export_index_to_backend, index_from_backend
from repro.core.storage import SharedGeneration, SharedMemoryBackend
from repro.errors import ServingError
from repro.serving.engine import BatchQueryEngine, EngineStats
from repro.serving.metrics import ServerMetrics
from repro.serving.snapshot import IndexSnapshot, SnapshotManager
from repro.serving.tracing import Span, StructuredLogger

__all__ = ["ShardedQueryEngine", "default_worker_count"]


def default_worker_count() -> int:
    """Default pool size: one worker per available core."""
    return max(os.cpu_count() or 1, 1)


# ---------------------------------------------------------------------- #
# Worker-process side
# ---------------------------------------------------------------------- #

#: Per-worker attachment cache: the one generation this worker currently
#: serves.  Keyed access is by generation name; attaching a newer generation
#: drops the previous mapping (the parent has usually already unlinked its
#: names — the memory itself stays valid until this close).
_ATTACHED: Dict[str, object] = {}


def _attached_index(generation_name: str) -> PrunedLandmarkLabeling:
    """Return this worker's index for ``generation_name``, attaching on demand."""
    if _ATTACHED.get("name") == generation_name:
        return _ATTACHED["index"]
    backend = SharedMemoryBackend.attach(generation_name)
    # index_from_backend re-runs kernel-backend selection in *this* process
    # (adopting the generation's stored dtype plan and narrow arrays), so a
    # heterogeneous pool — numba importable in some workers only — degrades
    # per-process to the best backend each worker actually has.
    index = index_from_backend(backend)
    previous = _ATTACHED.pop("backend", None)
    _ATTACHED.pop("index", None)
    _ATTACHED["name"] = generation_name
    _ATTACHED["index"] = index
    _ATTACHED["backend"] = backend
    if previous is not None:
        previous.close()
    return index


def _worker_query_shard(
    generation_name: str, sources: np.ndarray, targets: np.ndarray
) -> Tuple[int, float, np.ndarray]:
    """Answer one shard against the named generation; returns ``(pid, seconds, distances)``."""
    index = _attached_index(generation_name)
    start = time.perf_counter()
    result = index.distance_batch(sources, targets)
    return os.getpid(), time.perf_counter() - start, result


def _worker_warmup(delay: float) -> int:
    """Pool warm-up task: occupy a worker briefly so every process forks early.

    Forking all workers at engine construction (before the serving threads
    start) sidesteps fork-under-threads hazards and moves the process
    start-up cost out of the first request's latency.
    """
    time.sleep(delay)
    return os.getpid()


# ---------------------------------------------------------------------- #
# Parent side
# ---------------------------------------------------------------------- #


class ShardedQueryEngine:
    """Partition query batches across worker processes sharing one snapshot.

    Parameters
    ----------
    backend:
        Either a :class:`~repro.serving.snapshot.SnapshotManager` constructed
        with ``shared=True`` (hot-swap serving: every published generation is
        picked up automatically), or a built/loaded index or
        :class:`~repro.serving.engine.BatchQueryEngine` (static serving: the
        engine exports one generation itself).
    num_workers:
        Worker processes in the persistent pool (default: one per core).
    min_shard_size:
        Target pairs per worker shard; a batch is split into at most
        ``ceil(len / min_shard_size)`` shards so tiny batches are not
        scattered across the pool.
    local_threshold:
        Batches at or below this size skip the pool entirely and are
        answered by the snapshot's in-process engine.
    shard_timeout:
        Seconds to wait for any one shard before declaring the pool wedged.
    metrics:
        Optional :class:`~repro.serving.metrics.ServerMetrics`; per-worker
        shard timings are folded into it (``observe_shard``).
    logger:
        Optional :class:`~repro.serving.tracing.StructuredLogger`; pool
        respawns are emitted as ``worker_pool_respawn`` events.

    Use as a context manager or call :meth:`close` to shut the pool down and
    release engine-owned generations.
    """

    #: Duck-typed capability flag (see :class:`BatchQueryEngine`): the cache
    #: layer and batchers pass ``span_sink`` only to engines advertising it.
    accepts_span_sink = True

    def __init__(
        self,
        backend: Union[SnapshotManager, BatchQueryEngine, PrunedLandmarkLabeling],
        *,
        num_workers: Optional[int] = None,
        min_shard_size: int = 512,
        local_threshold: int = 64,
        shard_timeout: Optional[float] = 60.0,
        metrics: Optional[ServerMetrics] = None,
        logger: Optional[StructuredLogger] = None,
    ) -> None:
        self._num_workers = int(num_workers) if num_workers else default_worker_count()
        if self._num_workers < 1:
            raise ServingError("num_workers must be at least 1")
        self._min_shard_size = max(int(min_shard_size), 1)
        self._local_threshold = int(local_threshold)
        self._shard_timeout = shard_timeout
        self._metrics = metrics
        self._logger = logger
        self._stats = EngineStats()
        self._stats_lock = threading.Lock()
        self._worker_seconds: Dict[int, float] = {}
        self._closed = False
        self._respawn_lock = threading.Lock()
        self._num_respawns = 0

        self._manager: Optional[SnapshotManager] = None
        self._static_snapshot: Optional[IndexSnapshot] = None
        self._own_generation: Optional[SharedGeneration] = None
        if isinstance(backend, SnapshotManager):
            if not backend.shared:
                raise ServingError(
                    "ShardedQueryEngine needs a SnapshotManager constructed "
                    "with shared=True (its snapshots must live in named "
                    "shared memory for workers to attach)"
                )
            self._manager = backend
        else:
            engine = (
                backend
                if isinstance(backend, BatchQueryEngine)
                else BatchQueryEngine(backend)
            )
            shared = SharedMemoryBackend.create()
            try:
                export_index_to_backend(engine.index, shared, source="sharded engine")
            except BaseException:
                # A half-written export must not strand segments in /dev/shm.
                shared.unlink()
                raise
            self._own_generation = SharedGeneration(shared)
            self._static_snapshot = IndexSnapshot(
                engine=engine,
                version=1,
                source="static sharded engine",
                generation=self._own_generation,
            )

        try:
            self._pool = self._create_pool()
        except BaseException:
            # Pool creation failing (fork EAGAIN, memory pressure) must not
            # strand the generation this engine just exported.
            if self._own_generation is not None:
                self._own_generation.retire()
            raise

    def _create_pool(self) -> ProcessPoolExecutor:
        """Fork a fully warmed pool (see :func:`_worker_warmup`)."""
        pool = ProcessPoolExecutor(max_workers=self._num_workers)
        wait([pool.submit(_worker_warmup, 0.05) for _ in range(self._num_workers)])
        return pool

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def snapshot_manager(self) -> Optional[SnapshotManager]:
        """The backing snapshot manager, when hot swap is enabled."""
        return self._manager

    @property
    def num_workers(self) -> int:
        """Size of the worker pool."""
        return self._num_workers

    @property
    def index(self) -> PrunedLandmarkLabeling:
        """The current snapshot's underlying index."""
        return self._current_snapshot().index

    @property
    def num_vertices(self) -> int:
        """Number of vertices served by the current snapshot."""
        return self._current_snapshot().engine.num_vertices

    @property
    def stats(self) -> EngineStats:
        """Cumulative batch accounting (live object)."""
        return self._stats

    def kernel_info(self) -> Dict[str, object]:
        """Kernel-backend selection of the parent's inline engine.

        Workers re-select on attach and may differ per process; this reports
        the parent-side decision (the one small batches are answered with).
        """
        return self._current_snapshot().engine.kernel_info()

    @property
    def kernel_name(self) -> str:
        """Name of the parent-side selected kernel backend (metrics label)."""
        try:
            return str(self.kernel_info().get("selected", "unknown"))
        except Exception:
            return "unknown"

    def worker_seconds(self) -> Dict[int, float]:
        """Cumulative busy seconds per worker pid (copy)."""
        with self._stats_lock:
            return dict(self._worker_seconds)

    @property
    def num_respawns(self) -> int:
        """How many times the worker pool has been rebuilt after breaking."""
        with self._respawn_lock:
            return self._num_respawns

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has torn the engine down."""
        with self._respawn_lock:
            return self._closed

    def _current_snapshot(self) -> IndexSnapshot:
        if self._manager is not None:
            return self._manager.current
        assert self._static_snapshot is not None
        return self._static_snapshot

    # ------------------------------------------------------------------ #
    # Worker health
    # ------------------------------------------------------------------ #

    def _respawn_pool(self, broken: ProcessPoolExecutor) -> None:
        """Replace ``broken`` with a freshly forked pool (once per breakage).

        Concurrent callers may observe the same broken pool; the identity
        check under the lock makes sure only the first rebuilds it — the
        rest return immediately and retry on the replacement.  Fresh workers
        carry no attachment cache, so their first shard re-attaches the
        current generation by name (:func:`_attached_index`).
        """
        with self._respawn_lock:
            if self._pool is not broken or self._closed:
                return
            broken.shutdown(wait=False, cancel_futures=True)
            self._pool = self._create_pool()
            self._num_respawns += 1
            num_respawns = self._num_respawns
        if self._metrics is not None:
            self._metrics.observe_worker_respawn()
        if self._logger is not None:
            self._logger.event(
                "worker_pool_respawn",
                num_respawns=num_respawns,
                num_workers=self._num_workers,
            )

    def ping(self) -> List[int]:
        """Probe every pool worker; respawn the pool if it is broken.

        Dispatches one occupy-a-worker task per pool slot (the same trick as
        the construction warm-up, so the probes land on distinct workers) and
        returns the responding pids.  A dead worker surfaces as
        :class:`BrokenProcessPool`; the pool is rebuilt once and re-probed,
        so a successful return always describes a healthy pool.  Intended to
        be called periodically (the async front end does) as well as ad hoc.
        """
        if self.closed:
            raise ServingError("sharded engine has been closed")
        for attempt in (0, 1):
            # Optimistic unlocked pool grab: taking _respawn_lock here would
            # serialise every probe behind a pool rebuild; instead a stale
            # handle surfaces as BrokenProcessPool/RuntimeError and retries.
            pool = self._pool  # reprolint: disable=RL001
            try:
                futures = [
                    pool.submit(_worker_warmup, 0.02)
                    for _ in range(self._num_workers)
                ]
                return sorted(
                    {future.result(timeout=self._shard_timeout) for future in futures}
                )
            except BrokenProcessPool:
                if attempt:
                    raise ServingError(
                        "sharded worker pool broke again immediately after a "
                        "respawn"
                    ) from None
                self._respawn_pool(pool)
            except (RuntimeError, CancelledError):
                # A concurrent caller respawned the pool underneath this
                # probe (see query_batch); re-probe the replacement.  The
                # unlocked identity check is the optimistic-retry protocol.
                if pool is self._pool or attempt:  # reprolint: disable=RL001
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def query(self, s: int, t: int) -> float:
        """Scalar convenience query (answered inline, not via the pool)."""
        return float(self.query_batch([s], [t])[0])

    def query_batch(
        self,
        sources: Sequence[int],
        targets: Sequence[int],
        *,
        span_sink: Optional[List[Span]] = None,
    ) -> np.ndarray:
        """Exact distances for aligned ``sources[i], targets[i]`` pairs.

        Bit-identical to the single-process engine: the batch is split into
        contiguous shards, each answered by a worker process against the
        current shared-memory generation, and re-concatenated in order.  A
        batch that lands on a broken pool (a worker died) respawns the pool
        and retries once on the fresh workers.

        When the caller passes a ``span_sink`` list, the worker-side shard
        timings come back stitched into it as one ``shard`` span per worker
        dispatch (attributes: worker pid, shard pair count) — or a single
        ``kernel`` span when the batch was answered inline — so a parent
        request trace shows exactly where a sharded batch spent its time.
        """
        if self.closed:
            raise ServingError("sharded engine has been closed")
        sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
        targets = np.atleast_1d(np.asarray(targets, dtype=np.int64))
        if sources.shape != targets.shape:
            raise ValueError("sources and targets must have the same length")
        start = time.perf_counter()
        num_pairs = int(sources.shape[0])

        for attempt in (0, 1):
            # Same optimistic-retry protocol as ping(): never serialise the
            # hot batch path behind _respawn_lock; a stale pool handle fails
            # fast and the loop retries on the replacement.
            pool = self._pool  # reprolint: disable=RL001
            snapshot, generation = self._acquire_snapshot()
            try:
                validate_vertex_ids(sources, snapshot.engine.num_vertices)
                validate_vertex_ids(targets, snapshot.engine.num_vertices)
                num_shards = min(
                    self._num_workers, -(-num_pairs // self._min_shard_size)
                )
                if num_pairs <= self._local_threshold or num_shards <= 1:
                    result = snapshot.engine.query_batch(
                        sources, targets, span_sink=span_sink
                    )
                    self._record(num_pairs, time.perf_counter() - start, [])
                    return result
                try:
                    futures = [
                        pool.submit(
                            _worker_query_shard, generation.name, shard_s, shard_t
                        )
                        for shard_s, shard_t in zip(
                            np.array_split(sources, num_shards),
                            np.array_split(targets, num_shards),
                        )
                    ]
                    shards = []
                    worker_timings = []
                    for future in futures:
                        pid, seconds, distances = future.result(
                            timeout=self._shard_timeout
                        )
                        worker_timings.append(
                            (pid, int(distances.shape[0]), seconds)
                        )
                        shards.append(distances)
                except BrokenProcessPool:
                    if attempt:
                        raise ServingError(
                            "sharded worker pool broke again immediately "
                            "after a respawn"
                        ) from None
                    self._respawn_pool(pool)
                    continue
                except (RuntimeError, CancelledError):
                    # Submitting to — or awaiting futures of — a pool a
                    # concurrent caller (another batch, a health ping) already
                    # shut down and respawned; retry on the replacement.  If
                    # the pool was not replaced, the error is genuine.  The
                    # unlocked identity check is the optimistic-retry protocol.
                    if pool is self._pool or attempt:  # reprolint: disable=RL001
                        raise
                    continue
            finally:
                generation.release()
            result = np.concatenate(shards)
            if span_sink is not None:
                for pid, shard_pairs, shard_seconds in worker_timings:
                    span_sink.append(
                        Span("shard", shard_seconds, worker=pid, pairs=shard_pairs)
                    )
            self._record(num_pairs, time.perf_counter() - start, worker_timings)
            return result
        raise AssertionError("unreachable")  # pragma: no cover

    def query_one_to_many(
        self,
        source: int,
        targets: Optional[Sequence[int]] = None,
        *,
        span_sink: Optional[List[Span]] = None,
    ) -> np.ndarray:
        """Distances from ``source`` to ``targets`` (all when ``None``).

        Answered inline on the parent-side engine: a one-to-many fan-out is a
        single kernel call whose work scales with the label scan, so carving
        it into worker shards would only pay the dispatch overhead twice.
        """
        if self.closed:
            raise ServingError("sharded engine has been closed")
        return self._current_snapshot().engine.query_one_to_many(
            source, targets, span_sink=span_sink
        )

    def _acquire_snapshot(self) -> Tuple[IndexSnapshot, SharedGeneration]:
        """Grab the current snapshot with its generation pinned for reading.

        A publisher may retire-and-unlink the generation between the
        snapshot read and the acquire; the swap installs the successor
        first, so re-reading ``current`` always terminates.
        """
        for _ in range(1024):
            snapshot = self._current_snapshot()
            generation = snapshot.generation
            if generation is None:
                raise ServingError(
                    "snapshot carries no shared-memory generation; construct "
                    "the SnapshotManager with shared=True"
                )
            if generation.acquire():
                return snapshot, generation
        raise ServingError(
            "could not pin a live snapshot generation"
        )  # pragma: no cover - would need a pathological publish storm

    def _record(self, num_pairs, seconds, worker_timings) -> None:
        with self._stats_lock:
            self._stats.observe(num_pairs, seconds)
            for pid, _, shard_seconds in worker_timings:
                self._worker_seconds[pid] = (
                    self._worker_seconds.get(pid, 0.0) + shard_seconds
                )
        if self._metrics is not None:
            for pid, shard_pairs, shard_seconds in worker_timings:
                self._metrics.observe_shard(pid, shard_pairs, shard_seconds)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Shut the pool down and release engine-owned shared memory.

        Generations owned by a backing :class:`SnapshotManager` are the
        manager's to retire (call its ``close``); this only tears down what
        the engine itself created.
        """
        # The lock serialises close against a concurrent respawn, so the pool
        # being shut down is always the live one.
        with self._respawn_lock:
            if self._closed:
                return
            self._closed = True
            pool = self._pool
        pool.shutdown(wait=True, cancel_futures=True)
        if self._own_generation is not None:
            self._own_generation.retire()

    def __enter__(self) -> "ShardedQueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Batched query engine: the serving-path wrapper around a built index.

The paper's query algorithm is microsecond-scale in C++; under the Python
interpreter the same per-pair code is dominated by interpreter and numpy
dispatch overhead.  The engine recovers the lost throughput by answering many
``(s, t)`` pairs per call through the vectorised
:class:`~repro.core.query.BatchQueryKernel` (plus the batched bit-parallel
test), and it keeps per-batch latency/throughput accounting so the serving
layer can report honest QPS and tail-latency numbers.

The engine is *read only* and therefore trivially safe to share between
threads: it never mutates the underlying index, and its counters are updated
under a lock.  Writable state lives behind
:class:`~repro.serving.snapshot.SnapshotManager`, which publishes a fresh
engine per index version.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.index import PrunedLandmarkLabeling, validate_vertex_ids
from repro.serving.tracing import Span

__all__ = ["EngineStats", "BatchQueryEngine"]


@dataclass
class EngineStats:
    """Cumulative batch accounting for one engine."""

    num_batches: int = 0
    num_queries: int = 0
    #: Total time spent inside :meth:`BatchQueryEngine.query_batch`, seconds.
    total_seconds: float = 0.0
    #: Recent per-batch wall-clock latencies in seconds (bounded window).
    recent_batch_seconds: List[float] = field(default_factory=list, repr=False)

    @property
    def queries_per_second(self) -> float:
        """Average throughput over every batch so far."""
        if self.total_seconds <= 0.0:
            return 0.0
        return self.num_queries / self.total_seconds

    @property
    def average_batch_size(self) -> float:
        """Mean number of pairs per batch."""
        if self.num_batches == 0:
            return 0.0
        return self.num_queries / self.num_batches

    def observe(self, num_queries: int, seconds: float, *, window: int = 4096) -> None:
        """Record one batch and trim the recent-latency window to ``window``.

        Not thread safe on its own; callers that share stats across threads
        (the engine) hold their own lock around it.
        """
        self.num_batches += 1
        self.num_queries += num_queries
        self.total_seconds += seconds
        recent = self.recent_batch_seconds
        recent.append(seconds)
        if len(recent) > window:
            del recent[: len(recent) - window]

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary view for the metrics endpoint."""
        return {
            "num_batches": self.num_batches,
            "num_queries": self.num_queries,
            "total_seconds": self.total_seconds,
            "queries_per_second": self.queries_per_second,
            "average_batch_size": self.average_batch_size,
        }


class BatchQueryEngine:
    """Vectorised many-pairs-per-call front end over a built index.

    Parameters
    ----------
    index:
        A built (or loaded) :class:`~repro.core.index.PrunedLandmarkLabeling`.
    chunk_size:
        Pairs evaluated per vectorised pass; bounds temporary-array memory on
        very large batches without affecting results.
    stats_window:
        Number of recent per-batch latencies retained for percentile
        reporting.

    Examples
    --------
    >>> from repro import build_index
    >>> from repro.generators import barabasi_albert_graph
    >>> from repro.serving import BatchQueryEngine
    >>> graph = barabasi_albert_graph(500, 3, seed=1)
    >>> engine = BatchQueryEngine(build_index(graph))
    >>> engine.query_batch([0, 1, 2], [499, 498, 497]).shape
    (3,)
    """

    #: Duck-typed capability flag: callers (the cache layer, the batchers)
    #: check this instead of isinstance so engine wrappers stay decoupled.
    accepts_span_sink = True

    def __init__(
        self,
        index: PrunedLandmarkLabeling,
        *,
        chunk_size: int = 65536,
        stats_window: int = 4096,
    ) -> None:
        if not index.built:
            raise ValueError("BatchQueryEngine requires a built index")
        self._index = index
        # Pay the one-off kernel construction now, not on the first request.
        index.prepare_batch_kernel()
        self._chunk_size = int(chunk_size)
        self._stats_window = int(stats_window)
        self._stats = EngineStats()
        self._stats_lock = threading.Lock()
        self._kernel_name: Optional[str] = None

    @property
    def index(self) -> PrunedLandmarkLabeling:
        """The wrapped (read-only) index."""
        return self._index

    @property
    def num_vertices(self) -> int:
        """Number of vertices served by the engine."""
        return self._index.label_set.num_vertices

    @property
    def stats(self) -> EngineStats:
        """Cumulative batch accounting (live object)."""
        return self._stats

    def kernel_info(self) -> Dict[str, object]:
        """How the batch-kernel backend was selected for this engine's index.

        Keys: ``requested`` / ``selected`` / ``fallback`` / ``reason`` (the
        :class:`~repro.core.kernels.base.KernelSelection` record) plus the
        per-generation ``narrow`` dtype decision.  Surfaced as a structured
        log event at serve time and as the ``/metrics`` kernel info gauge.
        """
        kernel = self._index.prepare_batch_kernel()
        info = kernel.selection.as_dict()
        info["narrow"] = kernel.plan.narrow
        return info

    @property
    def kernel_name(self) -> str:
        """Name of the selected batch-kernel backend (cached after first use).

        The cheap label the metrics layer stamps on per-verb kernel-op
        counters; :meth:`kernel_info` has the full selection record.
        """
        if self._kernel_name is None:
            try:
                self._kernel_name = str(self.kernel_info().get("selected", "unknown"))
            except Exception:
                return "unknown"
        return self._kernel_name

    def query(self, s: int, t: int) -> float:
        """Scalar convenience query (same result as ``index.distance``)."""
        return float(self.query_batch([s], [t])[0])

    def query_batch(
        self,
        sources: Sequence[int],
        targets: Sequence[int],
        *,
        span_sink: Optional[List[Span]] = None,
    ) -> np.ndarray:
        """Exact distances for aligned ``sources[i], targets[i]`` pairs.

        Bit-identical to a loop of ``index.distance`` calls, but evaluated in
        a handful of vectorised passes.  Each call is timed and recorded in
        :attr:`stats`; when the caller passes a ``span_sink`` list, a
        ``kernel`` tracing span for the evaluation is appended to it.
        """
        start = time.perf_counter()
        result = self._index.distance_batch(
            sources, targets, chunk_size=self._chunk_size
        )
        elapsed = time.perf_counter() - start
        with self._stats_lock:
            self._stats.observe(
                int(result.shape[0]), elapsed, window=self._stats_window
            )
        if span_sink is not None:
            span_sink.append(Span("kernel", elapsed, pairs=int(result.shape[0])))
        return result

    def query_pairs(self, pairs: Iterable[Tuple[int, int]]) -> np.ndarray:
        """Batch query over an iterable of ``(s, t)`` pairs."""
        pair_list = list(pairs)
        if not pair_list:
            return np.empty(0, dtype=np.float64)
        pair_array = np.asarray(pair_list, dtype=np.int64)
        return self.query_batch(pair_array[:, 0], pair_array[:, 1])

    def query_one_to_many(
        self,
        source: int,
        targets: Optional[Sequence[int]] = None,
        *,
        span_sink: Optional[List[Span]] = None,
    ) -> np.ndarray:
        """Exact distances from ``source`` to ``targets`` (all when ``None``).

        The kernel layer's one-to-many entry point, previously reachable only
        through the core API: one scatter of the source label amortises the
        evaluation across every target.  Validated, timed and recorded like
        :meth:`query_batch` (each evaluated target counts as one query);
        results are bit-identical to per-pair :meth:`query` calls.
        """
        num_vertices = self.num_vertices
        validate_vertex_ids(np.asarray([source], dtype=np.int64), num_vertices)
        if targets is not None:
            targets = np.asarray(list(targets), dtype=np.int64)
            validate_vertex_ids(targets, num_vertices)
        start = time.perf_counter()
        result = self._index.distances_from(source, targets)
        elapsed = time.perf_counter() - start
        with self._stats_lock:
            self._stats.observe(
                int(result.shape[0]), elapsed, window=self._stats_window
            )
        if span_sink is not None:
            span_sink.append(Span("kernel", elapsed, pairs=int(result.shape[0])))
        return result

"""Serving metrics: QPS, latency histograms and percentiles, cache hit rate.

Production query services are judged by throughput and *tail* latency — the
P99 a heavy user actually experiences — not by the mean.  This module keeps a
bounded ring buffer of recent request latencies and derives the standard
serving dashboard from it: queries per second, P50/P95/P99, batch shape and
cache effectiveness.  On top of the point-in-time percentile gauges it keeps
true fixed-bucket :class:`Histogram`\\ s — one for end-to-end latency, one per
pipeline stage (queue wait, coalescing window, kernel, cache probe) — because
gauges sampled at scrape time cannot be aggregated across instances or
windows, while histogram ``_bucket``/``_sum``/``_count`` series can
(``histogram_quantile`` in PromQL).  Everything is stdlib + numpy and cheap
enough to update on every batch.

Three renderings of the same snapshot cover every consumer: :meth:`ServerMetrics.render`
(human-readable), :meth:`ServerMetrics.render_json` (the ``stats json`` wire
reply) and :func:`render_prometheus_text` (the text exposition format served
on the async front end's ``GET /metrics`` admin endpoint, scrapeable by
Prometheus).
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.obs import names
from repro.obs.resources import process_resource_stats
from repro.serving.cache import CacheStats

__all__ = [
    "Histogram",
    "LatencyWindow",
    "ServerMetrics",
    "index_health_stats",
    "render_prometheus_text",
    "validate_prometheus_exposition",
]

#: Percentiles reported by default (the usual serving dashboard trio).
DEFAULT_PERCENTILES = (50.0, 95.0, 99.0)

#: Default latency histogram buckets in **seconds**: 100 µs to 2.5 s, roughly
#: logarithmic — wide enough to cover a cache hit and a wedged shard alike.
DEFAULT_LATENCY_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)

#: Stage names tracked per request/batch; each becomes a
#: ``<prefix>_stage_<name>_seconds`` histogram on ``/metrics``.
STAGE_NAMES = ("queue", "batch", "kernel", "cache_probe")

#: Monotone snapshot keys → Prometheus ``counter`` type (everything else is a
#: ``gauge``).  Lives in the shared name registry (``repro.obs.names``) since
#: PR 10; re-exported here for existing importers.
PROMETHEUS_COUNTERS = names.PROMETHEUS_COUNTERS

#: Help strings for the best-known snapshot keys; anything else gets a
#: generated fallback so the exposition stays self-describing.  Moved to the
#: shared name registry alongside the names themselves.
_PROMETHEUS_HELP = names.METRIC_HELP


class Histogram:
    """Fixed-bucket histogram matching Prometheus semantics.

    Buckets are upper bounds in seconds; an observation lands in the first
    bucket whose bound is >= the value (plus the implicit ``+Inf`` bucket).
    Counts are kept per bucket (non-cumulative) so :meth:`observe` is a bisect
    and an increment; the cumulative ``_bucket`` series is derived at
    :meth:`snapshot` time.  Not thread safe on its own — callers
    (:class:`ServerMetrics`) hold their lock around it, the same contract as
    :class:`LatencyWindow`.
    """

    __slots__ = ("_bounds", "_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b <= 0 for b in bounds):
            raise ValueError("histogram bucket bounds must be positive")
        self._bounds = bounds
        # One slot per finite bucket plus the +Inf overflow slot.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    @property
    def count(self) -> int:
        """Total observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values (seconds)."""
        return self._sum

    def observe(self, value: float) -> None:
        """Record one observation (seconds)."""
        self._counts[bisect_left(self._bounds, value)] += 1
        self._sum += value
        self._count += 1

    def observe_many(self, values: Sequence[float]) -> None:
        """Record several observations under one call."""
        for value in values:
            self.observe(value)

    def snapshot(self) -> Dict[str, object]:
        """Cumulative-bucket view: ``{"buckets": [[le, cum], ...], "sum", "count"}``.

        ``buckets`` covers the finite bounds only; the ``+Inf`` bucket is by
        definition equal to ``count`` and is emitted by the renderer.
        """
        cumulative: List[List[float]] = []
        running = 0
        for bound, bucket_count in zip(self._bounds, self._counts):
            running += bucket_count
            cumulative.append([bound, running])
        return {"buckets": cumulative, "sum": self._sum, "count": self._count}


def _prometheus_number(value: float) -> str:
    """Render one sample value in the exposition grammar (incl. +Inf/NaN)."""
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if math.isnan(number):
        return "NaN"
    if number == int(number) and abs(number) < 2**53:
        return str(int(number))
    return repr(number)


def render_prometheus_text(
    stats: Mapping[str, object], *, prefix: str = "repro_pll"
) -> str:
    """Render one :meth:`ServerMetrics.snapshot` dictionary as Prometheus text.

    Produces the `text exposition format
    <https://prometheus.io/docs/instrumenting/exposition_formats/>`_ (version
    0.0.4): ``# HELP`` / ``# TYPE`` comment pairs followed by one sample per
    metric, all names prefixed with ``prefix``.  The nested per-worker
    breakdown (the ``workers`` key) becomes labelled series —
    ``<prefix>_worker_queries{worker="<pid>"}`` and friends — so a skewed or
    respawned pool is visible to the scraper; the nested ``histograms`` key
    becomes true histogram exposition (``_bucket`` series per ``le`` bound
    plus ``_sum``/``_count``); a ``generation_name`` string becomes an
    info-style gauge (``<prefix>_generation_info{name="..."} 1``); an
    ``alerts`` list from the health engine becomes the conventional
    *unprefixed* ``ALERTS{alertname=...,severity=...,alertstate=...} 1``
    series Prometheus itself exports for active alerts.  Other non-numeric
    values are skipped.
    """
    lines = []

    def emit(name: str, value: float, kind: str, help_text: str, labels: str = "") -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name}{labels} {_prometheus_number(value)}")

    workers = stats.get("workers")
    histograms = stats.get("histograms")
    generation_name = stats.get("generation_name")
    verbs = stats.get("verbs")
    kernel_ops = stats.get("kernel_ops")
    alerts = stats.get("alerts")
    for key in sorted(stats):
        if key in ("workers", "histograms", "generation_name", "verbs", "kernel_ops", "alerts"):
            continue
        value = stats[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        name = f"{prefix}_{key}"
        kind = "counter" if key in PROMETHEUS_COUNTERS else "gauge"
        help_text = _PROMETHEUS_HELP.get(key, f"Serving statistic {key}.")
        emit(name, value, kind, help_text)
    if isinstance(alerts, Sequence) and alerts:
        name = names.ALERTS_SERIES
        lines.append(f"# HELP {name} Active alert instances from the serving health engine.")
        lines.append(f"# TYPE {name} gauge")
        for alert in sorted(
            (entry for entry in alerts if isinstance(entry, Mapping)),
            key=lambda entry: str(entry.get("alertname", "")),
        ):
            alertname = alert.get("alertname", "")
            severity = alert.get("severity", "")
            alertstate = alert.get("alertstate", "")
            lines.append(
                f'{name}{{alertname="{alertname}",severity="{severity}"'
                f',alertstate="{alertstate}"}} 1'
            )
    if isinstance(generation_name, str) and generation_name:
        emit(
            f"{prefix}_{names.GENERATION_INFO}",
            1,
            "gauge",
            "Identity of the shared-memory generation backing the snapshot.",
            labels=f'{{name="{generation_name}"}}',
        )
    kernel_name = stats.get("kernel_name")
    if isinstance(kernel_name, str) and kernel_name:
        requested = stats.get("kernel_requested")
        labels = f'kernel="{kernel_name}"'
        if isinstance(requested, str) and requested:
            labels += f',requested="{requested}"'
        emit(
            f"{prefix}_{names.KERNEL_INFO}",
            1,
            "gauge",
            "Kernel backend serving batch queries (selected vs requested).",
            labels="{" + labels + "}",
        )
    if isinstance(verbs, Mapping) and verbs:
        name = f"{prefix}_{names.VERB_QUERIES_TOTAL}"
        lines.append(f"# HELP {name} Query pairs answered, broken down by wire verb.")
        lines.append(f"# TYPE {name} counter")
        for verb in sorted(verbs):
            lines.append(
                f'{name}{{verb="{verb}"}} {_prometheus_number(verbs[verb])}'
            )
    if isinstance(kernel_ops, Mapping) and kernel_ops:
        name = f"{prefix}_{names.KERNEL_OP_QUERIES_TOTAL}"
        lines.append(
            f"# HELP {name} Query pairs evaluated, broken down by kernel backend and operation."
        )
        lines.append(f"# TYPE {name} counter")
        for kernel, ops in sorted(kernel_ops.items()):
            if not isinstance(ops, Mapping):
                continue
            for op in sorted(ops):
                lines.append(
                    f'{name}{{kernel="{kernel}",op="{op}"}} '
                    f"{_prometheus_number(ops[op])}"
                )
    if isinstance(histograms, Mapping):
        for hist_key in sorted(histograms):
            hist = histograms[hist_key]
            if not isinstance(hist, Mapping):
                continue
            name = f"{prefix}_{hist_key}"
            help_text = _PROMETHEUS_HELP.get(hist_key, f"Latency histogram {hist_key}.")
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} histogram")
            for bound, cumulative in hist.get("buckets", ()):
                lines.append(
                    f'{name}_bucket{{le="{_prometheus_number(bound)}"}} '
                    f"{_prometheus_number(cumulative)}"
                )
            count = hist.get("count", 0)
            lines.append(f'{name}_bucket{{le="+Inf"}} {_prometheus_number(count)}')
            lines.append(f"{name}_sum {_prometheus_number(hist.get('sum', 0.0))}")
            lines.append(f"{name}_count {_prometheus_number(count)}")
    if isinstance(workers, Mapping) and workers:
        per_worker = {
            "num_shards": ("shards", "counter", "Batch shards evaluated by this worker."),
            names.NUM_QUERIES: ("queries", "counter", "Query pairs answered by this worker."),
            # busy_seconds only ever accumulates — a counter, so PromQL
            # rate() works on it (it was previously mistyped as a gauge).
            names.FIELD_BUSY_SECONDS: (
                names.FIELD_BUSY_SECONDS,
                "counter",
                "Cumulative evaluation seconds in this worker.",
            ),
        }
        for field_name, (suffix, kind, help_text) in per_worker.items():
            name = f"{prefix}_worker_{suffix}"
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for worker in sorted(workers):
                counters = workers[worker]
                if field_name not in counters:
                    continue
                lines.append(
                    f'{name}{{worker="{worker}"}} '
                    f"{_prometheus_number(counters[field_name])}"
                )
    return "\n".join(lines) + "\n"


#: One exposition sample line: ``name{labels} value`` with a Go-style number.
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? "
    r"([-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|[-+]?Inf|NaN)$"
)


def validate_prometheus_exposition(body: str) -> Dict[str, float]:
    """Parse a Prometheus text-exposition body, asserting it is well formed.

    Every line must be a ``# HELP`` / ``# TYPE`` comment or a sample matching
    the exposition grammar.  Returns the label-free samples as a dict.

    Promoted here from ``benchmarks/bench_async.py`` so the benchmark, the
    metrics tests and ``repro-pll bench scrape`` all validate the exposition
    with the same grammar.
    """
    samples: Dict[str, float] = {}
    if not body.endswith("\n"):
        raise AssertionError("exposition must end with a newline")
    for line in body.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            if not (line.startswith("# HELP ") or line.startswith("# TYPE ")):
                raise AssertionError(f"unexpected comment line: {line!r}")
            continue
        if not _SAMPLE_RE.match(line):
            raise AssertionError(f"invalid exposition sample: {line!r}")
        name, _, value = line.partition(" ")
        if "{" not in name:
            samples[name] = float(value)
    if not samples:
        raise AssertionError("exposition contained no samples")
    return samples


class LatencyWindow:
    """Fixed-capacity ring buffer of recent latency observations (seconds)."""

    def __init__(self, capacity: int = 8192) -> None:
        if capacity <= 0:
            raise ValueError("latency window capacity must be positive")
        self._buffer = np.zeros(capacity, dtype=np.float64)
        self._next = 0
        self._count = 0

    def __len__(self) -> int:
        return min(self._count, self._buffer.shape[0])

    def record(self, seconds: float) -> None:
        """Append one observation, overwriting the oldest when full."""
        self._buffer[self._next] = seconds
        self._next = (self._next + 1) % self._buffer.shape[0]
        self._count += 1

    def values(self) -> np.ndarray:
        """The retained observations (unordered copy)."""
        if self._count >= self._buffer.shape[0]:
            return self._buffer.copy()
        return self._buffer[: self._count].copy()

    def percentiles(
        self, qs: Sequence[float] = DEFAULT_PERCENTILES
    ) -> Dict[str, float]:
        """Latency percentiles in **milliseconds**, keyed ``"p50"``/``"p95"``/...

        Returns zeros when nothing has been recorded yet.
        """
        values = self.values()
        if values.shape[0] == 0:
            return {f"p{q:g}": 0.0 for q in qs}
        points = np.percentile(values, qs) * 1000.0
        return {f"p{q:g}": float(p) for q, p in zip(qs, points)}


class ServerMetrics:
    """Aggregated serving statistics, safe to update and read across threads.

    Lock discipline (checked by reprolint RL001) — all mutable state belongs
    to ``_lock``, including the two containers only ever touched through
    method calls, which the checker cannot infer from writes:

        _latencies: guarded-by _lock
        _workers: guarded-by _lock
        _verbs: guarded-by _lock
        _kernel_ops: guarded-by _lock

    ``_histograms`` is deliberately *not* guarded: the dict is fully built in
    ``__init__`` and never mutated afterwards, so the hot-path reads
    (:attr:`has_histograms`, the :meth:`observe_stages` early-out) are safe
    without the lock; only the ``Histogram`` objects inside it mutate, under
    ``_lock``.

    Parameters
    ----------
    window:
        Capacity of the recent-latency ring buffer behind the percentile
        gauges.
    histogram_buckets:
        Bucket bounds (seconds) for the end-to-end and per-stage latency
        histograms; ``None`` disables histograms entirely (the no-op
        configuration the overhead benchmark measures against).
    """

    def __init__(
        self,
        *,
        window: int = 8192,
        histogram_buckets: Optional[Sequence[float]] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        self._lock = threading.Lock()
        self._latencies = LatencyWindow(window)
        self._started = time.perf_counter()
        self._num_requests = 0
        self._num_batches = 0
        self._num_queries = 0
        self._busy_seconds = 0.0
        self._num_rejected = 0
        self._num_errors = 0
        self._num_worker_respawns = 0
        self._histograms: Dict[str, Histogram] = {}
        if histogram_buckets is not None:
            self._histograms[names.LATENCY_SECONDS] = Histogram(histogram_buckets)
            for stage in STAGE_NAMES:
                self._histograms[f"stage_{stage}_seconds"] = Histogram(histogram_buckets)
        # Per-worker shard accounting for the multi-process engine, keyed by
        # worker id (pid); empty for single-process serving.
        self._workers: Dict[str, Dict[str, float]] = {}
        # Query pairs answered per wire verb ("pair", "one_to_many", ...).
        self._verbs: Dict[str, int] = {}
        # Query pairs evaluated per kernel backend and operation, keyed
        # kernel name -> op name -> pairs.
        self._kernel_ops: Dict[str, Dict[str, int]] = {}

    @property
    def has_histograms(self) -> bool:
        """Whether latency histograms are being collected (hot-path guard)."""
        return bool(self._histograms)

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def observe_batch(
        self,
        num_queries: int,
        num_requests: int,
        seconds: float,
        *,
        request_latencies: Optional[Sequence[float]] = None,
    ) -> None:
        """Record one processed batch.

        ``seconds`` is the worker's evaluation time (feeds ``busy_fraction``).
        ``request_latencies`` are the *client-observed* per-request latencies
        — submission to completion, including queue wait and the coalescing
        window — and are what the reported percentiles describe.  When absent
        (e.g. direct engine benchmarking), the batch time itself is recorded.
        """
        with self._lock:
            self._num_batches += 1
            self._num_queries += num_queries
            self._num_requests += num_requests
            self._busy_seconds += seconds
            latency_histogram = self._histograms.get(names.LATENCY_SECONDS)
            if request_latencies:
                for latency in request_latencies:
                    self._latencies.record(latency)
                    if latency_histogram is not None:
                        latency_histogram.observe(latency)
            else:
                self._latencies.record(seconds)
                if latency_histogram is not None:
                    latency_histogram.observe(seconds)

    def observe_stages(self, stage_seconds: Mapping[str, Sequence[float]]) -> None:
        """Record per-stage durations into the stage histograms.

        ``stage_seconds`` maps stage names (see :data:`STAGE_NAMES`) to the
        durations observed for one batch — per-request values for the queue
        and coalescing stages, one per-batch value for the kernel and cache
        probe.  One lock acquisition covers the whole batch; unknown stages
        are ignored so callers need no histogram-configuration knowledge.
        No-op when histograms are disabled.
        """
        if not self._histograms:
            return
        with self._lock:
            for stage, values in stage_seconds.items():
                histogram = self._histograms.get(f"stage_{stage}_seconds")
                if histogram is None:
                    continue
                for value in values:
                    histogram.observe(value)

    def observe_shard(
        self, worker: object, num_queries: int, seconds: float
    ) -> None:
        """Record one worker-process shard of a sharded batch.

        ``worker`` is the worker's identity (its pid); per-worker counters
        feed the ``worker_*`` aggregates and the ``workers`` breakdown of
        :meth:`snapshot`, so a skewed pool (one slow or dead worker) is
        visible on the serving dashboard.
        """
        with self._lock:
            counters = self._workers.setdefault(
                str(worker),
                {"num_shards": 0, names.NUM_QUERIES: 0, names.FIELD_BUSY_SECONDS: 0.0},
            )
            counters["num_shards"] += 1
            counters[names.NUM_QUERIES] += num_queries
            counters[names.FIELD_BUSY_SECONDS] += seconds

    def observe_verb(self, verb: str, num_queries: int) -> None:
        """Record ``num_queries`` pairs answered under one wire verb.

        Feeds the ``verb_queries_total{verb=...}`` exposition series, so the
        traffic mix (point pairs vs one-to-many fan-outs) is visible to the
        scraper.
        """
        with self._lock:
            self._verbs[verb] = self._verbs.get(verb, 0) + num_queries

    def observe_kernel_op(self, kernel: str, op: str, num_queries: int) -> None:
        """Record ``num_queries`` pairs evaluated by one kernel backend op.

        Feeds ``kernel_op_queries_total{kernel=...,op=...}``: per-backend op
        counters show which compiled kernel actually carried the traffic
        (selection alone says what *would* run; this says what did).
        """
        with self._lock:
            ops = self._kernel_ops.setdefault(kernel, {})
            ops[op] = ops.get(op, 0) + num_queries

    def observe_rejection(self) -> None:
        """Record one request rejected by admission control."""
        with self._lock:
            self._num_rejected += 1

    def observe_error(self) -> None:
        """Record one request that failed with an error."""
        with self._lock:
            self._num_errors += 1

    def observe_worker_respawn(self) -> None:
        """Record one rebuild of a broken sharded worker pool."""
        with self._lock:
            self._num_worker_respawns += 1

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    @property
    def num_queries(self) -> int:
        """Total queries answered so far."""
        # Same locking discipline as snapshot(): the counter is written under
        # the lock, so it must be read under it too (a bare read could see a
        # torn/stale value on free-threaded builds and pessimistic memory
        # models, and was inconsistent with every other accessor).
        with self._lock:
            return self._num_queries

    def snapshot(
        self,
        *,
        cache_stats: Optional[CacheStats] = None,
        snapshot_version: Optional[int] = None,
        queue_depth: Optional[int] = None,
    ) -> Dict[str, float]:
        """One flat dictionary with every serving statistic.

        ``qps`` is measured over wall-clock uptime; ``busy_fraction`` is the
        share of uptime spent actually evaluating batches, a quick saturation
        indicator.
        """
        with self._lock:
            elapsed = max(time.perf_counter() - self._started, 1e-12)
            stats: Dict[str, float] = {
                names.UPTIME_SECONDS: elapsed,
                names.NUM_REQUESTS: self._num_requests,
                names.NUM_BATCHES: self._num_batches,
                names.NUM_QUERIES: self._num_queries,
                names.NUM_REJECTED: self._num_rejected,
                names.NUM_ERRORS: self._num_errors,
                names.NUM_WORKER_RESPAWNS: self._num_worker_respawns,
                names.QPS: self._num_queries / elapsed,
                names.BUSY_FRACTION: min(self._busy_seconds / elapsed, 1.0),
                names.AVERAGE_BATCH_SIZE: (
                    self._num_queries / self._num_batches if self._num_batches else 0.0
                ),
            }
            for name, value in self._latencies.percentiles().items():
                stats[f"latency_{name}_ms"] = value
            if self._workers:
                shard_queries = [w[names.NUM_QUERIES] for w in self._workers.values()]
                stats[names.NUM_WORKERS] = len(self._workers)
                stats[names.WORKER_QUERIES_MIN] = min(shard_queries)
                stats[names.WORKER_QUERIES_MAX] = max(shard_queries)
                stats[names.WORKER_BUSY_SECONDS_TOTAL] = sum(
                    w[names.FIELD_BUSY_SECONDS] for w in self._workers.values()
                )
                stats["workers"] = {
                    worker: dict(counters)
                    for worker, counters in self._workers.items()
                }
            if self._histograms:
                stats["histograms"] = {
                    name: histogram.snapshot()
                    for name, histogram in self._histograms.items()
                }
            if self._verbs:
                stats["verbs"] = dict(self._verbs)
            if self._kernel_ops:
                stats["kernel_ops"] = {
                    kernel: dict(ops) for kernel, ops in self._kernel_ops.items()
                }
        stats.update(process_resource_stats())
        if cache_stats is not None:
            for name, value in cache_stats.as_dict().items():
                stats[f"cache_{name}"] = value
        if snapshot_version is not None:
            stats[names.SNAPSHOT_VERSION] = snapshot_version
        if queue_depth is not None:
            stats[names.QUEUE_DEPTH] = queue_depth
        return stats

    def render(self, **snapshot_kwargs) -> str:
        """Human-readable multi-line rendering of :meth:`snapshot`.

        Scalar statistics come first; the per-worker breakdown (if any) is
        formatted as an aligned sub-table rather than a raw dict repr, and
        histograms are summarised one line each (count/sum) instead of
        dumping every bucket.
        """
        stats = self.snapshot(**snapshot_kwargs)
        workers = stats.pop("workers", None)
        histograms = stats.pop("histograms", None)
        verbs = stats.pop("verbs", None)
        kernel_ops = stats.pop("kernel_ops", None)
        alerts = stats.pop("alerts", None)
        lines = ["serving metrics"]
        for key in sorted(stats):
            value = stats[key]
            rendered = f"{value:.4f}" if isinstance(value, float) else str(value)
            lines.append(f"  {key:24s} {rendered}")
        if histograms:
            lines.append("  histograms")
            for name in sorted(histograms):
                hist = histograms[name]
                lines.append(
                    f"    {name:26s} count={hist['count']:<10d} "
                    f"sum={hist['sum']:.4f}s"
                )
        if verbs:
            lines.append("  verbs")
            for verb in sorted(verbs):
                lines.append(f"    {verb:26s} {int(verbs[verb]):d}")
        if kernel_ops:
            lines.append("  kernel ops")
            for kernel in sorted(kernel_ops):
                for op in sorted(kernel_ops[kernel]):
                    label = f"{kernel}/{op}"
                    lines.append(f"    {label:26s} {int(kernel_ops[kernel][op]):d}")
        if alerts:
            lines.append("  alerts")
            for alert in alerts:
                label = str(alert.get("alertname", "?"))
                lines.append(
                    f"    {label:26s} {alert.get('alertstate', '?')}"
                    f" ({alert.get('severity', '?')})"
                )
        if workers:
            lines.append("  workers")
            header = f"    {'worker':>10s} {'shards':>8s} {'queries':>10s} {'busy_s':>10s}"
            lines.append(header)
            for worker in sorted(workers):
                counters = workers[worker]
                lines.append(
                    f"    {worker:>10s} "
                    f"{int(counters.get('num_shards', 0)):>8d} "
                    f"{int(counters.get(names.NUM_QUERIES, 0)):>10d} "
                    f"{counters.get(names.FIELD_BUSY_SECONDS, 0.0):>10.4f}"
                )
        return "\n".join(lines)

    def render_json(self, **snapshot_kwargs) -> str:
        """Single-line JSON rendering of :meth:`snapshot` (the ``stats json`` wire reply)."""
        return json.dumps(self.snapshot(**snapshot_kwargs), sort_keys=True)

    def render_prometheus(self, **snapshot_kwargs) -> str:
        """Prometheus text-exposition rendering of :meth:`snapshot`.

        Served by the async front end's ``GET /metrics`` admin endpoint; see
        :func:`render_prometheus_text` for the format details.
        """
        return render_prometheus_text(self.snapshot(**snapshot_kwargs))


def index_health_stats(engine, manager=None) -> Dict[str, object]:
    """Index-health gauges for the metrics endpoint, duck-typed off ``engine``.

    Inspects whatever the serving stack currently holds — a
    :class:`~repro.serving.engine.BatchQueryEngine`, a
    :class:`~repro.serving.sharded.ShardedQueryEngine`, or ``None`` — plus an
    optional :class:`~repro.serving.snapshot.SnapshotManager`, and reports:

    * ``index_label_entries`` — total normal label entries in the served index,
    * ``index_bit_parallel_roots`` — bit-parallel BFS roots it carries,
    * ``index_num_vertices`` — vertices the served index covers (the
      denominator of the dirty-vertex-ratio alert rule),
    * ``index_dirty_vertices`` — shadow vertices dirtied since the last publish,
    * ``generation_name`` / ``generation_bytes`` — identity and size of the
      shared-memory generation backing the snapshot (shared deployments only),
    * ``kernel_name`` / ``kernel_requested`` / ``kernel_fallback`` /
      ``kernel_narrow`` — which batch-kernel backend the engine selected,
      whether that was a fallback from the requested one, and whether the
      served generation uses the narrow dtype layout.

    Everything is best-effort ``getattr`` so the helper works against any
    engine shape (and quietly reports less for engines that expose less);
    values update as snapshots are published, so graphing them shows index
    growth and publish churn over time.
    """
    stats: Dict[str, object] = {}
    index = getattr(engine, "index", None)
    if index is None and manager is not None:
        index = getattr(getattr(manager, "current", None), "index", None)
    if index is not None:
        label_set = getattr(index, "label_set", None)
        if label_set is not None:
            stats[names.INDEX_LABEL_ENTRIES] = int(label_set.total_entries())
            num_vertices = getattr(label_set, "num_vertices", None)
            if num_vertices is not None:
                stats[names.INDEX_NUM_VERTICES] = int(num_vertices)
        bit_parallel = getattr(index, "bit_parallel_labels", None)
        if bit_parallel is not None:
            stats[names.INDEX_BIT_PARALLEL_ROOTS] = int(bit_parallel.num_roots)
    if manager is not None:
        dirty = getattr(manager, "dirty_vertex_count", None)
        if dirty is not None:
            stats[names.INDEX_DIRTY_VERTICES] = int(dirty)
        generation = getattr(getattr(manager, "current", None), "generation", None)
        if generation is not None:
            stats["generation_name"] = generation.name
            backend = getattr(generation, "backend", None)
            if backend is not None:
                stats[names.GENERATION_BYTES] = int(backend.nbytes())
    # reprolint: disable=RL008 -- the engine *method* name, not the series
    kernel_info = getattr(engine, "kernel_info", None)
    if callable(kernel_info):
        try:
            info = kernel_info()
        except Exception:
            info = None
        if info:
            stats["kernel_name"] = str(info.get("selected", ""))
            stats["kernel_requested"] = str(info.get("requested", ""))
            stats[names.KERNEL_FALLBACK] = int(bool(info.get("fallback")))
            stats[names.KERNEL_NARROW] = int(bool(info.get("narrow")))
    return stats

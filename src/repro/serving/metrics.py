"""Serving metrics: QPS, latency percentiles, cache hit rate.

Production query services are judged by throughput and *tail* latency — the
P99 a heavy user actually experiences — not by the mean.  This module keeps a
bounded ring buffer of recent request latencies and derives the standard
serving dashboard from it: queries per second, P50/P95/P99, batch shape and
cache effectiveness.  Everything is stdlib + numpy and cheap enough to update
on every batch.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, Optional, Sequence

import numpy as np

from repro.serving.cache import CacheStats

__all__ = ["LatencyWindow", "ServerMetrics"]

#: Percentiles reported by default (the usual serving dashboard trio).
DEFAULT_PERCENTILES = (50.0, 95.0, 99.0)


class LatencyWindow:
    """Fixed-capacity ring buffer of recent latency observations (seconds)."""

    def __init__(self, capacity: int = 8192) -> None:
        if capacity <= 0:
            raise ValueError("latency window capacity must be positive")
        self._buffer = np.zeros(capacity, dtype=np.float64)
        self._next = 0
        self._count = 0

    def __len__(self) -> int:
        return min(self._count, self._buffer.shape[0])

    def record(self, seconds: float) -> None:
        """Append one observation, overwriting the oldest when full."""
        self._buffer[self._next] = seconds
        self._next = (self._next + 1) % self._buffer.shape[0]
        self._count += 1

    def values(self) -> np.ndarray:
        """The retained observations (unordered copy)."""
        if self._count >= self._buffer.shape[0]:
            return self._buffer.copy()
        return self._buffer[: self._count].copy()

    def percentiles(
        self, qs: Sequence[float] = DEFAULT_PERCENTILES
    ) -> Dict[str, float]:
        """Latency percentiles in **milliseconds**, keyed ``"p50"``/``"p95"``/...

        Returns zeros when nothing has been recorded yet.
        """
        values = self.values()
        if values.shape[0] == 0:
            return {f"p{q:g}": 0.0 for q in qs}
        points = np.percentile(values, qs) * 1000.0
        return {f"p{q:g}": float(p) for q, p in zip(qs, points)}


class ServerMetrics:
    """Aggregated serving statistics, safe to update and read across threads."""

    def __init__(self, *, window: int = 8192) -> None:
        self._lock = threading.Lock()
        self._latencies = LatencyWindow(window)
        self._started = time.perf_counter()
        self._num_requests = 0
        self._num_batches = 0
        self._num_queries = 0
        self._busy_seconds = 0.0
        self._num_rejected = 0
        self._num_errors = 0
        # Per-worker shard accounting for the multi-process engine, keyed by
        # worker id (pid); empty for single-process serving.
        self._workers: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def observe_batch(
        self,
        num_queries: int,
        num_requests: int,
        seconds: float,
        *,
        request_latencies: Optional[Sequence[float]] = None,
    ) -> None:
        """Record one processed batch.

        ``seconds`` is the worker's evaluation time (feeds ``busy_fraction``).
        ``request_latencies`` are the *client-observed* per-request latencies
        — submission to completion, including queue wait and the coalescing
        window — and are what the reported percentiles describe.  When absent
        (e.g. direct engine benchmarking), the batch time itself is recorded.
        """
        with self._lock:
            self._num_batches += 1
            self._num_queries += num_queries
            self._num_requests += num_requests
            self._busy_seconds += seconds
            if request_latencies:
                for latency in request_latencies:
                    self._latencies.record(latency)
            else:
                self._latencies.record(seconds)

    def observe_shard(
        self, worker: object, num_queries: int, seconds: float
    ) -> None:
        """Record one worker-process shard of a sharded batch.

        ``worker`` is the worker's identity (its pid); per-worker counters
        feed the ``worker_*`` aggregates and the ``workers`` breakdown of
        :meth:`snapshot`, so a skewed pool (one slow or dead worker) is
        visible on the serving dashboard.
        """
        with self._lock:
            counters = self._workers.setdefault(
                str(worker),
                {"num_shards": 0, "num_queries": 0, "busy_seconds": 0.0},
            )
            counters["num_shards"] += 1
            counters["num_queries"] += num_queries
            counters["busy_seconds"] += seconds

    def observe_rejection(self) -> None:
        """Record one request rejected by admission control."""
        with self._lock:
            self._num_rejected += 1

    def observe_error(self) -> None:
        """Record one request that failed with an error."""
        with self._lock:
            self._num_errors += 1

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    @property
    def num_queries(self) -> int:
        """Total queries answered so far."""
        return self._num_queries

    def snapshot(
        self,
        *,
        cache_stats: Optional[CacheStats] = None,
        snapshot_version: Optional[int] = None,
        queue_depth: Optional[int] = None,
    ) -> Dict[str, float]:
        """One flat dictionary with every serving statistic.

        ``qps`` is measured over wall-clock uptime; ``busy_fraction`` is the
        share of uptime spent actually evaluating batches, a quick saturation
        indicator.
        """
        with self._lock:
            elapsed = max(time.perf_counter() - self._started, 1e-12)
            stats: Dict[str, float] = {
                "uptime_seconds": elapsed,
                "num_requests": self._num_requests,
                "num_batches": self._num_batches,
                "num_queries": self._num_queries,
                "num_rejected": self._num_rejected,
                "num_errors": self._num_errors,
                "qps": self._num_queries / elapsed,
                "busy_fraction": min(self._busy_seconds / elapsed, 1.0),
                "average_batch_size": (
                    self._num_queries / self._num_batches if self._num_batches else 0.0
                ),
            }
            for name, value in self._latencies.percentiles().items():
                stats[f"latency_{name}_ms"] = value
            if self._workers:
                shard_queries = [w["num_queries"] for w in self._workers.values()]
                stats["num_workers"] = len(self._workers)
                stats["worker_queries_min"] = min(shard_queries)
                stats["worker_queries_max"] = max(shard_queries)
                stats["worker_busy_seconds_total"] = sum(
                    w["busy_seconds"] for w in self._workers.values()
                )
                stats["workers"] = {
                    worker: dict(counters)
                    for worker, counters in self._workers.items()
                }
        if cache_stats is not None:
            for name, value in cache_stats.as_dict().items():
                stats[f"cache_{name}"] = value
        if snapshot_version is not None:
            stats["snapshot_version"] = snapshot_version
        if queue_depth is not None:
            stats["queue_depth"] = queue_depth
        return stats

    def render(self, **snapshot_kwargs) -> str:
        """Human-readable multi-line rendering of :meth:`snapshot`."""
        stats = self.snapshot(**snapshot_kwargs)
        lines = ["serving metrics"]
        for key in sorted(stats):
            value = stats[key]
            rendered = f"{value:.4f}" if isinstance(value, float) else str(value)
            lines.append(f"  {key:24s} {rendered}")
        return "\n".join(lines)

    def render_json(self, **snapshot_kwargs) -> str:
        """Single-line JSON rendering of :meth:`snapshot` (the STATS wire reply)."""
        return json.dumps(self.snapshot(**snapshot_kwargs), sort_keys=True)

"""Serving metrics: QPS, latency percentiles, cache hit rate.

Production query services are judged by throughput and *tail* latency — the
P99 a heavy user actually experiences — not by the mean.  This module keeps a
bounded ring buffer of recent request latencies and derives the standard
serving dashboard from it: queries per second, P50/P95/P99, batch shape and
cache effectiveness.  Everything is stdlib + numpy and cheap enough to update
on every batch.

Three renderings of the same snapshot cover every consumer: :meth:`ServerMetrics.render`
(human-readable), :meth:`ServerMetrics.render_json` (the ``stats json`` wire
reply) and :func:`render_prometheus_text` (the text exposition format served
on the async front end's ``GET /metrics`` admin endpoint, scrapeable by
Prometheus).
"""

from __future__ import annotations

import json
import math
import threading
import time
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.serving.cache import CacheStats

__all__ = ["LatencyWindow", "ServerMetrics", "render_prometheus_text"]

#: Percentiles reported by default (the usual serving dashboard trio).
DEFAULT_PERCENTILES = (50.0, 95.0, 99.0)

#: Snapshot keys that are monotonically increasing and therefore exposed with
#: the Prometheus ``counter`` type; every other numeric key is a ``gauge``.
PROMETHEUS_COUNTERS = frozenset(
    {
        "num_requests",
        "num_batches",
        "num_queries",
        "num_rejected",
        "num_errors",
        "num_worker_respawns",
        "cache_hits",
        "cache_misses",
        "cache_evictions",
    }
)

#: Help strings for the best-known snapshot keys; anything else gets a
#: generated fallback so the exposition stays self-describing.
_PROMETHEUS_HELP = {
    "uptime_seconds": "Wall-clock seconds since the metrics object was created.",
    "num_requests": "Total query requests admitted.",
    "num_batches": "Total coalesced batches evaluated.",
    "num_queries": "Total query pairs answered.",
    "num_rejected": "Requests rejected by admission control.",
    "num_errors": "Requests that failed with an error.",
    "num_worker_respawns": "Times the sharded worker pool was rebuilt after breaking.",
    "qps": "Queries answered per second of uptime.",
    "busy_fraction": "Fraction of uptime spent evaluating batches.",
    "average_batch_size": "Mean query pairs per evaluated batch.",
    "cache_hit_rate": "Fraction of cache lookups served from the hot-pair cache.",
    "snapshot_version": "Version number of the currently served index snapshot.",
    "queue_depth": "Requests currently queued for batching.",
    "num_connections": "Open client connections on the async front end.",
}


def _prometheus_number(value: float) -> str:
    """Render one sample value in the exposition grammar (incl. +Inf/NaN)."""
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if math.isnan(number):
        return "NaN"
    if number == int(number) and abs(number) < 2**53:
        return str(int(number))
    return repr(number)


def render_prometheus_text(
    stats: Mapping[str, object], *, prefix: str = "repro_pll"
) -> str:
    """Render one :meth:`ServerMetrics.snapshot` dictionary as Prometheus text.

    Produces the `text exposition format
    <https://prometheus.io/docs/instrumenting/exposition_formats/>`_ (version
    0.0.4): ``# HELP`` / ``# TYPE`` comment pairs followed by one sample per
    metric, all names prefixed with ``prefix``.  The nested per-worker
    breakdown (the ``workers`` key) becomes labelled series —
    ``<prefix>_worker_queries{worker="<pid>"}`` and friends — so a skewed or
    respawned pool is visible to the scraper.  Non-numeric values are skipped.
    """
    lines = []

    def emit(name: str, value: float, kind: str, help_text: str, labels: str = "") -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name}{labels} {_prometheus_number(value)}")

    workers = stats.get("workers")
    for key in sorted(stats):
        if key == "workers":
            continue
        value = stats[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        name = f"{prefix}_{key}"
        kind = "counter" if key in PROMETHEUS_COUNTERS else "gauge"
        help_text = _PROMETHEUS_HELP.get(key, f"Serving statistic {key}.")
        emit(name, value, kind, help_text)
    if isinstance(workers, Mapping) and workers:
        per_worker = {
            "num_shards": ("shards", "counter", "Batch shards evaluated by this worker."),
            "num_queries": ("queries", "counter", "Query pairs answered by this worker."),
            "busy_seconds": ("busy_seconds", "gauge", "Cumulative evaluation seconds in this worker."),
        }
        for field_name, (suffix, kind, help_text) in per_worker.items():
            name = f"{prefix}_worker_{suffix}"
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for worker in sorted(workers):
                counters = workers[worker]
                if field_name not in counters:
                    continue
                lines.append(
                    f'{name}{{worker="{worker}"}} '
                    f"{_prometheus_number(counters[field_name])}"
                )
    return "\n".join(lines) + "\n"


class LatencyWindow:
    """Fixed-capacity ring buffer of recent latency observations (seconds)."""

    def __init__(self, capacity: int = 8192) -> None:
        if capacity <= 0:
            raise ValueError("latency window capacity must be positive")
        self._buffer = np.zeros(capacity, dtype=np.float64)
        self._next = 0
        self._count = 0

    def __len__(self) -> int:
        return min(self._count, self._buffer.shape[0])

    def record(self, seconds: float) -> None:
        """Append one observation, overwriting the oldest when full."""
        self._buffer[self._next] = seconds
        self._next = (self._next + 1) % self._buffer.shape[0]
        self._count += 1

    def values(self) -> np.ndarray:
        """The retained observations (unordered copy)."""
        if self._count >= self._buffer.shape[0]:
            return self._buffer.copy()
        return self._buffer[: self._count].copy()

    def percentiles(
        self, qs: Sequence[float] = DEFAULT_PERCENTILES
    ) -> Dict[str, float]:
        """Latency percentiles in **milliseconds**, keyed ``"p50"``/``"p95"``/...

        Returns zeros when nothing has been recorded yet.
        """
        values = self.values()
        if values.shape[0] == 0:
            return {f"p{q:g}": 0.0 for q in qs}
        points = np.percentile(values, qs) * 1000.0
        return {f"p{q:g}": float(p) for q, p in zip(qs, points)}


class ServerMetrics:
    """Aggregated serving statistics, safe to update and read across threads."""

    def __init__(self, *, window: int = 8192) -> None:
        self._lock = threading.Lock()
        self._latencies = LatencyWindow(window)
        self._started = time.perf_counter()
        self._num_requests = 0
        self._num_batches = 0
        self._num_queries = 0
        self._busy_seconds = 0.0
        self._num_rejected = 0
        self._num_errors = 0
        self._num_worker_respawns = 0
        # Per-worker shard accounting for the multi-process engine, keyed by
        # worker id (pid); empty for single-process serving.
        self._workers: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def observe_batch(
        self,
        num_queries: int,
        num_requests: int,
        seconds: float,
        *,
        request_latencies: Optional[Sequence[float]] = None,
    ) -> None:
        """Record one processed batch.

        ``seconds`` is the worker's evaluation time (feeds ``busy_fraction``).
        ``request_latencies`` are the *client-observed* per-request latencies
        — submission to completion, including queue wait and the coalescing
        window — and are what the reported percentiles describe.  When absent
        (e.g. direct engine benchmarking), the batch time itself is recorded.
        """
        with self._lock:
            self._num_batches += 1
            self._num_queries += num_queries
            self._num_requests += num_requests
            self._busy_seconds += seconds
            if request_latencies:
                for latency in request_latencies:
                    self._latencies.record(latency)
            else:
                self._latencies.record(seconds)

    def observe_shard(
        self, worker: object, num_queries: int, seconds: float
    ) -> None:
        """Record one worker-process shard of a sharded batch.

        ``worker`` is the worker's identity (its pid); per-worker counters
        feed the ``worker_*`` aggregates and the ``workers`` breakdown of
        :meth:`snapshot`, so a skewed pool (one slow or dead worker) is
        visible on the serving dashboard.
        """
        with self._lock:
            counters = self._workers.setdefault(
                str(worker),
                {"num_shards": 0, "num_queries": 0, "busy_seconds": 0.0},
            )
            counters["num_shards"] += 1
            counters["num_queries"] += num_queries
            counters["busy_seconds"] += seconds

    def observe_rejection(self) -> None:
        """Record one request rejected by admission control."""
        with self._lock:
            self._num_rejected += 1

    def observe_error(self) -> None:
        """Record one request that failed with an error."""
        with self._lock:
            self._num_errors += 1

    def observe_worker_respawn(self) -> None:
        """Record one rebuild of a broken sharded worker pool."""
        with self._lock:
            self._num_worker_respawns += 1

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    @property
    def num_queries(self) -> int:
        """Total queries answered so far."""
        return self._num_queries

    def snapshot(
        self,
        *,
        cache_stats: Optional[CacheStats] = None,
        snapshot_version: Optional[int] = None,
        queue_depth: Optional[int] = None,
    ) -> Dict[str, float]:
        """One flat dictionary with every serving statistic.

        ``qps`` is measured over wall-clock uptime; ``busy_fraction`` is the
        share of uptime spent actually evaluating batches, a quick saturation
        indicator.
        """
        with self._lock:
            elapsed = max(time.perf_counter() - self._started, 1e-12)
            stats: Dict[str, float] = {
                "uptime_seconds": elapsed,
                "num_requests": self._num_requests,
                "num_batches": self._num_batches,
                "num_queries": self._num_queries,
                "num_rejected": self._num_rejected,
                "num_errors": self._num_errors,
                "num_worker_respawns": self._num_worker_respawns,
                "qps": self._num_queries / elapsed,
                "busy_fraction": min(self._busy_seconds / elapsed, 1.0),
                "average_batch_size": (
                    self._num_queries / self._num_batches if self._num_batches else 0.0
                ),
            }
            for name, value in self._latencies.percentiles().items():
                stats[f"latency_{name}_ms"] = value
            if self._workers:
                shard_queries = [w["num_queries"] for w in self._workers.values()]
                stats["num_workers"] = len(self._workers)
                stats["worker_queries_min"] = min(shard_queries)
                stats["worker_queries_max"] = max(shard_queries)
                stats["worker_busy_seconds_total"] = sum(
                    w["busy_seconds"] for w in self._workers.values()
                )
                stats["workers"] = {
                    worker: dict(counters)
                    for worker, counters in self._workers.items()
                }
        if cache_stats is not None:
            for name, value in cache_stats.as_dict().items():
                stats[f"cache_{name}"] = value
        if snapshot_version is not None:
            stats["snapshot_version"] = snapshot_version
        if queue_depth is not None:
            stats["queue_depth"] = queue_depth
        return stats

    def render(self, **snapshot_kwargs) -> str:
        """Human-readable multi-line rendering of :meth:`snapshot`."""
        stats = self.snapshot(**snapshot_kwargs)
        lines = ["serving metrics"]
        for key in sorted(stats):
            value = stats[key]
            rendered = f"{value:.4f}" if isinstance(value, float) else str(value)
            lines.append(f"  {key:24s} {rendered}")
        return "\n".join(lines)

    def render_json(self, **snapshot_kwargs) -> str:
        """Single-line JSON rendering of :meth:`snapshot` (the ``stats json`` wire reply)."""
        return json.dumps(self.snapshot(**snapshot_kwargs), sort_keys=True)

    def render_prometheus(self, **snapshot_kwargs) -> str:
        """Prometheus text-exposition rendering of :meth:`snapshot`.

        Served by the async front end's ``GET /metrics`` admin endpoint; see
        :func:`render_prometheus_text` for the format details.
        """
        return render_prometheus_text(self.snapshot(**snapshot_kwargs))

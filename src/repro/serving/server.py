"""Threaded query server: request batching, admission control, wire protocol.

The server turns independent client requests into the large batches the
vectorised engine is fast at:

* Clients :meth:`~QueryServer.submit` requests (one or many pairs each) into
  a bounded queue.  A full queue rejects immediately with
  :class:`~repro.errors.AdmissionError` — fail fast beats an unbounded
  backlog.
* A single worker thread drains the queue, coalescing requests until either
  ``max_batch_size`` pairs are gathered or ``batch_timeout`` elapses, probes
  the hot-pair cache, evaluates the misses in one engine call against the
  *current* snapshot, stores the results back into the cache and completes
  every request.
* Per-batch latency, throughput and cache statistics feed
  :class:`~repro.serving.metrics.ServerMetrics`.

Two thin front ends speak a line protocol (``s t`` or ``s,t`` per query;
``add a b`` / ``remove a b`` to mutate the shadow graph and ``publish`` to
hot-swap the mutations in; ``STATS`` / ``STATS JSON`` for a JSON metrics
line; ``TRACES`` for the recent/slow trace rings as JSON; ``QUIT`` to end
the session): :func:`serve_stdio` for
pipes/interactive use and :func:`serve_tcp` for network clients (stdlib
``socketserver``, one thread per connection — see
:class:`~repro.serving.aio.AsyncQueryFrontend` for the event-loop front end
that multiplexes thousands of connections instead).  :func:`replay_mutations`
drives the same mutation vocabulary from a file (the ``--mutations`` serve
option), and :func:`warm_cache` replays a query log into the hot-pair cache
before a listener starts accepting traffic (the ``--warm`` serve option).
"""

from __future__ import annotations

import json
import queue
import socketserver
import sys
import threading
import time
from typing import IO, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.index import validate_vertex_ids
from repro.errors import (
    AdmissionError,
    GraphError,
    IndexBuildError,
    ServingError,
    VertexError,
)
from repro.serving.alerts import HealthMonitor, ShadowCanary, alerts_wire_reply, augment_snapshot
from repro.serving.cache import LRUCache, cached_query_batch
from repro.serving.engine import BatchQueryEngine
from repro.serving.metrics import ServerMetrics
from repro.serving.protocol import (
    ALERTS_COMMAND,
    OP_ADD,
    OP_PUBLISH,
    OP_REMOVE,
    QUIT_COMMANDS,
    STATS_COMMANDS,
    TRACES_COMMAND,
    VERB_ONE_TO_MANY,
    VERB_PAIR,
    format_distance_line,
    format_error,
    format_mutation_ack,
    format_one_to_many_reply,
    format_parse_error,
    format_publish_ack,
    is_mutation,
    is_one_to_many,
    normalize_command,
    parse_mutation,
    parse_one_to_many,
    parse_pair,
)
from repro.serving.snapshot import SnapshotManager
from repro.serving.tracing import StructuredLogger, Trace, TraceRecorder

__all__ = [
    "QueryRequest",
    "QueryServer",
    "read_pairs_file",
    "replay_mutations",
    "serve_stdio",
    "serve_tcp",
    "warm_cache",
]


class QueryRequest:
    """One submitted unit of work: aligned source/target arrays plus a result slot."""

    __slots__ = (
        "sources",
        "targets",
        "result",
        "error",
        "created",
        "dequeued",
        "trace",
        "_done",
    )

    def __init__(self, sources: np.ndarray, targets: np.ndarray) -> None:
        self.sources = sources
        self.targets = targets
        self.result: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None
        #: Submission time; completion minus this is the client-observed latency.
        self.created = time.perf_counter()
        #: Stamped by the batcher when it pulls the request off the queue;
        #: ``dequeued - created`` is the queue-wait stage of the trace.
        self.dequeued = self.created
        #: The request's open trace (``None`` when tracing is off).
        self.trace: Optional[Trace] = None
        self._done = threading.Event()

    def __len__(self) -> int:
        return int(self.sources.shape[0])

    @property
    def done(self) -> bool:
        """Whether the request has been completed (successfully or not)."""
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block until the request completes; return distances or re-raise its error."""
        if not self._done.wait(timeout):
            raise TimeoutError("query request did not complete in time")
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result

    def _complete(self, result: np.ndarray) -> None:
        self.result = result
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self.error = error
        self._done.set()


class QueryServer:
    """Batching, cache-fronted, hot-swappable distance query server.

    Parameters
    ----------
    backend:
        Either a :class:`~repro.serving.snapshot.SnapshotManager` (queries are
        answered against whatever snapshot is current when a batch starts —
        the hot-swap path), a bare
        :class:`~repro.serving.engine.BatchQueryEngine` (static index), or a
        :class:`~repro.serving.sharded.ShardedQueryEngine` (multi-process
        serving; when it wraps a shared snapshot manager, the mutation API
        and hot swap work exactly as with a manager backend).
    cache:
        Optional hot-pair :class:`~repro.serving.cache.LRUCache`; hits skip
        the engine entirely.
    max_batch_size:
        Maximum pairs coalesced into one engine call.
    batch_timeout:
        Seconds the worker waits for more requests before dispatching a
        partial batch (the latency/throughput knob).
    max_pending:
        Admission-control bound on queued requests.
    tracer:
        :class:`~repro.serving.tracing.TraceRecorder` collecting per-request
        traces (default: a fresh recorder).  Pass a
        :class:`~repro.serving.tracing.NullTraceRecorder` to switch tracing
        off entirely.
    logger:
        Optional :class:`~repro.serving.tracing.StructuredLogger` for
        lifecycle events (``server_start`` / ``server_stop``).

    Use as a context manager (``with QueryServer(engine) as server: ...``) or
    call :meth:`start` / :meth:`stop` explicitly.
    """

    def __init__(
        self,
        backend: Union[SnapshotManager, BatchQueryEngine],
        *,
        cache: Optional[LRUCache] = None,
        max_batch_size: int = 2048,
        batch_timeout: float = 0.002,
        max_pending: int = 4096,
        metrics: Optional[ServerMetrics] = None,
        tracer: Optional[TraceRecorder] = None,
        logger: Optional[StructuredLogger] = None,
    ) -> None:
        self._backend = backend
        self.cache = cache
        self.tracer = tracer if tracer is not None else TraceRecorder()
        self.logger = logger
        # Cached distances are only valid for one index version; the worker
        # clears the cache whenever the backing snapshot version changes.
        manager = self.snapshot_manager
        self._cache_version = manager.version if manager is not None else None
        self.max_batch_size = int(max_batch_size)
        self.batch_timeout = float(batch_timeout)
        self.max_pending = int(max_pending)
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self._queue: "queue.Queue[QueryRequest]" = queue.Queue()
        # One-to-many fan-outs bypass the batching queue but still count
        # against max_pending while in flight (guarded by _fanout_lock).
        self._fanout_lock = threading.Lock()
        self._fanout_pending = 0
        self._worker: Optional[threading.Thread] = None
        self._running = False
        # Admission flag, dropped *before* the shutdown drain so a client
        # streaming queries cannot keep the drain from ever finishing.
        self._accepting = False
        # Optional observability attachments (owned by the caller, which
        # starts/stops them): the health engine folds this server's metrics
        # snapshots into alert states; the shadow canary re-verifies sampled
        # served batches against the scalar baseline.
        self.health: Optional[HealthMonitor] = None
        self.shadow: Optional[ShadowCanary] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "QueryServer":
        """Start the worker thread (idempotent)."""
        if self._running:
            return self
        self._running = True
        self._accepting = True
        self._worker = threading.Thread(
            target=self._worker_loop, name="repro-pll-query-worker", daemon=True
        )
        self._worker.start()
        if self.logger is not None:
            self.logger.event(
                "server_start",
                max_batch_size=self.max_batch_size,
                batch_timeout=self.batch_timeout,
                max_pending=self.max_pending,
            )
        return self

    def stop(self, *, drain: bool = True) -> None:
        """Stop the worker; with ``drain`` (default) pending requests finish first.

        New submissions are rejected from the moment ``stop`` begins, so the
        drain is over a bounded backlog even if clients keep sending.
        """
        if not self._running:
            return
        self._accepting = False
        if drain:
            self._queue.join()
        self._running = False
        if self._worker is not None:
            self._worker.join(timeout=5.0)
            self._worker = None
        self._fail_stragglers()
        if self.logger is not None:
            self.logger.event(
                "server_stop", num_queries=self.metrics.num_queries
            )

    def _fail_stragglers(self) -> None:
        """Fail anything still queued so no client blocks forever.

        Called from :meth:`stop` and from :meth:`submit` when a request races
        shutdown (passes the running check, lands on the queue after the
        final drain) — whichever side runs last sees it.
        """
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                break
            request._fail(ServingError("server stopped before request was served"))
            self._queue.task_done()

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        """Whether the worker thread is active."""
        return self._running

    # ------------------------------------------------------------------ #
    # Client API
    # ------------------------------------------------------------------ #

    def _current_engine(self) -> BatchQueryEngine:
        if isinstance(self._backend, SnapshotManager):
            return self._backend.current.engine
        return self._backend

    @property
    def snapshot_manager(self) -> Optional[SnapshotManager]:
        """The backing snapshot manager, when hot swap is enabled.

        Found either directly (a manager backend) or through a sharded
        engine that wraps one — mutations and cache invalidation work the
        same way in both configurations.
        """
        if isinstance(self._backend, SnapshotManager):
            return self._backend
        return getattr(self._backend, "snapshot_manager", None)

    def submit(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> QueryRequest:
        """Enqueue one request of aligned pairs; returns immediately.

        Raises
        ------
        AdmissionError
            When the pending queue is at ``max_pending``.
        ServingError
            When the server has not been started.
        VertexError
            When a vertex id is out of range.  Validated here, at submission,
            so one malformed request can never fail the unrelated requests it
            would have been batched with.
        """
        if not self._accepting:
            raise ServingError("server is not accepting requests; call start() first")
        if self._queue.qsize() >= self.max_pending:
            self.metrics.observe_rejection()
            raise AdmissionError(
                f"request rejected: {self.max_pending} requests already pending"
            )
        source_array = np.atleast_1d(np.asarray(sources, dtype=np.int64))
        target_array = np.atleast_1d(np.asarray(targets, dtype=np.int64))
        num_vertices = self._current_engine().num_vertices
        validate_vertex_ids(source_array, num_vertices)
        validate_vertex_ids(target_array, num_vertices)
        request = QueryRequest(source_array, target_array)
        # Trace id minted at admission: the request is correlatable from the
        # moment it exists, before it ever touches the batching queue.
        request.trace = self.tracer.start(len(request))
        self._queue.put(request)
        if not self._running:
            self._fail_stragglers()
        return request

    def submit_pairs(self, pairs: Iterable[Tuple[int, int]]) -> QueryRequest:
        """Enqueue one request built from ``(s, t)`` tuples."""
        pair_array = np.asarray(list(pairs), dtype=np.int64).reshape(-1, 2)
        return self.submit(pair_array[:, 0], pair_array[:, 1])

    def distance(self, s: int, t: int, *, timeout: Optional[float] = 30.0) -> float:
        """Synchronous scalar query (submit one pair and wait)."""
        return float(self.submit([s], [t]).wait(timeout)[0])

    def distances(
        self,
        pairs: Iterable[Tuple[int, int]],
        *,
        timeout: Optional[float] = 30.0,
    ) -> np.ndarray:
        """Synchronous batch query."""
        return self.submit_pairs(pairs).wait(timeout)

    def query_one_to_many(
        self, source: int, targets: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Distances from ``source`` to ``targets`` (all vertices when ``None``).

        Dispatched synchronously on the calling thread rather than through
        the pair-batching queue: one fan-out amortises its own kernel call,
        so coalescing it with point pairs would only delay both.  In-flight
        fan-outs still count against ``max_pending`` so they meet the same
        admission gate as queued pair requests.  Traced, histogrammed and
        counted like a one-request batch, labelled with the ``one_to_many``
        verb.

        Raises
        ------
        AdmissionError
            When ``max_pending`` requests (queued pairs plus in-flight
            fan-outs) are already admitted.
        """
        if not self._accepting:
            raise ServingError("server is not accepting requests; call start() first")
        with self._fanout_lock:
            if self._queue.qsize() + self._fanout_pending >= self.max_pending:
                admit = False
            else:
                admit = True
                self._fanout_pending += 1
        if not admit:
            self.metrics.observe_rejection()
            raise AdmissionError(
                f"request rejected: {self.max_pending} requests already pending"
            )
        try:
            start = time.perf_counter()
            want_spans = self.tracer.enabled or self.metrics.has_histograms
            spans = [] if want_spans else None
            engine = self._current_engine_and_invalidate()
            trace = self.tracer.start(
                len(targets) if targets is not None else engine.num_vertices
            )
            try:
                distances = engine.query_one_to_many(source, targets, span_sink=spans)
            except Exception:
                self.metrics.observe_error()
                self.tracer.record(trace, time.perf_counter() - start, status="error")
                raise
        finally:
            with self._fanout_lock:
                self._fanout_pending -= 1
        elapsed = time.perf_counter() - start
        num_pairs = int(distances.shape[0])
        self.metrics.observe_batch(num_pairs, 1, elapsed, request_latencies=[elapsed])
        self.metrics.observe_verb(VERB_ONE_TO_MANY, num_pairs)
        self.metrics.observe_kernel_op(
            getattr(engine, "kernel_name", "unknown"), "query_one_to_many", num_pairs
        )
        if spans:
            if trace is not None:
                trace.extend(spans)
                self.tracer.record(trace, elapsed)
            kernel_seconds = [span.seconds for span in spans if span.name == "kernel"]
            if self.metrics.has_histograms and kernel_seconds:
                self.metrics.observe_stages({"kernel": kernel_seconds})
        return distances

    def _metrics_kwargs(self) -> dict:
        manager = self.snapshot_manager
        return dict(
            cache_stats=self.cache.stats if self.cache is not None else None,
            snapshot_version=manager.version if manager is not None else None,
            queue_depth=self._queue.qsize(),
        )

    def metrics_snapshot(self) -> dict:
        """Serving statistics including cache, snapshot version and queue depth.

        When a health monitor / shadow canary is attached, their gauges and
        counters (``alerts_firing``, ``shadow_mismatches_total``, ...) ride
        the same snapshot — one dictionary feeds every rendering.
        """
        stats = self.metrics.snapshot(**self._metrics_kwargs())
        return augment_snapshot(stats, health=self.health, shadow=self.shadow)

    def metrics_json(self) -> str:
        """Single-line JSON metrics (the ``stats json`` wire reply)."""
        return json.dumps(self.metrics_snapshot(), sort_keys=True)

    def traces_json(self, *, limit: Optional[int] = 32) -> str:
        """Single-line JSON trace dump (the ``TRACES`` wire reply)."""
        return json.dumps(self.tracer.snapshot(limit=limit), sort_keys=True)

    def alerts_json(self) -> str:
        """Single-line JSON health report (the ``ALERTS`` wire reply)."""
        return alerts_wire_reply(self.health)

    # ------------------------------------------------------------------ #
    # Mutations (hot-swap write path)
    # ------------------------------------------------------------------ #

    def _require_manager(self) -> SnapshotManager:
        manager = self.snapshot_manager
        if manager is None:
            raise ServingError(
                "mutations require a snapshot-manager backend; this server "
                "wraps a bare engine"
            )
        return manager

    def insert_edge(self, a: int, b: int) -> None:
        """Apply one edge insertion to the backing shadow index (not yet published)."""
        self._require_manager().insert_edge(a, b)

    def remove_edge(self, a: int, b: int) -> None:
        """Apply one edge deletion to the backing shadow index (not yet published)."""
        self._require_manager().remove_edge(a, b)

    def publish(self):
        """Publish pending mutations as a new snapshot; readers swap atomically."""
        return self._require_manager().publish()

    def apply_mutation(
        self, op: str, endpoints: Optional[Tuple[int, int]] = None
    ) -> str:
        """Apply one parsed mutation (``add`` / ``remove`` / ``publish``).

        The shared dispatch behind the live protocol's mutation lines and
        ``--mutations`` file replay.  Returns a one-line human-readable
        acknowledgement.
        """
        if op == OP_PUBLISH:
            snapshot = self.publish()
            return format_publish_ack(snapshot.version)
        if endpoints is None:
            raise ValueError(f"mutation {op!r} requires edge endpoints")
        a, b = endpoints
        if op == OP_ADD:
            self.insert_edge(a, b)
        elif op == OP_REMOVE:
            self.remove_edge(a, b)
        else:
            raise ValueError(f"unknown mutation {op!r}")
        pending = self._require_manager().pending_updates
        return format_mutation_ack(op, a, b, pending)

    # ------------------------------------------------------------------ #
    # Worker
    # ------------------------------------------------------------------ #

    def _gather_batch(self) -> list:
        """Block for the first request, then coalesce more until size/timeout."""
        try:
            first = self._queue.get(timeout=0.05)
        except queue.Empty:
            return []
        first.dequeued = time.perf_counter()
        batch = [first]
        gathered = len(first)
        deadline = first.dequeued + self.batch_timeout
        while gathered < self.max_batch_size:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                request = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            request.dequeued = time.perf_counter()
            batch.append(request)
            gathered += len(request)
        return batch

    def _current_engine_and_invalidate(self) -> BatchQueryEngine:
        """One snapshot grab per batch: engine and cache-invalidation version
        always belong together, so a concurrent swap can never skew them.

        With a sharded-engine backend the engine resolves the generation
        itself per batch; the version check here only drives cache
        invalidation (a publish landing between the check and the shard
        dispatch is flushed on the next batch).
        """
        manager = self.snapshot_manager
        if manager is None:
            return self._backend
        snapshot = manager.current
        if self.cache is not None and snapshot.version != self._cache_version:
            self.cache.clear()
            self._cache_version = snapshot.version
        if isinstance(self._backend, SnapshotManager):
            return snapshot.engine
        return self._backend

    def _evaluate(
        self,
        engine: BatchQueryEngine,
        sources: np.ndarray,
        targets: np.ndarray,
        span_sink=None,
    ) -> np.ndarray:
        return cached_query_batch(
            engine, self.cache, sources, targets, span_sink=span_sink
        )

    def _trace_batch(
        self, batch: list, batch_spans, start: float, eval_done: float, completed: float
    ) -> None:
        """Stitch the batch-shared spans into every request trace and file them.

        Each request gets its own ``queue``/``batch``/``reply`` spans (those
        durations differ per request) plus the *shared* cache-probe and
        kernel/shard span objects — every request in the batch rode the same
        engine call, so they share those spans by construction.  The same
        stage durations feed the per-stage histograms in one call.
        """
        num_pairs = sum(len(request) for request in batch)
        reply_seconds = completed - eval_done
        stage_queue = []
        stage_batch = []
        for request in batch:
            queue_wait = max(request.dequeued - request.created, 0.0)
            coalesce = max(start - request.dequeued, 0.0)
            stage_queue.append(queue_wait)
            stage_batch.append(coalesce)
            trace = request.trace
            if trace is not None:
                trace.add_span("queue", queue_wait)
                trace.add_span(
                    "batch",
                    coalesce,
                    batch_pairs=num_pairs,
                    batch_requests=len(batch),
                )
                trace.extend(batch_spans)
                trace.add_span("reply", reply_seconds)
                self.tracer.record(trace, completed - request.created)
        if self.metrics.has_histograms:
            stages = {"queue": stage_queue, "batch": stage_batch}
            kernel_seconds = [
                span.seconds for span in batch_spans if span.name in ("kernel", "shard")
            ]
            probe_seconds = [
                span.seconds for span in batch_spans if span.name == "cache_probe"
            ]
            if kernel_seconds:
                stages["kernel"] = kernel_seconds
            if probe_seconds:
                stages["cache_probe"] = probe_seconds
            self.metrics.observe_stages(stages)

    def _process_batch(self, batch: list) -> None:
        start = time.perf_counter()
        # One span list for the whole batch: the cache probe and engine
        # evaluation happen once per batch, so their spans are shared by
        # every request trace in it.  Skipped entirely when neither tracing
        # nor stage histograms want the data.
        want_spans = self.tracer.enabled or self.metrics.has_histograms
        batch_spans = [] if want_spans else None
        try:
            engine = self._current_engine_and_invalidate()
            sources = np.concatenate([request.sources for request in batch])
            targets = np.concatenate([request.targets for request in batch])
            distances = self._evaluate(engine, sources, targets, batch_spans)
        except Exception:
            # Retry each request alone so one poisoned or oversized request
            # (e.g. ids stale after a hot swap to a smaller index) cannot
            # fail the unrelated requests it was coalesced with.
            succeeded = []
            for request in batch:
                try:
                    request._complete(
                        self._evaluate(
                            self._current_engine_and_invalidate(),
                            request.sources,
                            request.targets,
                        )
                    )
                    succeeded.append(request)
                except Exception as single_exc:
                    request._fail(single_exc)
                    self.metrics.observe_error()
                    self.tracer.record(
                        request.trace,
                        time.perf_counter() - request.created,
                        status="error",
                    )
            if succeeded:
                completed = time.perf_counter()
                num_pairs = sum(len(request) for request in succeeded)
                self.metrics.observe_batch(
                    num_pairs,
                    len(succeeded),
                    completed - start,
                    request_latencies=[
                        completed - request.created for request in succeeded
                    ],
                )
                self._count_pair_queries(num_pairs)
                for request in succeeded:
                    self.tracer.record(
                        request.trace, completed - request.created, status="retried"
                    )
            return
        finally:
            for _ in batch:
                self._queue.task_done()
        eval_done = time.perf_counter()
        offset = 0
        for request in batch:
            request._complete(distances[offset: offset + len(request)])
            offset += len(request)
        completed = time.perf_counter()
        self.metrics.observe_batch(
            int(sources.shape[0]),
            len(batch),
            completed - start,
            request_latencies=[completed - request.created for request in batch],
        )
        self._count_pair_queries(int(sources.shape[0]))
        shadow = self.shadow
        if shadow is not None:
            # After the requests completed: sampling must never sit between
            # the kernel and the reply.  The canary copies the arrays.
            shadow.maybe_submit(engine, sources, targets, distances)
        if want_spans:
            self._trace_batch(batch, batch_spans, start, eval_done, completed)

    def _count_pair_queries(self, num_pairs: int) -> None:
        """Stamp per-verb and per-kernel-op counters for one pair batch."""
        self.metrics.observe_verb(VERB_PAIR, num_pairs)
        self.metrics.observe_kernel_op(
            getattr(self._current_engine(), "kernel_name", "unknown"),
            "query_pairs",
            num_pairs,
        )

    def _worker_loop(self) -> None:
        while self._running:
            try:
                batch = self._gather_batch()
                if batch:
                    self._process_batch(batch)
            except Exception:  # pragma: no cover - last-resort worker guard
                # _process_batch handles per-request failures; anything that
                # still escapes must not kill the worker and wedge the server.
                continue


# ---------------------------------------------------------------------- #
# Wire protocol
# ---------------------------------------------------------------------- #


def _handle_line(server: QueryServer, line: str) -> Optional[str]:
    """Evaluate one protocol line; returns the reply, or ``None`` to end the session."""
    stripped = line.strip()
    if not stripped:
        return ""
    command = normalize_command(stripped)
    if command in QUIT_COMMANDS:
        return None
    if command in STATS_COMMANDS:
        return server.metrics_json()
    if command == TRACES_COMMAND:
        return server.traces_json()
    if command == ALERTS_COMMAND:
        return server.alerts_json()
    if is_mutation(stripped):
        try:
            op, endpoints = parse_mutation(stripped)
        except ValueError as exc:
            return format_parse_error("mutation", stripped, exc)
        try:
            return server.apply_mutation(op, endpoints)
        # ServingError: no writable shadow behind this server; GraphError
        # covers out-of-range endpoints; IndexBuildError the same from the
        # dynamic oracle.  All client-attributable, so answer with an error
        # line instead of killing the session.
        except (ServingError, GraphError, IndexBuildError) as exc:
            return format_error(exc)
    if is_one_to_many(stripped):
        try:
            source, targets = parse_one_to_many(stripped)
        except ValueError as exc:
            return format_parse_error("query", stripped, exc)
        try:
            distances = server.query_one_to_many(source, targets)
        except (AdmissionError, ServingError, VertexError, TimeoutError) as exc:
            return format_error(exc)
        return format_one_to_many_reply(source, targets, distances)
    try:
        s, t = parse_pair(stripped)
    except ValueError as exc:
        return format_parse_error("query", stripped, exc)
    try:
        distance = server.distance(s, t)
    # ServingError covers a stopping server and TimeoutError a saturated one
    # — client-attributable failures answer with a protocol error line, never
    # a traceback that kills the session.  Genuine engine bugs still raise.
    except (AdmissionError, ServingError, VertexError, TimeoutError) as exc:
        return format_error(exc)
    return format_distance_line(s, t, distance)


def replay_mutations(server: QueryServer, lines: Iterable[str]) -> dict:
    """Replay a mixed insert/delete stream against a server's shadow index.

    ``lines`` holds one mutation per line in the shared protocol vocabulary
    (``add a b``, ``remove a b``, ``publish``); blank lines and ``#``
    comments are skipped.  If mutations remain unpublished after the last
    line, a final publish makes them visible — a replayed file always leaves
    the serving snapshot caught up with the stream.

    Returns a counter dict (``added`` / ``removed`` / ``published``).

    Raises
    ------
    ValueError
        On an unparsable line (prefixed with its 1-based line number).
    ServingError
        When the server has no writable snapshot-manager backend.
    """
    counts = {"added": 0, "removed": 0, "published": 0}
    for line_number, raw in enumerate(lines, start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            op, endpoints = parse_mutation(stripped)
        except ValueError as exc:
            raise ValueError(f"mutations line {line_number}: {exc}") from None
        server.apply_mutation(op, endpoints)
        if op == OP_ADD:
            counts["added"] += 1
        elif op == OP_REMOVE:
            counts["removed"] += 1
        else:
            counts["published"] += 1
    manager = server.snapshot_manager
    if manager is not None and manager.pending_updates > 0:
        server.apply_mutation(OP_PUBLISH)
        counts["published"] += 1
    return counts


def read_pairs_file(path) -> np.ndarray:
    """Read a query-pair file (one ``s t`` / ``s,t`` pair per line) into an array.

    Blank lines and ``#`` comments are skipped — the format is the natural
    dump of a query log.  Returns an ``(n, 2)`` int64 array.

    Raises
    ------
    ValueError
        On an unparsable line (prefixed with its 1-based line number).
    OSError
        When the file cannot be read.
    """
    pairs = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            stripped = raw.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                pairs.append(parse_pair(stripped))
            except ValueError as exc:
                raise ValueError(f"pairs line {line_number}: {exc}") from None
    return np.asarray(pairs, dtype=np.int64).reshape(-1, 2)


def warm_cache(engine, cache: LRUCache, pairs, *, batch_size: int = 8192) -> dict:
    """Replay query pairs through ``engine`` to populate the hot-pair ``cache``.

    Run before a listener starts accepting connections (the serve ``--warm``
    option), so the first real clients hit a warm cache instead of paying the
    cold misses themselves.  The replay goes through the same
    probe-compute-store path as live traffic: duplicated pairs in the log hit
    the cache, so the returned ``hit_rate`` is the rate a workload shaped
    like the log can expect (and the warm hits/misses are counted in
    ``cache.stats``, which keeps the serving metrics honest about how the
    cache got warm).

    ``engine`` is anything with ``query_batch`` — a
    :class:`~repro.serving.engine.BatchQueryEngine` or a
    :class:`~repro.serving.sharded.ShardedQueryEngine`.  Returns a summary
    dict: ``pairs``, ``hits``, ``misses``, ``hit_rate``, ``cached`` (entries
    now resident) and ``seconds``.
    """
    pair_array = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    start = time.perf_counter()
    misses_before = cache.stats.misses
    for offset in range(0, pair_array.shape[0], int(batch_size)):
        chunk = pair_array[offset: offset + int(batch_size)]
        cached_query_batch(engine, cache, chunk[:, 0], chunk[:, 1])
    num_pairs = int(pair_array.shape[0])
    hits = num_pairs - (cache.stats.misses - misses_before)
    return {
        "pairs": num_pairs,
        "hits": hits,
        "misses": num_pairs - hits,
        "hit_rate": hits / num_pairs if num_pairs else 0.0,
        "cached": len(cache),
        "seconds": time.perf_counter() - start,
    }


def serve_stdio(
    server: QueryServer,
    in_stream: Optional[IO[str]] = None,
    out_stream: Optional[IO[str]] = None,
) -> int:
    """Serve the line protocol over text streams until EOF or ``QUIT``.

    Returns the number of protocol lines handled.  Used by
    ``repro-pll serve`` when no ``--port`` is given, and directly testable
    with ``io.StringIO``.
    """
    in_stream = in_stream if in_stream is not None else sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout
    handled = 0
    for line in in_stream:
        reply = _handle_line(server, line)
        if reply is None:
            break
        handled += 1
        if reply:
            print(reply, file=out_stream, flush=True)
    return handled


class _LineProtocolHandler(socketserver.StreamRequestHandler):
    """One TCP connection speaking the line protocol."""

    def handle(self) -> None:  # pragma: no cover - exercised via serve_tcp tests
        while True:
            raw = self.rfile.readline()
            if not raw:
                break
            reply = _handle_line(self.server.query_server, raw.decode("utf-8", "replace"))
            if reply is None:
                break
            if reply:
                self.wfile.write((reply + "\n").encode("utf-8"))
                self.wfile.flush()


class _ThreadedTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, query_server: QueryServer) -> None:
        super().__init__(address, _LineProtocolHandler)
        self.query_server = query_server


def serve_tcp(
    server: QueryServer, host: str = "127.0.0.1", port: int = 0
) -> _ThreadedTCPServer:
    """Bind a threaded TCP front end for ``server`` (not yet serving).

    Returns the bound ``socketserver`` instance; call ``serve_forever()`` on
    it (blocking) or drive it from a thread.  ``port=0`` binds an ephemeral
    port, available as ``server_address[1]``.
    """
    return _ThreadedTCPServer((host, port), server)

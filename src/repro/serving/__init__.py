"""Query-serving subsystem: batched engine, hot-pair cache, snapshot hot swap.

Everything under :mod:`repro.serving` is aimed at *traffic*, not
reproduction: turning a built pruned-landmark-labeling index into a
long-lived service that answers heavy query streams fast and keeps serving
while the index is updated underneath it.

* :mod:`~repro.serving.engine` — :class:`BatchQueryEngine`, the vectorised
  many-pairs-per-call front end with latency/throughput accounting.
* :mod:`~repro.serving.cache` — :class:`LRUCache`, the bounded hot-pair
  cache with hit/miss/eviction counters.
* :mod:`~repro.serving.snapshot` — :class:`SnapshotManager`, lock-free
  reader snapshots with atomic hot swap of updated or reloaded indexes.
* :mod:`~repro.serving.server` — :class:`QueryServer`, the threaded request
  loop with coalescing and admission control, plus stdio/TCP front ends and
  the cache-warming replay (:func:`warm_cache`).
* :mod:`~repro.serving.aio` — :class:`AsyncQueryFrontend`, the asyncio front
  end multiplexing thousands of connections on one event loop, with the
  HTTP admin plane (Prometheus ``/metrics``, ``/healthz``, ``/publish``,
  ``/alerts``) plus the debug surface (``/traces``, ``/debug/threads``,
  ``/debug/profile``, ``/debug/bundle``) and graceful drain.
* :mod:`~repro.serving.alerts` — :class:`HealthMonitor`, the background
  health engine evaluating the default SLO/burn-rate alert rules against
  metrics snapshots, and :class:`ShadowCanary`, the sampled shadow
  correctness recomputation behind ``serve --shadow-sample``.
* :mod:`~repro.serving.sharded` — :class:`ShardedQueryEngine`, the
  multi-process engine answering batch shards against named shared-memory
  snapshot generations (the GIL bypass for multi-core serving), with
  worker health checks and automatic pool respawn.
* :mod:`~repro.serving.metrics` — :class:`ServerMetrics`: QPS, P50/P95/P99
  latency, true fixed-bucket latency/stage :class:`Histogram`\\ s, cache hit
  rate, per-worker shard accounting, index-health gauges and the Prometheus
  text-exposition renderer.
* :mod:`~repro.serving.tracing` — :class:`TraceRecorder` /
  :class:`StructuredLogger`: per-request trace ids and spans, the
  recent/slow trace ring buffers, the slow-query log and the JSON event
  logger behind ``serve --slow-ms`` / ``--log-json``.
"""

from repro.serving.aio import AsyncQueryFrontend
from repro.serving.alerts import (
    HealthMonitor,
    ShadowCanary,
    alerts_wire_reply,
    default_alert_rules,
)
from repro.serving.cache import CacheStats, LRUCache, cached_query_batch
from repro.serving.engine import BatchQueryEngine, EngineStats
from repro.serving.metrics import (
    Histogram,
    LatencyWindow,
    ServerMetrics,
    index_health_stats,
    render_prometheus_text,
    validate_prometheus_exposition,
)
from repro.serving.protocol import MAX_VERTEX_ID, parse_mutation, parse_pair
from repro.serving.server import (
    QueryRequest,
    QueryServer,
    read_pairs_file,
    replay_mutations,
    serve_stdio,
    serve_tcp,
    warm_cache,
)
from repro.serving.sharded import ShardedQueryEngine, default_worker_count
from repro.serving.snapshot import IndexSnapshot, SnapshotManager
from repro.serving.tracing import (
    NullTraceRecorder,
    Span,
    StructuredLogger,
    Trace,
    TraceRecorder,
    make_trace_id,
)

__all__ = [
    "AsyncQueryFrontend",
    "BatchQueryEngine",
    "EngineStats",
    "HealthMonitor",
    "ShadowCanary",
    "alerts_wire_reply",
    "default_alert_rules",
    "ShardedQueryEngine",
    "default_worker_count",
    "LRUCache",
    "CacheStats",
    "cached_query_batch",
    "IndexSnapshot",
    "SnapshotManager",
    "QueryServer",
    "QueryRequest",
    "read_pairs_file",
    "replay_mutations",
    "serve_stdio",
    "serve_tcp",
    "warm_cache",
    "ServerMetrics",
    "LatencyWindow",
    "Histogram",
    "index_health_stats",
    "render_prometheus_text",
    "validate_prometheus_exposition",
    "TraceRecorder",
    "NullTraceRecorder",
    "Trace",
    "Span",
    "StructuredLogger",
    "make_trace_id",
    "parse_pair",
    "parse_mutation",
    "MAX_VERTEX_ID",
]
